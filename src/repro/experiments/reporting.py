"""ASCII rendering helpers for experiment results.

Every experiment prints its measured numbers next to the paper's
published ones so the shape comparison is immediate.
"""

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a padded ASCII table (floats formatted to 3 decimals).

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  -----
    1  2.500
    """
    formatted_rows: List[List[str]] = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(header)), *(len(row[col]) for row in formatted_rows))
        if formatted_rows
        else len(str(header))
        for col, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def paper_vs_measured(
    paper: Optional[float], measured: float, decimals: int = 3
) -> str:
    """'paper -> measured' cell, with '—' when the paper has no number."""
    measured_text = f"{measured:.{decimals}f}"
    if paper is None:
        return f"— / {measured_text}"
    return f"{paper:.{decimals}f} / {measured_text}"


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
    value_format: str = "{:.3f}",
) -> str:
    """Horizontal ASCII bars — the textual rendering of a paper figure.

    >>> print(render_bar_chart(["a", "b"], [1.0, 0.5], width=4))
    a  ████  1.000
    b  ██    0.500
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if not values:
        return "\n".join(lines)
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    for label, value in zip(labels, values):
        bar_length = 0 if peak <= 0 else round(width * value / peak)
        bar = "█" * bar_length
        lines.append(
            f"{str(label).ljust(label_width)}  {bar.ljust(width)}  "
            + value_format.format(value)
        )
    return "\n".join(lines)
