"""C1/C2 ratio sweep — probing the paper's "for simplicity" choice.

Equation 3 weights the page-content and form-content similarities with
C1 and C2; the paper sets both to 1 without ablation ("For simplicity,
in our implementation, we assign the same weights").  This sweep runs
CAFC-CH across C1:C2 ratios and checks that the balanced choice is
within noise of the best — i.e. that the paper's simplification does
not leave quality on the table.
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_table

# (C1, C2) grid: PC-heavy through balanced to FC-heavy.
DEFAULT_RATIOS: Tuple[Tuple[float, float], ...] = (
    (4.0, 1.0), (2.0, 1.0), (1.0, 1.0), (1.0, 2.0), (1.0, 4.0),
)


@dataclass
class RatioPoint:
    page_weight: float
    form_weight: float
    entropy: float
    f_measure: float

    @property
    def label(self) -> str:
        return f"{self.page_weight:g}:{self.form_weight:g}"


@dataclass
class WeightRatioResult:
    points: List[RatioPoint]

    def balanced(self) -> RatioPoint:
        for point in self.points:
            if point.page_weight == point.form_weight:
                return point
        raise ValueError("sweep does not include the balanced ratio")

    def best(self) -> RatioPoint:
        return min(self.points, key=lambda p: p.entropy)


def run_weight_ratio(
    context: ExperimentContext,
    ratios: Sequence[Tuple[float, float]] = DEFAULT_RATIOS,
) -> WeightRatioResult:
    """CAFC-CH across the C1:C2 grid (one deterministic run each)."""
    pages, gold = context.pages, context.gold_labels
    hub_clusters = context.hub_clusters(context.config.min_hub_cardinality)
    points: List[RatioPoint] = []
    for page_weight, form_weight in ratios:
        config = CAFCConfig(
            k=8, page_weight=page_weight, form_weight=form_weight
        )
        result = cafc_ch(pages, config, hub_clusters=hub_clusters)
        points.append(
            RatioPoint(
                page_weight=page_weight,
                form_weight=form_weight,
                entropy=total_entropy(result.clustering, gold),
                f_measure=overall_f_measure(result.clustering, gold),
            )
        )
    return WeightRatioResult(points=points)


def check_shape(result: WeightRatioResult, tolerance: float = 0.1) -> List[str]:
    """The balanced ratio must sit within ``tolerance`` entropy of the
    best ratio (empty list = claim holds)."""
    violations: List[str] = []
    balanced = result.balanced()
    best = result.best()
    if balanced.entropy > best.entropy + tolerance:
        violations.append(
            f"C1=C2 entropy {balanced.entropy:.3f} trails the best ratio "
            f"{best.label} ({best.entropy:.3f}) by more than {tolerance}"
        )
    return violations


def format_weight_ratio(result: WeightRatioResult) -> str:
    rows = [
        [point.label, f"{point.entropy:.3f}", f"{point.f_measure:.3f}"]
        for point in result.points
    ]
    return render_table(
        ["C1:C2 (PC:FC)", "entropy", "F-measure"],
        rows,
        title="Ablation: Equation-3 feature-space weights (paper uses 1:1)",
    )
