"""Section 4.1 — corpus composition audit.

The paper's dataset: 454 form pages, eight domains, 56 single-attribute /
398 multi-attribute forms, gathered half from the UIUC repository and
half by a focused crawler.  Our generator must reproduce the counts and
the domain spread (and hidden attributes must stay out of the model —
footnote 3).
"""

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_table


@dataclass
class CorpusProfileResult:
    n_pages: int
    n_single_attribute: int
    n_multi_attribute: int
    pages_per_domain: Dict[str, int]
    n_graph_pages: int


def run_corpus_profile(context: ExperimentContext) -> CorpusProfileResult:
    pages = context.pages
    single = sum(1 for page in pages if page.is_single_attribute)
    return CorpusProfileResult(
        n_pages=len(pages),
        n_single_attribute=single,
        n_multi_attribute=len(pages) - single,
        pages_per_domain=dict(Counter(context.gold_labels)),
        n_graph_pages=len(context.web.graph),
    )


def check_shape(result: CorpusProfileResult) -> List[str]:
    """Violated Section 4.1 facts (empty = all hold)."""
    violations: List[str] = []
    if result.n_pages != 454:
        violations.append(f"corpus has {result.n_pages} pages, not 454")
    if result.n_single_attribute != 56:
        violations.append(
            f"{result.n_single_attribute} single-attribute forms, not 56"
        )
    if len(result.pages_per_domain) != 8:
        violations.append(
            f"{len(result.pages_per_domain)} domains, not 8"
        )
    return violations


def format_corpus_profile(result: CorpusProfileResult) -> str:
    rows = [
        ["form pages", 454, result.n_pages],
        ["single-attribute", 56, result.n_single_attribute],
        ["multi-attribute", 398, result.n_multi_attribute],
        ["domains", 8, len(result.pages_per_domain)],
        ["web-graph pages", "—", result.n_graph_pages],
    ]
    table = render_table(
        ["statistic", "paper", "ours"],
        rows,
        title="Section 4.1: corpus profile",
    )
    per_domain = ", ".join(
        f"{name}: {count}" for name, count in sorted(result.pages_per_domain.items())
    )
    return table + f"\nper domain: {per_domain}"
