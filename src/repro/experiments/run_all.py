"""Run every paper experiment and print the paper-vs-measured report.

Used by ``python -m repro experiments`` and by the EXPERIMENTS.md
regeneration workflow.  Each experiment also reports its shape-claim
check: the list of paper claims the measured numbers violate (expected to
be empty on the default corpus).
"""

from typing import List, Tuple

from repro.experiments import corpus_profile, errors, fig2, fig3, hac_seeding
from repro.experiments import hubstats, robustness, table1, table2, vocabulary
from repro.experiments import weights
from repro.experiments.context import get_context


def experiment_names() -> List[str]:
    """The runnable experiment ids, in report order."""
    return [
        "corpus_profile", "table1", "hubstats", "vocabulary",
        "fig2", "fig3", "table2", "seeding", "weights", "errors",
        "robustness",
    ]


def run_all(
    seed: int = 42,
    n_runs: int = 20,
    include_extensions: bool = True,
    only: str = "",
) -> str:
    """Run the full experiment battery; returns the combined report.

    ``include_extensions`` appends the non-paper ablations (robustness
    sweep) after the paper's tables and figures.  ``only`` restricts the
    run to one experiment id (see :func:`experiment_names`).
    """
    from repro.vsm.batch import form_page_similarity_matrix

    if only and only not in experiment_names():
        raise ValueError(
            f"unknown experiment {only!r}; known: {experiment_names()}"
        )

    context = get_context(seed=seed)
    needs_matrix = only in ("", "table2", "seeding")
    # The pairwise similarity matrix is the dominant shared cost of the
    # HAC experiments; compute it once, on the vectorized path.
    matrix = form_page_similarity_matrix(context.pages) if needs_matrix else None

    sections: List[str] = []

    def wanted(name: str) -> bool:
        return not only or only == name

    def add(title_result: Tuple[str, List[str]]) -> None:
        text, violations = title_result
        sections.append(text)
        if violations:
            sections.append("SHAPE VIOLATIONS: " + "; ".join(violations))
        else:
            sections.append("shape check: all paper claims hold")
        sections.append("")

    if wanted("corpus_profile"):
        profile = corpus_profile.run_corpus_profile(context)
        add((corpus_profile.format_corpus_profile(profile),
             corpus_profile.check_shape(profile)))

    if wanted("table1"):
        t1 = table1.run_table1(context)
        add((table1.format_table1(t1), table1.check_shape(t1)))

    if wanted("hubstats"):
        hs = hubstats.run_hubstats(context)
        add((hubstats.format_hubstats(hs), hubstats.check_shape(hs)))

    if wanted("vocabulary"):
        vocab = vocabulary.run_vocabulary(context)
        add((vocabulary.format_vocabulary(vocab), vocabulary.check_shape(vocab)))

    if wanted("fig2"):
        f2 = fig2.run_fig2(context, n_runs=n_runs)
        add((fig2.format_fig2(f2), fig2.check_shape(f2)))

    if wanted("fig3"):
        f3 = fig3.run_fig3(context, n_cafc_c_runs=n_runs)
        add((fig3.format_fig3(f3), fig3.check_shape(f3)))

    if wanted("table2"):
        t2 = table2.run_table2(context, n_kmeans_runs=n_runs, matrix=matrix)
        add((table2.format_table2(t2), table2.check_shape(t2)))

    if wanted("seeding"):
        seeding = hac_seeding.run_hac_seeding(
            context, n_random_runs=n_runs, matrix=matrix
        )
        add((hac_seeding.format_hac_seeding(seeding),
             hac_seeding.check_shape(seeding)))

    if wanted("weights"):
        w = weights.run_weights(context, n_cafc_c_runs=n_runs)
        add((weights.format_weights(w), weights.check_shape(w)))

    if wanted("errors"):
        err = errors.run_errors(context)
        add((errors.format_errors(err), errors.check_shape(err)))

    if wanted("robustness") and (include_extensions or only == "robustness"):
        rob = robustness.run_robustness(
            context, coverages=(1.0, 0.8, 0.5, 0.2, 0.0)
        )
        add((robustness.format_robustness(rob), robustness.check_shape(rob)))

    return "\n".join(sections)


def main() -> None:
    print(run_all())


if __name__ == "__main__":
    main()
