"""Run every paper experiment and print the paper-vs-measured report.

Used by ``python -m repro experiments`` and by the EXPERIMENTS.md
regeneration workflow.  Each experiment also reports its shape-claim
check: the list of paper claims the measured numbers violate (expected to
be empty on the default corpus).

Independent experiments can run concurrently (``workers > 1``) through
the dependency-aware executor in :mod:`repro.experiments.parallel`: the
similarity matrix is one node, Table 2 and the seeding study depend on
it, and everything else depends only on the shared context.  The report
is assembled in canonical order after all nodes finish, so its text is
identical at any worker count.
"""

from typing import Callable, Dict, List, Tuple

from repro.experiments import corpus_profile, errors, fig2, fig3, hac_seeding
from repro.experiments import hubstats, robustness, table1, table2, vocabulary
from repro.experiments import weights
from repro.experiments.context import get_context
from repro.experiments.parallel import ExperimentSpec, run_specs

_Section = Tuple[str, List[str]]  # (report text, shape violations)


def experiment_names() -> List[str]:
    """The runnable experiment ids, in report order."""
    return [
        "corpus_profile", "table1", "hubstats", "vocabulary",
        "fig2", "fig3", "table2", "seeding", "weights", "errors",
        "robustness",
    ]


def run_all(
    seed: int = 42,
    n_runs: int = 20,
    include_extensions: bool = True,
    only: str = "",
    workers: int = 1,
    use_cache: bool = True,
    report_header: bool = False,
) -> str:
    """Run the full experiment battery; returns the combined report.

    ``include_extensions`` appends the non-paper ablations (robustness
    sweep) after the paper's tables and figures.  ``only`` restricts the
    run to one experiment id (see :func:`experiment_names`).
    ``workers`` runs independent experiments concurrently (and is also
    handed to corpus ingestion); ``use_cache`` controls the per-page
    analysis cache.  ``report_header`` prepends a run header naming the
    chosen executors.
    """
    from repro.vsm.batch import form_page_similarity_matrix

    if only and only not in experiment_names():
        raise ValueError(
            f"unknown experiment {only!r}; known: {experiment_names()}"
        )

    context = get_context(seed=seed, workers=workers, use_cache=use_cache)
    needs_matrix = only in ("", "table2", "seeding")

    def wanted(name: str) -> bool:
        return not only or only == name

    # One spec per experiment; runners close over the shared context.
    # The pairwise similarity matrix is the dominant shared cost of the
    # HAC experiments — it is its own node, computed once.
    specs: List[ExperimentSpec] = []
    formatters: Dict[str, Callable[[object], _Section]] = {}

    def experiment(
        name: str,
        runner: Callable,
        formatter: Callable,
        checker: Callable,
        deps: Tuple[str, ...] = (),
    ) -> None:
        if not wanted(name):
            return
        specs.append(ExperimentSpec(name=name, runner=runner, deps=deps))
        formatters[name] = lambda result: (formatter(result), checker(result))

    if needs_matrix:
        specs.append(ExperimentSpec(
            name="matrix",
            runner=lambda: form_page_similarity_matrix(context.pages),
        ))

    experiment(
        "corpus_profile",
        lambda: corpus_profile.run_corpus_profile(context),
        corpus_profile.format_corpus_profile, corpus_profile.check_shape,
    )
    experiment(
        "table1", lambda: table1.run_table1(context),
        table1.format_table1, table1.check_shape,
    )
    experiment(
        "hubstats", lambda: hubstats.run_hubstats(context),
        hubstats.format_hubstats, hubstats.check_shape,
    )
    experiment(
        "vocabulary", lambda: vocabulary.run_vocabulary(context),
        vocabulary.format_vocabulary, vocabulary.check_shape,
    )
    experiment(
        "fig2", lambda: fig2.run_fig2(context, n_runs=n_runs),
        fig2.format_fig2, fig2.check_shape,
    )
    experiment(
        "fig3", lambda: fig3.run_fig3(context, n_cafc_c_runs=n_runs),
        fig3.format_fig3, fig3.check_shape,
    )
    experiment(
        "table2",
        lambda matrix: table2.run_table2(
            context, n_kmeans_runs=n_runs, matrix=matrix
        ),
        table2.format_table2, table2.check_shape,
        deps=("matrix",),
    )
    experiment(
        "seeding",
        lambda matrix: hac_seeding.run_hac_seeding(
            context, n_random_runs=n_runs, matrix=matrix
        ),
        hac_seeding.format_hac_seeding, hac_seeding.check_shape,
        deps=("matrix",),
    )
    experiment(
        "weights", lambda: weights.run_weights(context, n_cafc_c_runs=n_runs),
        weights.format_weights, weights.check_shape,
    )
    experiment(
        "errors", lambda: errors.run_errors(context),
        errors.format_errors, errors.check_shape,
    )
    if include_extensions or only == "robustness":
        experiment(
            "robustness",
            lambda: robustness.run_robustness(
                context, coverages=(1.0, 0.8, 0.5, 0.2, 0.0)
            ),
            robustness.format_robustness, robustness.check_shape,
        )

    results = run_specs(specs, workers=workers)

    sections: List[str] = []
    if report_header:
        n_experiments = len(formatters)
        executor = (
            f"thread x{workers}" if workers > 1 else "serial"
        )
        sections.append(
            f"run: {n_experiments} experiment(s); executor: {executor}; "
            f"ingest: {context.ingest_summary}"
        )
        sections.append("")
    for name in experiment_names():
        if name not in formatters:
            continue
        text, violations = formatters[name](results[name])
        sections.append(text)
        if violations:
            sections.append("SHAPE VIOLATIONS: " + "; ".join(violations))
        else:
            sections.append("shape check: all paper claims hold")
        sections.append("")

    return "\n".join(sections)


def main() -> None:
    print(run_all())


if __name__ == "__main__":
    main()
