"""Robustness sweep: CAFC-CH under degrading backlink coverage.

Not a paper table — an ablation DESIGN.md calls for.  The paper's hub
evidence comes from a search-engine ``link:`` API that is *known
incomplete* ("backlink information is readily available, [but] it is
very incomplete", Section 3.1).  This sweep quantifies how CAFC-CH
degrades as the engine's index coverage shrinks, and verifies the
designed failure mode: when too few hub clusters survive, CAFC-CH falls
back to content-only clustering rather than crashing.
"""

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.core.form_page import RawFormPage
from repro.core.vectorizer import FormPageVectorizer
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_table
from repro.webgraph.search_api import SimulatedSearchEngine


@dataclass
class RobustnessPoint:
    coverage: float
    n_hub_clusters: int
    entropy: float
    f_measure: float
    fell_back: bool


@dataclass
class RobustnessResult:
    points: List[RobustnessPoint]
    min_hub_cardinality: int


def _harvest_with_coverage(
    context: ExperimentContext, coverage: float
) -> List[RawFormPage]:
    """Re-harvest backlinks through an engine with the given coverage."""
    web = context.web
    engine = SimulatedSearchEngine(
        web.graph,
        coverage=coverage,
        max_results=web.config.max_backlinks,
        seed=web.config.engine_seed,
    )
    pages: List[RawFormPage] = []
    for raw, site in zip(context.raw_pages, web.sites):
        backlinks = sorted(
            set(engine.link_query(site.form_page_url))
            | set(engine.link_query(site.root_url))
        )[: web.config.max_backlinks]
        pages.append(
            RawFormPage(
                url=raw.url, html=raw.html, backlinks=backlinks, label=raw.label
            )
        )
    return pages


def run_robustness(
    context: ExperimentContext,
    coverages: Sequence[float] = (1.0, 0.9, 0.7, 0.5, 0.3, 0.1, 0.0),
    min_hub_cardinality: int = 8,
) -> RobustnessResult:
    """Sweep engine coverage; cluster with CAFC-CH (CAFC-C fallback)."""
    from repro.core.hubs import build_hub_clusters

    gold = context.gold_labels
    points: List[RobustnessPoint] = []
    for coverage in coverages:
        raw = _harvest_with_coverage(context, coverage)
        pages = FormPageVectorizer().fit_transform(raw)
        hub_clusters = build_hub_clusters(pages, min_cardinality=min_hub_cardinality)
        fell_back = False
        try:
            result = cafc_ch(
                pages, CAFCConfig(k=8, min_hub_cardinality=min_hub_cardinality),
                hub_clusters=hub_clusters,
            )
            clustering = result.clustering
        except ValueError:
            fell_back = True
            clustering = cafc_c(pages, CAFCConfig(k=8, seed=0)).clustering
        points.append(
            RobustnessPoint(
                coverage=coverage,
                n_hub_clusters=len(hub_clusters),
                entropy=total_entropy(clustering, gold),
                f_measure=overall_f_measure(clustering, gold),
                fell_back=fell_back,
            )
        )
    return RobustnessResult(points=points, min_hub_cardinality=min_hub_cardinality)


def check_shape(result: RobustnessResult) -> List[str]:
    """Expected robustness properties (empty = all hold)."""
    violations: List[str] = []
    points = result.points
    full = next((p for p in points if p.coverage >= 0.9), None)
    zero = next((p for p in points if p.coverage == 0.0), None)
    if full and full.fell_back:
        violations.append("fell back to CAFC-C at full coverage")
    if zero and not zero.fell_back:
        violations.append("did not fall back with zero backlink coverage")
    # Hub-cluster counts must be monotone non-increasing with coverage.
    ordered = sorted(points, key=lambda p: -p.coverage)
    counts = [p.n_hub_clusters for p in ordered]
    if any(a < b for a, b in zip(counts, counts[1:])):
        violations.append("hub-cluster count not monotone in coverage")
    return violations


def format_robustness(result: RobustnessResult) -> str:
    rows = [
        [
            f"{point.coverage:.0%}",
            point.n_hub_clusters,
            f"{point.entropy:.3f}",
            f"{point.f_measure:.3f}",
            "yes" if point.fell_back else "",
        ]
        for point in result.points
    ]
    return render_table(
        ["engine coverage", "hub clusters", "entropy", "F", "CAFC-C fallback"],
        rows,
        title="Robustness: CAFC-CH vs backlink-index coverage",
    )
