"""Figure 2 — entropy and F-measure of CAFC-C and CAFC-CH under the
FC / PC / FC+PC configurations.

Paper values (read from Figure 2 and Section 4.2 text):

* CAFC-C  FC+PC: entropy 0.56, F-measure 0.74 (average of 20 runs)
* CAFC-C  FC:    entropy 1.1,  F-measure 0.61
* CAFC-CH FC+PC: entropy 0.15, F-measure 0.96 (min hub cardinality 8)
* CAFC-CH improves F by 29.7% over CAFC-C in the FC+PC configuration and
  cuts entropy to roughly a quarter.

Shape claims this experiment must reproduce:

1. combining FC and PC beats either space alone, for both algorithms;
2. FC alone is the weakest configuration;
3. CAFC-CH beats CAFC-C in every configuration, by a large factor for
   FC+PC.
"""

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig, ContentMode
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_bar_chart, render_table

# The paper's published numbers; None where the figure gives no exact value.
PAPER_VALUES: Dict[Tuple[str, str], Tuple[Optional[float], Optional[float]]] = {
    ("cafc-c", "fc"): (1.10, 0.61),
    ("cafc-c", "pc"): (None, None),
    ("cafc-c", "fc+pc"): (0.56, 0.74),
    ("cafc-ch", "fc"): (None, None),
    ("cafc-ch", "pc"): (None, None),
    ("cafc-ch", "fc+pc"): (0.15, 0.96),
}


@dataclass
class Fig2Row:
    """One bar pair of Figure 2."""

    algorithm: str            # 'cafc-c' | 'cafc-ch'
    mode: str                 # 'fc' | 'pc' | 'fc+pc'
    entropy: float
    f_measure: float
    entropy_std: float = 0.0
    f_measure_std: float = 0.0


@dataclass
class Fig2Result:
    rows: List[Fig2Row]

    def get(self, algorithm: str, mode: str) -> Fig2Row:
        for row in self.rows:
            if row.algorithm == algorithm and row.mode == mode:
                return row
        raise KeyError((algorithm, mode))


def run_fig2(context: ExperimentContext, n_runs: int = 20) -> Fig2Result:
    """Reproduce Figure 2.

    CAFC-C rows average ``n_runs`` random-seed runs (the paper uses 20);
    CAFC-CH is deterministic given the corpus, so one run per mode.
    """
    pages, gold = context.pages, context.gold_labels
    rows: List[Fig2Row] = []

    for mode in (ContentMode.FC, ContentMode.PC, ContentMode.FC_PC):
        entropies: List[float] = []
        f_measures: List[float] = []
        for run_seed in range(n_runs):
            config = CAFCConfig(k=8, content_mode=mode, seed=run_seed)
            result = cafc_c(pages, config)
            entropies.append(total_entropy(result.clustering, gold))
            f_measures.append(overall_f_measure(result.clustering, gold))
        rows.append(
            Fig2Row(
                algorithm="cafc-c",
                mode=mode.value,
                entropy=statistics.mean(entropies),
                f_measure=statistics.mean(f_measures),
                entropy_std=statistics.stdev(entropies) if n_runs > 1 else 0.0,
                f_measure_std=statistics.stdev(f_measures) if n_runs > 1 else 0.0,
            )
        )

    hub_clusters = context.hub_clusters(context.config.min_hub_cardinality)
    for mode in (ContentMode.FC, ContentMode.PC, ContentMode.FC_PC):
        config = CAFCConfig(k=8, content_mode=mode)
        result = cafc_ch(pages, config, hub_clusters=hub_clusters)
        rows.append(
            Fig2Row(
                algorithm="cafc-ch",
                mode=mode.value,
                entropy=total_entropy(result.clustering, gold),
                f_measure=overall_f_measure(result.clustering, gold),
            )
        )
    return Fig2Result(rows)


def check_shape(result: Fig2Result) -> List[str]:
    """Return the list of VIOLATED shape claims (empty = all hold)."""
    violations: List[str] = []
    for algorithm in ("cafc-c", "cafc-ch"):
        fc = result.get(algorithm, "fc")
        pc = result.get(algorithm, "pc")
        combined = result.get(algorithm, "fc+pc")
        if not combined.entropy <= min(fc.entropy, pc.entropy) + 1e-9:
            violations.append(f"{algorithm}: FC+PC entropy not the lowest")
        # F differences between PC and FC+PC are small even in the paper's
        # figure; entropy is the strict criterion, F tolerates run noise.
        if not combined.f_measure >= max(fc.f_measure, pc.f_measure) - 0.03:
            violations.append(f"{algorithm}: FC+PC F-measure not the highest")
        if not fc.entropy >= max(pc.entropy, combined.entropy) - 1e-9:
            violations.append(f"{algorithm}: FC not the weakest configuration")
    for mode in ("fc", "pc", "fc+pc"):
        if result.get("cafc-ch", mode).entropy > result.get("cafc-c", mode).entropy:
            violations.append(f"CAFC-CH worse than CAFC-C under {mode}")
    return violations


def format_fig2(result: Fig2Result) -> str:
    table_rows = []
    for row in result.rows:
        paper_e, paper_f = PAPER_VALUES.get((row.algorithm, row.mode), (None, None))
        table_rows.append(
            [
                row.algorithm.upper(),
                row.mode.upper(),
                f"{paper_e:.2f}" if paper_e is not None else "—",
                f"{row.entropy:.3f}",
                f"{paper_f:.2f}" if paper_f is not None else "—",
                f"{row.f_measure:.3f}",
            ]
        )
    table = render_table(
        ["algorithm", "content", "E(paper)", "E(ours)", "F(paper)", "F(ours)"],
        table_rows,
        title="Figure 2: entropy / F-measure by algorithm and content configuration",
    )
    chart = render_bar_chart(
        [f"{row.algorithm.upper()} {row.mode.upper()}" for row in result.rows],
        [row.entropy for row in result.rows],
        title="entropy (lower is better)",
    )
    return f"{table}\n\n{chart}"
