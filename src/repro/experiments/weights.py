"""Section 4.4 — differentiated vs uniform term-location weights.

"To verify the impact of differentiated weight assignment ... we executed
our best configuration (CAFC-CH over FC+PC) using uniform weights.
Although there is little change in the F-measure value (0.96 to 0.91),
there is an increase in entropy from 0.15 to 0.4. ... Note, however, that
the clusters derived by CAFC-CH with uniform weights are more homogeneous
than the clusters derived by CAFC-C using differentiated weights."

Shape claims:

1. uniform weights increase entropy (differentiated weighting helps);
2. the F-measure change is comparatively small;
3. even uniform-weight CAFC-CH beats differentiated-weight CAFC-C.
"""

import statistics
from dataclasses import dataclass
from typing import List

from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.experiments.context import ExperimentContext, get_context
from repro.experiments.reporting import render_table


@dataclass
class WeightsRow:
    configuration: str
    entropy: float
    f_measure: float


@dataclass
class WeightsResult:
    rows: List[WeightsRow]

    def get(self, configuration: str) -> WeightsRow:
        for row in self.rows:
            if row.configuration == configuration:
                return row
        raise KeyError(configuration)


def run_weights(
    context: ExperimentContext, n_cafc_c_runs: int = 20
) -> WeightsResult:
    """Compare differentiated vs uniform LOC weights.

    The uniform-weight corpus comes from a second vectorization pass over
    the same raw pages (cached by :func:`get_context`).
    """
    uniform_context = get_context(
        seed=context.web.config.seed, uniform_weights=True
    )
    rows: List[WeightsRow] = []

    for label, ctx in (
        ("cafc-ch differentiated", context),
        ("cafc-ch uniform", uniform_context),
    ):
        hub_clusters = ctx.hub_clusters(ctx.config.min_hub_cardinality)
        result = cafc_ch(ctx.pages, CAFCConfig(k=8), hub_clusters=hub_clusters)
        rows.append(
            WeightsRow(
                label,
                total_entropy(result.clustering, ctx.gold_labels),
                overall_f_measure(result.clustering, ctx.gold_labels),
            )
        )

    # Differentiated-weight CAFC-C, the comparison line for claim 3.
    entropies, f_measures = [], []
    for run_seed in range(n_cafc_c_runs):
        result = cafc_c(context.pages, CAFCConfig(k=8, seed=run_seed))
        entropies.append(total_entropy(result.clustering, context.gold_labels))
        f_measures.append(overall_f_measure(result.clustering, context.gold_labels))
    rows.append(
        WeightsRow(
            "cafc-c differentiated",
            statistics.mean(entropies),
            statistics.mean(f_measures),
        )
    )
    return WeightsResult(rows)


def check_shape(result: WeightsResult) -> List[str]:
    """Violated shape claims (empty = all hold)."""
    violations: List[str] = []
    differentiated = result.get("cafc-ch differentiated")
    uniform = result.get("cafc-ch uniform")
    baseline = result.get("cafc-c differentiated")
    if uniform.entropy < differentiated.entropy - 1e-9:
        violations.append("uniform weights did not increase entropy")
    if abs(uniform.f_measure - differentiated.f_measure) > 0.10:
        violations.append("F-measure changed more than 'little change'")
    if uniform.entropy > baseline.entropy:
        violations.append("uniform-weight CAFC-CH did not beat CAFC-C")
    return violations


def format_weights(result: WeightsResult) -> str:
    paper = {
        "cafc-ch differentiated": (0.15, 0.96),
        "cafc-ch uniform": (0.40, 0.91),
        "cafc-c differentiated": (0.56, 0.74),
    }
    rows = []
    for row in result.rows:
        paper_e, paper_f = paper[row.configuration]
        rows.append(
            [
                row.configuration,
                f"{paper_e:.2f}",
                f"{row.entropy:.3f}",
                f"{paper_f:.2f}",
                f"{row.f_measure:.3f}",
            ]
        )
    return render_table(
        ["configuration", "E(paper)", "E(ours)", "F(paper)", "F(ours)"],
        rows,
        title="Section 4.4: differentiated vs uniform location weights",
    )
