"""Shared experiment context: corpus, vectorized pages, hub clusters.

Generating and vectorizing the 454-page corpus takes a couple of seconds;
every experiment needs the same artifacts.  ``get_context`` builds them
once per (seed, uniform_weights) pair and caches the result for the
process lifetime.
"""

from dataclasses import dataclass
from functools import lru_cache
from typing import List

from repro.core.cafc_c import similarity_for
from repro.core.config import CAFCConfig
from repro.core.form_page import FormPage, RawFormPage
from repro.core.hubs import HubCluster, build_hub_clusters
from repro.core.similarity import FormPageSimilarity
from repro.core.vectorizer import FormPageVectorizer
from repro.parallel.config import ParallelConfig
from repro.vsm.weights import LocationWeights
from repro.webgen.corpus import SyntheticWeb, generate_benchmark


@dataclass
class ExperimentContext:
    """Everything the experiments share for one corpus."""

    web: SyntheticWeb
    raw_pages: List[RawFormPage]
    pages: List[FormPage]
    gold_labels: List[str]
    raw_hub_clusters: List[HubCluster]   # min cardinality 1, for statistics
    config: CAFCConfig
    ingest_summary: str = "serial"       # how vectorization actually ran

    @property
    def similarity(self) -> FormPageSimilarity:
        return similarity_for(self.config)

    def hub_clusters(self, min_cardinality: int) -> List[HubCluster]:
        """Hub clusters pruned at ``min_cardinality`` (from the raw set)."""
        return [
            cluster
            for cluster in self.raw_hub_clusters
            if cluster.cardinality >= min_cardinality
        ]


@lru_cache(maxsize=8)
def get_context(
    seed: int = 42,
    uniform_weights: bool = False,
    workers: int = 1,
    use_cache: bool = True,
    scheme: str = "auto",
) -> ExperimentContext:
    """Build (or fetch the cached) experiment context.

    ``uniform_weights`` vectorizes with LOC factors all set to 1 — the
    Section 4.4 ablation input.  ``workers`` / ``use_cache`` configure
    the ingestion layer (see docs/INGESTION.md); vectors are
    bit-identical regardless, so every (seed, uniform_weights) pair
    yields the same experiment numbers at any worker count.
    ``scheme`` vectorizes under an alternative weighting scheme
    (``"bm25"``, ``"tf"`` — see docs/RANKING.md) for per-scheme A/B
    runs; the default is the paper's Equation 1.
    """
    parallel = ParallelConfig(workers=workers, use_cache=use_cache)
    web = generate_benchmark(seed=seed)
    raw = web.raw_pages(parallel=parallel)
    location_weights = (
        LocationWeights.uniform() if uniform_weights else LocationWeights()
    )
    vectorizer = FormPageVectorizer(
        location_weights=location_weights, parallel=parallel, scheme=scheme
    )
    pages = vectorizer.fit_transform(raw)
    gold = [page.label or "?" for page in pages]
    hub_clusters = build_hub_clusters(pages, min_cardinality=1)
    return ExperimentContext(
        web=web,
        raw_pages=raw,
        pages=pages,
        gold_labels=gold,
        raw_hub_clusters=hub_clusters,
        config=CAFCConfig(k=8, scheme=scheme),
        ingest_summary=vectorizer.ingest_stats.describe(),
    )
