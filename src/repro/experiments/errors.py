"""Section 4.2 — error analysis of the best configuration.

"Most of the incorrectly clustered form pages belong to the Music and
Movie domains ... there are forms which actually search databases that
have information from both domains. ... among the 17 form pages that were
incorrectly clustered, only one is a single-attribute form."

Shape claims:

1. the error count is small relative to the corpus (paper: 17 / 454);
2. Music/Movie confusions dominate the errors;
3. at most a sliver of errors are single-attribute forms (paper: 1).
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.eval.confusion import ConfusionAnalysis
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_table


@dataclass
class ErrorsResult:
    n_pages: int
    n_misclustered: int
    n_single_attribute_errors: int
    n_entertainment_errors: int           # music<->movie confusions
    error_pairs: List[Tuple[str, str, int]]  # (gold, assigned, count)
    analysis: ConfusionAnalysis

    @property
    def entertainment_fraction(self) -> float:
        if self.n_misclustered == 0:
            return 1.0
        return self.n_entertainment_errors / self.n_misclustered


def run_errors(context: ExperimentContext) -> ErrorsResult:
    """Analyze the errors of the best configuration (CAFC-CH, FC+PC)."""
    hub_clusters = context.hub_clusters(context.config.min_hub_cardinality)
    result = cafc_ch(context.pages, CAFCConfig(k=8), hub_clusters=hub_clusters)
    analysis = ConfusionAnalysis.analyze(result.clustering, context.pages)

    entertainment = {"music", "movie"}
    n_entertainment = sum(
        1
        for page in analysis.misclustered
        if {page.gold_label, page.assigned_label} <= entertainment
    )
    pairs = [
        (gold, assigned, count)
        for (gold, assigned), count in analysis.error_pairs().most_common()
    ]
    return ErrorsResult(
        n_pages=len(context.pages),
        n_misclustered=analysis.n_misclustered,
        n_single_attribute_errors=analysis.n_single_attribute_errors,
        n_entertainment_errors=n_entertainment,
        error_pairs=pairs,
        analysis=analysis,
    )


def check_shape(result: ErrorsResult) -> List[str]:
    """Violated Section 4.2 claims (empty = all hold)."""
    violations: List[str] = []
    if result.n_misclustered > 0.10 * result.n_pages:
        violations.append(
            f"too many errors ({result.n_misclustered}); paper has 17/454"
        )
    if result.n_misclustered > 0 and result.entertainment_fraction < 0.5:
        violations.append("Music/Movie confusions do not dominate the errors")
    if result.n_single_attribute_errors > max(2, result.n_misclustered // 4):
        violations.append(
            "too many single-attribute errors "
            f"({result.n_single_attribute_errors}); paper has 1"
        )
    return violations


def format_errors(result: ErrorsResult) -> str:
    rows = [
        [gold, assigned, count] for gold, assigned, count in result.error_pairs
    ]
    table = render_table(
        ["gold domain", "assigned to", "pages"],
        rows or [["(none)", "", 0]],
        title="Section 4.2: mis-clustered pages (best configuration)",
    )
    summary = (
        f"\ntotal errors: {result.n_misclustered} / {result.n_pages} "
        f"(paper: 17 / 454); single-attribute errors: "
        f"{result.n_single_attribute_errors} (paper: 1); "
        f"music/movie confusions: {result.n_entertainment_errors}"
    )
    return table + summary
