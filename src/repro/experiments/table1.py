"""Table 1 — relationship between form size and page content.

The paper's table (average number of page terms located outside the form,
per form-size interval):

    form size   terms outside form
    < 10        181
    [10, 50)    131
    [50, 100)    76
    [100, 200)   83
    >= 200       20

Shape claim: pages with small forms are content-rich; pages with very
large forms carry little text beyond the form.  (The [50,100) / [100,200)
inversion in the paper is noise — the claim is the overall
anticorrelation between the extremes.)
"""

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_table

# (lower bound, upper bound or None, paper's average).
PAPER_BUCKETS = [
    (0, 10, 181),
    (10, 50, 131),
    (50, 100, 76),
    (100, 200, 83),
    (200, None, 20),
]


@dataclass
class Table1Row:
    lower: int
    upper: Optional[int]
    n_pages: int
    mean_outside_terms: float
    paper_value: int

    @property
    def interval_label(self) -> str:
        if self.lower == 0:
            return f"< {self.upper}"
        if self.upper is None:
            return f">= {self.lower}"
        return f"[{self.lower}, {self.upper})"


@dataclass
class Table1Result:
    rows: List[Table1Row]


def run_table1(context: ExperimentContext) -> Table1Result:
    """Bucket the corpus by form-term count and average the outside terms."""
    grouped: Dict[int, List[int]] = {lower: [] for lower, _, _ in PAPER_BUCKETS}
    for page in context.pages:
        for lower, upper, _ in PAPER_BUCKETS:
            if page.form_term_count >= lower and (
                upper is None or page.form_term_count < upper
            ):
                grouped[lower].append(page.terms_outside_form)
                break
    rows = [
        Table1Row(
            lower=lower,
            upper=upper,
            n_pages=len(grouped[lower]),
            mean_outside_terms=(
                statistics.mean(grouped[lower]) if grouped[lower] else 0.0
            ),
            paper_value=paper_value,
        )
        for lower, upper, paper_value in PAPER_BUCKETS
    ]
    return Table1Result(rows)


def check_shape(result: Table1Result) -> List[str]:
    """Violated shape claims (empty = all hold)."""
    violations: List[str] = []
    populated = [row for row in result.rows if row.n_pages > 0]
    if len(populated) < 4:
        violations.append("fewer than 4 form-size buckets populated")
        return violations
    smallest = populated[0]
    largest = populated[-1]
    if smallest.mean_outside_terms <= largest.mean_outside_terms:
        violations.append(
            "small-form pages are not more content-rich than large-form pages"
        )
    if largest.mean_outside_terms > 0.4 * smallest.mean_outside_terms:
        violations.append("large-form pages not sufficiently sparse (paper: ~9x gap)")
    return violations


def format_table1(result: Table1Result) -> str:
    rows = [
        [
            row.interval_label,
            row.n_pages,
            row.paper_value,
            f"{row.mean_outside_terms:.1f}",
        ]
        for row in result.rows
    ]
    return render_table(
        ["form size", "n (ours)", "outside terms (paper)", "outside terms (ours)"],
        rows,
        title="Table 1: page terms outside the form, by form size",
    )
