"""Table 2 — HAC versus k-means as the base clustering strategy.

Paper values:

    measure    CAFC-C(kmeans)  CAFC-C(HAC)   CAFC-CH(kmeans)  CAFC-CH(HAC)
    entropy    0.56            0.52          0.15             0.37
    F-measure  0.74            0.75          0.96             0.87

Shape claims:

1. hubs improve homogeneity regardless of the base strategy
   (CAFC-CH(x) < CAFC-C(x) in entropy for both x);
2. with hubs, k-means clearly beats HAC (the paper: entropy less than
   half) because HAC's local merge decisions propagate early mistakes.
"""

import statistics
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.clustering.hac import Linkage, hac, hac_from_groups, similarity_matrix
from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_table

PAPER_VALUES = {
    ("cafc-c", "kmeans"): (0.56, 0.74),
    ("cafc-c", "hac"): (0.52, 0.75),
    ("cafc-ch", "kmeans"): (0.15, 0.96),
    ("cafc-ch", "hac"): (0.37, 0.87),
}


@dataclass
class Table2Cell:
    algorithm: str      # 'cafc-c' | 'cafc-ch'
    strategy: str       # 'kmeans' | 'hac'
    entropy: float
    f_measure: float


@dataclass
class Table2Result:
    cells: List[Table2Cell]
    linkage: Linkage

    def get(self, algorithm: str, strategy: str) -> Table2Cell:
        for cell in self.cells:
            if cell.algorithm == algorithm and cell.strategy == strategy:
                return cell
        raise KeyError((algorithm, strategy))


def _disjoint_hub_groups(
    clusters, pages, similarity, drop_fraction: float = 0.6
) -> List[List[int]]:
    """Hub clusters as disjoint index groups for HAC seeding.

    Two content-reinforcement steps before handing groups to HAC:

    * the loosest ``drop_fraction`` of clusters (directories) is dropped —
      aggressively, because HAC can never undo a heterogeneous initial
      group the way k-means reassignment can;
    * surviving clusters claim pages tightest-first, so a page co-cited
      by both a domain hub and a directory lands with the domain hub.
    """
    from repro.link_analysis.hub_quality import score_hub_clusters

    scored = score_hub_clusters(clusters, pages, similarity)
    keep = max(1, int(round(len(scored) * (1.0 - drop_fraction))))
    assigned: set = set()
    groups: List[List[int]] = []
    for quality in scored[:keep]:
        group = [i for i in quality.cluster.members if i not in assigned]
        assigned.update(group)
        if group:
            groups.append(group)
    return groups


def run_table2(
    context: ExperimentContext,
    linkage: Linkage = Linkage.AVERAGE,
    n_kmeans_runs: int = 20,
    matrix: Optional[np.ndarray] = None,
) -> Table2Result:
    """Reproduce Table 2 (all four algorithm x strategy cells).

    ``matrix`` lets callers reuse a precomputed pairwise similarity
    matrix (it is the dominant cost).
    """
    pages, gold = context.pages, context.gold_labels
    similarity = context.similarity
    cells: List[Table2Cell] = []

    # CAFC-C (k-means): average of random-seed runs.
    entropies, f_measures = [], []
    for run_seed in range(n_kmeans_runs):
        result = cafc_c(pages, CAFCConfig(k=8, seed=run_seed))
        entropies.append(total_entropy(result.clustering, gold))
        f_measures.append(overall_f_measure(result.clustering, gold))
    cells.append(
        Table2Cell(
            "cafc-c", "kmeans",
            statistics.mean(entropies), statistics.mean(f_measures),
        )
    )

    if matrix is None:
        matrix = similarity_matrix(pages, similarity)

    # CAFC-C (HAC): plain agglomeration cut at k.
    hac_result = hac(matrix, n_clusters=8, linkage=linkage)
    cells.append(
        Table2Cell(
            "cafc-c", "hac",
            total_entropy(hac_result.clustering, gold),
            overall_f_measure(hac_result.clustering, gold),
        )
    )

    # CAFC-CH (k-means): hub-seeded k-means.
    hub_clusters = context.hub_clusters(context.config.min_hub_cardinality)
    ch_result = cafc_ch(pages, CAFCConfig(k=8), hub_clusters=hub_clusters)
    cells.append(
        Table2Cell(
            "cafc-ch", "kmeans",
            total_entropy(ch_result.clustering, gold),
            overall_f_measure(ch_result.clustering, gold),
        )
    )

    # CAFC-CH (HAC): quality-filtered hub clusters as the initial
    # agglomeration state (see _disjoint_hub_groups for why the filter
    # must be aggressive for HAC specifically).
    groups = _disjoint_hub_groups(hub_clusters, pages, similarity)
    seeded_hac = hac_from_groups(matrix, groups, n_clusters=8, linkage=linkage)
    cells.append(
        Table2Cell(
            "cafc-ch", "hac",
            total_entropy(seeded_hac.clustering, gold),
            overall_f_measure(seeded_hac.clustering, gold),
        )
    )
    return Table2Result(cells=cells, linkage=linkage)


def check_shape(result: Table2Result) -> List[str]:
    """Violated shape claims (empty = all hold)."""
    violations: List[str] = []
    for strategy in ("kmeans", "hac"):
        if (
            result.get("cafc-ch", strategy).entropy
            > result.get("cafc-c", strategy).entropy
        ):
            violations.append(f"hubs did not improve the {strategy} strategy")
    ch_kmeans = result.get("cafc-ch", "kmeans").entropy
    ch_hac = result.get("cafc-ch", "hac").entropy
    if ch_kmeans > ch_hac:
        violations.append("with hubs, k-means did not beat HAC")
    return violations


def format_table2(result: Table2Result) -> str:
    rows = []
    for cell in result.cells:
        paper_e, paper_f = PAPER_VALUES[(cell.algorithm, cell.strategy)]
        rows.append(
            [
                cell.algorithm.upper(),
                cell.strategy,
                f"{paper_e:.2f}",
                f"{cell.entropy:.3f}",
                f"{paper_f:.2f}",
                f"{cell.f_measure:.3f}",
            ]
        )
    return render_table(
        ["algorithm", "strategy", "E(paper)", "E(ours)", "F(paper)", "F(ours)"],
        rows,
        title=f"Table 2: HAC vs k-means ({result.linkage.value} linkage)",
    )
