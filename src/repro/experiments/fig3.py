"""Figure 3 — CAFC-CH entropy vs minimum hub-cluster cardinality.

The paper sweeps the minimum cardinality from >2 to >11 (i.e. thresholds
3..12) and finds:

1. the best entropies occur when small hub clusters (cardinality < 7)
   are eliminated — a sweet spot in the middle of the sweep;
2. very high thresholds hurt: the surviving clusters may miss domains
   (in the paper, clusters of >= 14 pages only contain Air and Hotel);
3. CAFC-CH beats CAFC-C at *every* threshold;
4. pruning also shrinks the search space dramatically (3,450 -> 164 hub
   clusters at the paper's threshold).
"""

import statistics
from dataclasses import dataclass
from typing import List

from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_bar_chart, render_table


@dataclass
class Fig3Point:
    min_cardinality: int
    n_hub_clusters: int
    entropy: float
    f_measure: float
    failed: bool = False   # fewer than k hub clusters survived pruning


@dataclass
class Fig3Result:
    points: List[Fig3Point]
    cafc_c_entropy: float       # the flat comparison line of Figure 3
    cafc_c_f_measure: float


def run_fig3(
    context: ExperimentContext,
    thresholds: range = range(3, 13),
    n_cafc_c_runs: int = 20,
) -> Fig3Result:
    """Sweep the hub-cluster cardinality threshold."""
    pages, gold = context.pages, context.gold_labels

    points: List[Fig3Point] = []
    for threshold in thresholds:
        hub_clusters = context.hub_clusters(threshold)
        config = CAFCConfig(k=8, min_hub_cardinality=threshold)
        try:
            result = cafc_ch(pages, config, hub_clusters=hub_clusters)
        except ValueError:
            points.append(
                Fig3Point(threshold, len(hub_clusters), float("nan"), 0.0, failed=True)
            )
            continue
        points.append(
            Fig3Point(
                min_cardinality=threshold,
                n_hub_clusters=len(hub_clusters),
                entropy=total_entropy(result.clustering, gold),
                f_measure=overall_f_measure(result.clustering, gold),
            )
        )

    entropies, f_measures = [], []
    for run_seed in range(n_cafc_c_runs):
        result = cafc_c(pages, CAFCConfig(k=8, seed=run_seed))
        entropies.append(total_entropy(result.clustering, gold))
        f_measures.append(overall_f_measure(result.clustering, gold))
    return Fig3Result(
        points=points,
        cafc_c_entropy=statistics.mean(entropies),
        cafc_c_f_measure=statistics.mean(f_measures),
    )


def check_shape(result: Fig3Result) -> List[str]:
    """Violated Figure 3 shape claims (empty = all hold)."""
    violations: List[str] = []
    usable = [p for p in result.points if not p.failed]
    if not usable:
        return ["no usable sweep points"]
    mid = [p for p in usable if 5 <= p.min_cardinality <= 9]
    high = [p for p in usable if p.min_cardinality >= 10]
    if mid and high:
        if min(p.entropy for p in mid) > min(p.entropy for p in high):
            violations.append("no mid-sweep sweet spot: high thresholds beat mid")
    for point in usable:
        if point.entropy > result.cafc_c_entropy:
            violations.append(
                f"CAFC-CH at threshold {point.min_cardinality} worse than CAFC-C"
            )
    counts = [p.n_hub_clusters for p in result.points]
    if counts and counts[0] <= counts[-1]:
        violations.append("pruning did not shrink the hub-cluster search space")
    return violations


def format_fig3(result: Fig3Result) -> str:
    rows = []
    for point in result.points:
        rows.append(
            [
                f">{point.min_cardinality - 1}",
                point.n_hub_clusters,
                "failed" if point.failed else f"{point.entropy:.3f}",
                "—" if point.failed else f"{point.f_measure:.3f}",
            ]
        )
    table = render_table(
        ["min card", "hub clusters", "entropy", "F-measure"],
        rows,
        title="Figure 3: CAFC-CH vs minimum hub-cluster cardinality",
    )
    usable = [p for p in result.points if not p.failed]
    chart = render_bar_chart(
        [f">{p.min_cardinality - 1}" for p in usable],
        [p.entropy for p in usable],
        title="entropy by minimum hub cardinality (lower is better)",
    )
    footer = (
        f"\nCAFC-C baseline: entropy {result.cafc_c_entropy:.3f}, "
        f"F-measure {result.cafc_c_f_measure:.3f} "
        "(paper: CAFC-CH always below the CAFC-C line)"
    )
    return f"{table}\n\n{chart}" + footer
