"""Section 4.3's seeding comparison: HAC-derived seeds vs hub seeds.

"One widely-used technique to derive seeds for k-means is to take a
sample of points and use HAC to cluster them. ... we ran HAC with the
best configuration (FC+PC) over the entire dataset and used the resulting
clusters as seeds for CAFC-C.  Although there is little difference in the
F-measure values (0.93 versus 0.96), the entropy is 60% higher than the
one obtained by CAFC-CH."

Shape claim checked: hub seeding beats HAC seeding on entropy by a wide
margin.  (On this corpus HAC seeds run *below* random seeds — see
EXPERIMENTS.md's documented deviation about content-only HAC; the
comparison also includes a k-means++ row as a stronger random baseline,
which hub seeding likewise dominates.)
"""

import statistics
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.clustering.hac import Linkage, hac, similarity_matrix
from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.core.form_page import centroid_of
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_table


@dataclass
class SeedingRow:
    seeding: str         # 'random' | 'kmeans++' | 'hac' | 'hubs'
    entropy: float
    f_measure: float


@dataclass
class HacSeedingResult:
    rows: List[SeedingRow]

    def get(self, seeding: str) -> SeedingRow:
        for row in self.rows:
            if row.seeding == seeding:
                return row
        raise KeyError(seeding)


def run_hac_seeding(
    context: ExperimentContext,
    n_random_runs: int = 20,
    matrix: Optional[np.ndarray] = None,
) -> HacSeedingResult:
    """Compare random, HAC-derived, and hub-cluster seeds for k-means."""
    pages, gold = context.pages, context.gold_labels
    rows: List[SeedingRow] = []

    # Random seeding (plain CAFC-C).
    entropies, f_measures = [], []
    for run_seed in range(n_random_runs):
        result = cafc_c(pages, CAFCConfig(k=8, seed=run_seed))
        entropies.append(total_entropy(result.clustering, gold))
        f_measures.append(overall_f_measure(result.clustering, gold))
    rows.append(
        SeedingRow("random", statistics.mean(entropies), statistics.mean(f_measures))
    )

    # k-means++ (not in the paper; the modern stronger random baseline).
    import random as _random

    from repro.clustering.seeding import kmeans_plus_plus_indices
    from repro.core.form_page import VectorPair

    entropies, f_measures = [], []
    for run_seed in range(n_random_runs):
        indices = kmeans_plus_plus_indices(
            pages, 8, context.similarity, _random.Random(run_seed)
        )
        seeds = [VectorPair.of(pages[i]) for i in indices]
        result = cafc_c(pages, CAFCConfig(k=8), seed_centroids=seeds)
        entropies.append(total_entropy(result.clustering, gold))
        f_measures.append(overall_f_measure(result.clustering, gold))
    rows.append(
        SeedingRow(
            "kmeans++", statistics.mean(entropies), statistics.mean(f_measures)
        )
    )

    # HAC over the entire dataset; its clusters become seed centroids.
    if matrix is None:
        matrix = similarity_matrix(pages, context.similarity)
    hac_result = hac(matrix, n_clusters=8, linkage=Linkage.AVERAGE)
    seed_centroids = [
        centroid_of([pages[i] for i in members])
        for members in hac_result.clustering.clusters
        if members
    ]
    result = cafc_c(pages, CAFCConfig(k=len(seed_centroids)), seed_centroids=seed_centroids)
    rows.append(
        SeedingRow(
            "hac",
            total_entropy(result.clustering, gold),
            overall_f_measure(result.clustering, gold),
        )
    )

    # Hub-cluster seeding (CAFC-CH).
    hub_clusters = context.hub_clusters(context.config.min_hub_cardinality)
    ch_result = cafc_ch(pages, CAFCConfig(k=8), hub_clusters=hub_clusters)
    rows.append(
        SeedingRow(
            "hubs",
            total_entropy(ch_result.clustering, gold),
            overall_f_measure(ch_result.clustering, gold),
        )
    )
    return HacSeedingResult(rows)


def check_shape(result: HacSeedingResult) -> List[str]:
    """Violated shape claims (empty = all hold)."""
    violations: List[str] = []
    hac_row = result.get("hac")
    hub_row = result.get("hubs")
    if hub_row.entropy > hac_row.entropy:
        violations.append("hub seeding did not beat HAC seeding on entropy")
    # The paper found F "little different" (0.93 vs 0.96).  Our HAC runs
    # weaker than the paper's (see EXPERIMENTS.md), so we only require the
    # gap to stay moderate rather than tiny.
    if abs(hub_row.f_measure - hac_row.f_measure) > 0.35:
        violations.append(
            "F-measure gap between hub and HAC seeding is implausibly large"
        )
    return violations


def format_hac_seeding(result: HacSeedingResult) -> str:
    rows = [
        [row.seeding, f"{row.entropy:.3f}", f"{row.f_measure:.3f}"]
        for row in result.rows
    ]
    table = render_table(
        ["seeding", "entropy", "F-measure"],
        rows,
        title="Section 4.3: seeding strategies for k-means",
    )
    return table + (
        "\npaper: F 0.93 (HAC seeds) vs 0.96 (hub seeds); HAC-seeded entropy "
        "~60% higher than CAFC-CH"
    )
