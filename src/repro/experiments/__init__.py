"""The paper's experimental harness — one module per table / figure.

Every experiment module exposes ``run_*`` (compute, return a result
dataclass) and ``format_*`` (render the result next to the paper's
published numbers).  The benchmark suite under ``benchmarks/`` drives
these; ``python -m repro experiments`` runs them all.

Index (see DESIGN.md for the full mapping):

========  =====================================================
fig2      Entropy/F-measure, CAFC-C vs CAFC-CH x FC/PC/FC+PC
fig3      CAFC-CH entropy vs minimum hub-cluster cardinality
table1    Page terms outside the form, per form-size bucket
table2    HAC vs k-means as the base clustering strategy
hac_seeding  HAC-derived seeds vs hub-cluster seeds (Section 4.3)
weights   Differentiated vs uniform LOC weights (Section 4.4)
hubstats  Backlink / hub-cluster statistics (Section 3.1)
errors    Mis-clustering analysis (Section 4.2)
corpus_profile  Corpus composition audit (Section 4.1)
========  =====================================================
"""

from repro.experiments.context import ExperimentContext, get_context

__all__ = ["ExperimentContext", "get_context"]
