"""Section 2.1's vocabulary study — the TF-IDF motivation, made runnable.

"To illustrate this point, we randomly selected 30 form pages from each
of the following domains: Music, Movie and Book. ... Generic terms such
as privaci, shop, copyright, help, have high frequency in form pages of
all three domains.  Clearly, these terms are not good discriminators ...
This is captured by the TF-IDF measure — generic terms tend to have a
very low IDF value.  In contrast, descriptive terms for a domain are
likely to have higher IDF.  For example, terms such as flight, return
and travel have high frequency within the Airfare domain, but they have
low overall frequency in the whole collection."

This experiment samples 30 pages per domain, ranks terms by how many
domains they saturate, and verifies the two claims:

1. the paper's example generic stems (privaci, shop, copyright, help)
   appear across (nearly) all sampled domains and get low IDF;
2. each domain owns high-IDF anchor terms frequent inside it but rare
   outside.
"""

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_table
from repro.html.text_extract import page_text
from repro.text.analyzer import TextAnalyzer
from repro.vsm.corpus import CorpusStats

# The paper's own examples of generic (Porter-stemmed) web terms.
PAPER_GENERIC_STEMS = ("privaci", "shop", "copyright", "help")


@dataclass
class DomainAnchors:
    """A domain's top discriminative terms."""

    domain: str
    anchors: List[Tuple[str, float]]   # (term, tf-idf-ish score)


@dataclass
class VocabularyResult:
    sampled_per_domain: int
    generic_terms: List[Tuple[str, int]]      # (stem, #domains it saturates)
    generic_idf: Dict[str, float]             # IDF of the paper's examples
    anchors: List[DomainAnchors]
    n_domains: int


def run_vocabulary(
    context: ExperimentContext,
    pages_per_domain: int = 30,
    seed: int = 0,
) -> VocabularyResult:
    """Sample pages per domain and analyze term discriminativeness."""
    rng = random.Random(seed)
    analyzer = TextAnalyzer()

    by_domain: Dict[str, List[int]] = {}
    for index, label in enumerate(context.gold_labels):
        by_domain.setdefault(label, []).append(index)

    # Term frequency per domain over the samples, plus a document-level
    # corpus for IDF.
    domain_term_counts: Dict[str, Counter] = {}
    corpus = CorpusStats()
    for domain, indices in sorted(by_domain.items()):
        sample = rng.sample(indices, min(pages_per_domain, len(indices)))
        counts: Counter = Counter()
        for page_index in sample:
            terms = analyzer.analyze(page_text(context.raw_pages[page_index].html))
            counts.update(terms)
            corpus.add_document(terms)
        domain_term_counts[domain] = counts

    n_domains = len(domain_term_counts)

    # A term "saturates" a domain when it appears at least once per three
    # sampled pages there.
    saturation_floor = max(1, pages_per_domain // 3)
    domains_saturated: Counter = Counter()
    for counts in domain_term_counts.values():
        for term, count in counts.items():
            if count >= saturation_floor:
                domains_saturated[term] += 1

    generic_terms = [
        (term, spread)
        for term, spread in domains_saturated.most_common()
        if spread >= n_domains - 1
    ][:15]

    generic_idf = {stem: corpus.idf(stem) for stem in PAPER_GENERIC_STEMS}

    # Domain anchors: frequent inside, rare outside -> tf_in * idf.
    anchors: List[DomainAnchors] = []
    for domain, counts in sorted(domain_term_counts.items()):
        scored = [
            (term, count * corpus.idf(term))
            for term, count in counts.items()
            if corpus.idf(term) > 0.0
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        anchors.append(DomainAnchors(domain=domain, anchors=scored[:5]))

    return VocabularyResult(
        sampled_per_domain=pages_per_domain,
        generic_terms=generic_terms,
        generic_idf=generic_idf,
        anchors=anchors,
        n_domains=n_domains,
    )


def check_shape(result: VocabularyResult) -> List[str]:
    """Violated Section 2.1 claims (empty = all hold)."""
    violations: List[str] = []
    if not result.generic_terms:
        violations.append("no cross-domain generic terms found")
    # The paper's example stems must carry low IDF (ubiquitous).
    max_anchor_idf = 0.0
    for domain_anchors in result.anchors:
        for _, score in domain_anchors.anchors:
            max_anchor_idf = max(max_anchor_idf, score)
    for stem, idf in result.generic_idf.items():
        if idf > 1.0:
            violations.append(
                f"paper generic stem {stem!r} has high IDF ({idf:.2f})"
            )
    # Every domain must own anchors.
    for domain_anchors in result.anchors:
        if not domain_anchors.anchors:
            violations.append(f"domain {domain_anchors.domain} has no anchors")
    return violations


def format_vocabulary(result: VocabularyResult) -> str:
    generic_rows = [
        [term, f"{spread}/{result.n_domains}"]
        for term, spread in result.generic_terms[:10]
    ]
    generic_table = render_table(
        ["generic stem", "domains saturated"],
        generic_rows,
        title=(
            f"Section 2.1 vocabulary study "
            f"({result.sampled_per_domain} pages/domain)"
        ),
    )
    idf_line = "paper's generic examples, IDF: " + ", ".join(
        f"{stem}={idf:.2f}" for stem, idf in result.generic_idf.items()
    )
    anchor_rows = [
        [
            domain_anchors.domain,
            ", ".join(term for term, _ in domain_anchors.anchors),
        ]
        for domain_anchors in result.anchors
    ]
    anchor_table = render_table(
        ["domain", "anchor terms (high TF within, high IDF overall)"],
        anchor_rows,
    )
    return f"{generic_table}\n{idf_line}\n\n{anchor_table}"
