"""Dependency-aware parallel execution for the experiment battery.

``repro experiments --workers N`` runs independent experiments
concurrently: each experiment is a pure function of the shared (frozen)
:class:`~repro.experiments.context.ExperimentContext`, so the only real
ordering constraints are data dependencies — today, the pairwise
similarity matrix that Table 2 and the HAC-seeding study both consume.

The executor is deliberately small: a topological schedule over
:class:`ExperimentSpec` nodes on a thread pool.  Threads (not
processes) because every runner reads the same in-memory context and
the experiments' costs are dominated by long numeric loops that release
no GIL — the win on a single core is zero, but the scheduling is exact
and the report is assembled in canonical order afterwards, so output is
byte-identical to a serial run at any worker count.
"""

import concurrent.futures
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ExperimentSpec:
    """One schedulable unit: a named runner plus the names it needs.

    ``runner`` receives the dependency results positionally, in
    ``deps`` order, and its return value becomes this node's result.
    """

    name: str
    runner: Callable
    deps: Tuple[str, ...] = ()


def _topological_order(specs: Sequence[ExperimentSpec]) -> List[ExperimentSpec]:
    """Validate the graph (unique names, known deps, no cycles) and
    return a deterministic topological order (input order preserved
    among ready nodes)."""
    by_name: Dict[str, ExperimentSpec] = {}
    for spec in specs:
        if spec.name in by_name:
            raise ValueError(f"duplicate experiment spec {spec.name!r}")
        by_name[spec.name] = spec
    for spec in specs:
        for dep in spec.deps:
            if dep not in by_name:
                raise ValueError(
                    f"spec {spec.name!r} depends on unknown {dep!r}"
                )
    ordered: List[ExperimentSpec] = []
    done: set = set()
    remaining = list(specs)
    while remaining:
        ready = [s for s in remaining if all(d in done for d in s.deps)]
        if not ready:
            cycle = ", ".join(s.name for s in remaining)
            raise ValueError(f"dependency cycle among experiments: {cycle}")
        for spec in ready:
            ordered.append(spec)
            done.add(spec.name)
        remaining = [s for s in remaining if s.name not in done]
    return ordered


def run_specs(
    specs: Sequence[ExperimentSpec], workers: int = 1
) -> Dict[str, object]:
    """Run every spec, honoring dependencies; returns name -> result.

    ``workers <= 1`` runs serially in topological order (no pool).  With
    more workers, a node is submitted the moment its dependencies
    finish.  The first runner exception cancels everything not yet
    started and re-raises.
    """
    ordered = _topological_order(specs)
    results: Dict[str, object] = {}

    if workers <= 1:
        for spec in ordered:
            results[spec.name] = spec.runner(
                *[results[dep] for dep in spec.deps]
            )
        return results

    pending = {spec.name: spec for spec in ordered}
    futures: Dict[concurrent.futures.Future, str] = {}
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-experiment"
    ) as pool:
        def submit_ready() -> None:
            for name in [
                n for n, s in pending.items()
                if all(d in results for d in s.deps)
            ]:
                spec = pending.pop(name)
                future = pool.submit(
                    spec.runner, *[results[dep] for dep in spec.deps]
                )
                futures[future] = name

        submit_ready()
        while futures:
            completed, _ = concurrent.futures.wait(
                futures, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in completed:
                name = futures.pop(future)
                try:
                    results[name] = future.result()
                except BaseException:
                    for queued in futures:
                        queued.cancel()
                    raise
            submit_ready()
    return results
