"""Section 3.1 — backlink and hub-cluster statistics.

Paper numbers:

* up to 100 backlinks extracted per form page;
* AltaVista returned no backlinks for over 15% of the forms;
* 3,450 distinct co-cited page sets (hub clusters);
* 69% of the hub clusters are homogeneous (single domain);
* there are representative homogeneous hub clusters in all domains;
* pruning small clusters (min cardinality 8) shrinks 3,450 -> 164;
* hub clusters with >= 14 pages only contain Airfare and Hotel forms.

The absolute cluster counts depend on corpus scale (our synthetic hub
layer is smaller than the open web's); the ratios and qualitative claims
are what must hold.
"""

from dataclasses import dataclass
from typing import List, Set

from repro.core.hubs import homogeneity_rate
from repro.experiments.context import ExperimentContext
from repro.experiments.reporting import render_table
from repro.webgraph.urls import same_site


@dataclass
class HubStatsResult:
    n_form_pages: int
    n_pages_without_backlinks: int       # no inter-site backlink harvested
    n_raw_hub_clusters: int
    raw_homogeneity: float
    domains_with_homogeneous_clusters: Set[str]
    all_domains: Set[str]
    n_pruned_hub_clusters: int           # at the headline threshold (8)
    large_cluster_domains: Set[str]      # domains seen in clusters >= 14

    @property
    def fraction_without_backlinks(self) -> float:
        if self.n_form_pages == 0:
            return 0.0
        return self.n_pages_without_backlinks / self.n_form_pages


def run_hubstats(context: ExperimentContext) -> HubStatsResult:
    """Compute the Section 3.1 statistics over the benchmark corpus."""
    pages = context.pages

    n_without = 0
    for raw in context.raw_pages:
        external = [b for b in raw.backlinks if not same_site(b, raw.url)]
        if not external:
            n_without += 1

    raw_clusters = context.raw_hub_clusters
    homogeneous_domains: Set[str] = set()
    for cluster in raw_clusters:
        if cluster.is_homogeneous(pages):
            homogeneous_domains.add(pages[cluster.members[0]].label or "?")

    large_domains: Set[str] = set()
    for cluster in raw_clusters:
        if cluster.cardinality >= 14:
            large_domains.update(cluster.member_labels(pages))

    pruned = context.hub_clusters(context.config.min_hub_cardinality)

    return HubStatsResult(
        n_form_pages=len(pages),
        n_pages_without_backlinks=n_without,
        n_raw_hub_clusters=len(raw_clusters),
        raw_homogeneity=homogeneity_rate(raw_clusters, pages),
        domains_with_homogeneous_clusters=homogeneous_domains,
        all_domains=set(context.gold_labels),
        n_pruned_hub_clusters=len(pruned),
        large_cluster_domains=large_domains,
    )


def check_shape(result: HubStatsResult) -> List[str]:
    """Violated Section 3.1 claims (empty = all hold)."""
    violations: List[str] = []
    if not 0.10 <= result.fraction_without_backlinks <= 0.30:
        violations.append(
            f"backlink-less fraction {result.fraction_without_backlinks:.2f} "
            "far from the paper's >15%"
        )
    if not 0.55 <= result.raw_homogeneity <= 0.85:
        violations.append(
            f"hub-cluster homogeneity {result.raw_homogeneity:.2f} far from 69%"
        )
    if result.domains_with_homogeneous_clusters != result.all_domains:
        missing = result.all_domains - result.domains_with_homogeneous_clusters
        violations.append(f"domains without homogeneous hub clusters: {missing}")
    if result.n_pruned_hub_clusters >= result.n_raw_hub_clusters:
        violations.append("pruning did not shrink the hub-cluster set")
    extra = result.large_cluster_domains - {"airfare", "hotel"}
    if extra:
        violations.append(f"large (>=14) hub clusters contain extra domains: {extra}")
    return violations


def format_hubstats(result: HubStatsResult) -> str:
    rows = [
        ["form pages", 454, result.n_form_pages],
        [
            "pages without backlinks",
            ">15%",
            f"{result.n_pages_without_backlinks} "
            f"({result.fraction_without_backlinks:.0%})",
        ],
        ["raw hub clusters", 3450, result.n_raw_hub_clusters],
        ["homogeneous fraction", "69%", f"{result.raw_homogeneity:.0%}"],
        [
            "domains with homogeneous clusters",
            "all 8",
            len(result.domains_with_homogeneous_clusters),
        ],
        ["clusters after pruning (>=8)", 164, result.n_pruned_hub_clusters],
        [
            "domains in clusters >= 14",
            "Air, Hotel",
            ", ".join(sorted(result.large_cluster_domains)) or "(none)",
        ],
    ]
    return render_table(
        ["statistic", "paper", "ours"],
        rows,
        title="Section 3.1: backlink / hub-cluster statistics",
    )
