"""Synthetic database records per domain.

Each record is a fielded entity (a job posting, a flight fare, an
album, ...) whose searchable text mixes the domain's value pools and
topic vocabulary — the contents a post-query prober actually sees.
"""

import random
from typing import Dict, List

from repro.webgen.domains import DomainSpec
from repro.webgen.vocab import GENERIC_NOISE, brand_name, zipf_sample


def _entity_name(domain: DomainSpec, rng: random.Random) -> str:
    """A per-record entity name with domain flavour."""
    flavor = rng.choice(domain.topic_words[:10])
    return f"{brand_name(rng).capitalize()} {flavor}"


def _field_values(domain: DomainSpec, rng: random.Random) -> Dict[str, str]:
    """One value per select-style schema attribute."""
    values: Dict[str, str] = {}
    for attribute in domain.attributes:
        if attribute.kind == "select" and attribute.value_pool:
            values[attribute.concept] = rng.choice(list(attribute.value_pool))
        elif attribute.kind == "text":
            values[attribute.concept] = _entity_name(domain, rng)
    return values


def _description(domain: DomainSpec, rng: random.Random, length: int = 14) -> str:
    """Record prose: mostly domain vocabulary with generic filler."""
    words = zipf_sample(list(domain.topic_words), length, rng)
    words += zipf_sample(GENERIC_NOISE, max(2, length // 4), rng)
    rng.shuffle(words)
    return " ".join(words)


def generate_records(
    domain: DomainSpec,
    n_records: int,
    seed: str,
) -> List[Dict[str, str]]:
    """Generate ``n_records`` fielded records for ``domain``.

    ``seed`` is a string (typically the site brand) so every site gets
    its own deterministic contents.
    """
    rng = random.Random(f"records:{domain.name}:{seed}")
    records: List[Dict[str, str]] = []
    for _ in range(n_records):
        record = _field_values(domain, rng)
        record["description"] = _description(domain, rng)
        records.append(record)
    return records


def generate_mixed_records(
    primary: DomainSpec,
    secondary: DomainSpec,
    n_records: int,
    seed: str,
) -> List[Dict[str, str]]:
    """Records for a genuinely mixed database (Figure 4's Music+Movie
    stores): roughly half from each domain."""
    half = n_records // 2
    return (
        generate_records(primary, n_records - half, seed)
        + generate_records(secondary, half, seed + ":secondary")
    )
