"""An in-memory hidden database with keyword and fielded access.

This is the thing behind a searchable form: a collection of fielded
records, reachable only through queries.  Two access paths mirror the
two interface species:

* :meth:`HiddenDatabase.keyword_search` — what a single-attribute
  keyword box exposes (and what a post-query prober can use);
* :meth:`HiddenDatabase.fielded_search` — what a multi-attribute form
  exposes (exact-match filters per field).

The keyword index is a standard inverted index over analyzed record
text (same analyzer as the rest of the library, so probe terms and page
terms live in one stem space).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from repro.text.analyzer import TextAnalyzer


@dataclass(frozen=True)
class Record:
    """One database record: fielded values plus derived search text."""

    fields: Mapping[str, str]

    def text(self) -> str:
        return " ".join(str(value) for value in self.fields.values())

    def get(self, name: str, default: str = "") -> str:
        return self.fields.get(name, default)


@dataclass
class QueryResult:
    """What a search interface returns."""

    records: List[Record]

    @property
    def count(self) -> int:
        return len(self.records)


class HiddenDatabase:
    """A queryable record collection behind one form."""

    def __init__(
        self,
        records: List[Dict[str, str]],
        analyzer: Optional[TextAnalyzer] = None,
    ) -> None:
        self.analyzer = analyzer or TextAnalyzer()
        self.records: List[Record] = [Record(fields=dict(r)) for r in records]
        # Inverted index: stem -> record indices.
        self._index: Dict[str, Set[int]] = {}
        for index, record in enumerate(self.records):
            for term in set(self.analyzer.analyze(record.text())):
                self._index.setdefault(term, set()).add(index)

    # ----------------------------------------------------------------
    # Interfaces.
    # ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def keyword_search(self, query: str, mode: str = "and") -> QueryResult:
        """Full-text search, AND (default) or OR semantics over stems.

        This is the access path a keyword form exposes; a prober calls
        it with single-term probes and reads the match counts.
        """
        if mode not in ("and", "or"):
            raise ValueError(f"unknown mode {mode!r} (use 'and' or 'or')")
        terms = self.analyzer.analyze(query)
        if not terms:
            return QueryResult(records=[])
        postings = [self._index.get(term, set()) for term in terms]
        if mode == "and":
            matched: Set[int] = set.intersection(*postings)
        else:
            matched = set.union(*postings)
        return QueryResult(records=[self.records[i] for i in sorted(matched)])

    def count(self, term: str) -> int:
        """Match count of a single-term probe (the QProber primitive)."""
        return self.keyword_search(term).count

    def fielded_search(self, filters: Mapping[str, str]) -> QueryResult:
        """Multi-attribute search: case-insensitive exact field matches.

        Empty filter values are ignored (an untouched form field).
        """
        matched = []
        active = {
            name: value.strip().lower()
            for name, value in filters.items()
            if value and value.strip()
        }
        for record in self.records:
            if all(
                record.get(name).strip().lower() == value
                for name, value in active.items()
            ):
                matched.append(record)
        return QueryResult(records=matched)

    def vocabulary_size(self) -> int:
        return len(self._index)
