"""Building and routing the hidden databases of a synthetic web.

``build_hidden_databases`` instantiates one :class:`HiddenDatabase` per
generated site (deterministically — the contents are a pure function of
the site's brand and domain), and records which access paths each site's
form exposes:

* a **keyword path** when the form carries a free-text box that searches
  record text (a single-attribute keyword form, or a multi-attribute
  form with a ``keyword``-style field);
* always a **fielded path** for multi-attribute forms.

The paper's post-query discussion turns exactly on this split: probing
"is effective for simple, keyword-based interfaces ... [but] cannot be
easily adapted to (structured) multi-attribute interfaces."
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hiddendb.database import HiddenDatabase
from repro.hiddendb.records import generate_mixed_records, generate_records
from repro.webgen.corpus import SyntheticWeb
from repro.webgen.domains import domain_by_name
from repro.webgen.sites import Site

# Schema concepts that expose full-text search over record text when
# rendered as text inputs.
_KEYWORD_CONCEPTS = frozenset({"keyword", "q"})


@dataclass
class SourceEntry:
    """One hidden-web source: its database and access paths."""

    site: Site
    database: HiddenDatabase
    keyword_accessible: bool


class DatabaseRegistry:
    """form-page URL -> hidden database + interface metadata."""

    def __init__(self) -> None:
        self._entries: Dict[str, SourceEntry] = {}

    def add(self, entry: SourceEntry) -> None:
        self._entries[entry.site.form_page_url] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def get(self, url: str) -> Optional[SourceEntry]:
        return self._entries.get(url)

    def entries(self) -> List[SourceEntry]:
        return [self._entries[url] for url in sorted(self._entries)]

    def keyword_accessible(self) -> List[SourceEntry]:
        return [e for e in self.entries() if e.keyword_accessible]


def _form_has_keyword_field(site: Site) -> bool:
    """Whether the site's form exposes a full-text keyword path."""
    if site.is_single_attribute:
        return True
    from repro.html.forms import extract_forms

    page = site.pages[1] if len(site.pages) > 1 else None
    html = page.html if page is not None and page.kind == "form" else None
    if html is None:
        html = next(p.html for p in site.pages if p.kind == "form")
    for form in extract_forms(html):
        for form_field in form.text_inputs:
            if form_field.name in _KEYWORD_CONCEPTS:
                return True
    return False


def build_hidden_databases(
    web: SyntheticWeb,
    records_per_database: int = 150,
) -> DatabaseRegistry:
    """One deterministic database per site of ``web``."""
    registry = DatabaseRegistry()
    music = domain_by_name("music")
    movie = domain_by_name("movie")
    for site in web.sites:
        domain = domain_by_name(site.domain_name)
        if site.is_mixed_entertainment:
            other = movie if domain.name == "music" else music
            records = generate_mixed_records(
                domain, other, records_per_database, seed=site.brand
            )
        else:
            records = generate_records(
                domain, records_per_database, seed=site.brand
            )
        registry.add(
            SourceEntry(
                site=site,
                database=HiddenDatabase(records),
                keyword_accessible=_form_has_keyword_field(site),
            )
        )
    return registry
