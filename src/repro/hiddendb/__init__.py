"""The hidden databases behind the forms.

The paper's taxonomy (Section 1) splits source-organization approaches
into *pre-query* (visible form context — CAFC's side) and *post-query*
(probe the database through its interface and use the returned contents
— QProber's side).  Evaluating the post-query baseline requires actual
databases behind the generated forms, so this package provides them:

* :mod:`repro.hiddendb.records` — synthetic record generation per domain
  (job postings, flight fares, albums, ...), deterministic per site;
* :mod:`repro.hiddendb.database` — an in-memory document database with
  an inverted keyword index and fielded filtering, plus the
  keyword-query entry point a probing client uses;
* :mod:`repro.hiddendb.registry` — building one database per generated
  site and routing a form's keyword field to it.
"""

from repro.hiddendb.database import HiddenDatabase, Record
from repro.hiddendb.records import generate_records
from repro.hiddendb.registry import DatabaseRegistry, build_hidden_databases

__all__ = [
    "HiddenDatabase",
    "Record",
    "generate_records",
    "DatabaseRegistry",
    "build_hidden_databases",
]
