"""Keyword-based hidden-web siphoning (paper reference [2]).

Barbosa & Freire's "Siphoning Hidden-Web Data through Keyword-Based
Interfaces" (SBBD'04) extracts a database's contents through its keyword
box: issue a seed query, mine new query terms from the returned records,
and iterate until the result set stops growing or the query budget runs
out.  CAFC supplies the organization step that makes such siphoning
practical at scale (you want domain-appropriate seed terms per cluster).

:class:`KeywordSiphoner` implements the greedy variant: the next probe
is the unseen term that appeared most often in retrieved-but-unexpanded
text.
"""

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.hiddendb.database import HiddenDatabase, Record
from repro.text.analyzer import TextAnalyzer


@dataclass
class SiphonResult:
    """Outcome of a siphoning session."""

    retrieved: List[Record]
    queries_issued: int
    terms_used: List[str]
    database_size: int

    @property
    def coverage(self) -> float:
        if self.database_size == 0:
            return 1.0
        return len(self.retrieved) / self.database_size


class KeywordSiphoner:
    """Greedy term-mining siphoner over a keyword interface.

    Parameters
    ----------
    analyzer:
        Term pipeline for mining candidate queries from record text.
    max_queries:
        Hard query budget (real interfaces rate-limit).
    stop_after_barren:
        Stop after this many consecutive queries that retrieve nothing
        new — the coverage curve has plateaued.
    """

    def __init__(
        self,
        analyzer: Optional[TextAnalyzer] = None,
        max_queries: int = 50,
        stop_after_barren: int = 5,
    ) -> None:
        if max_queries < 1:
            raise ValueError("max_queries must be positive")
        self.analyzer = analyzer or TextAnalyzer()
        self.max_queries = max_queries
        self.stop_after_barren = stop_after_barren

    def siphon(
        self,
        database: HiddenDatabase,
        seed_terms: List[str],
    ) -> SiphonResult:
        """Extract as much of ``database`` as the budget allows.

        ``seed_terms`` boot the process — in the CAFC workflow these are
        the cluster's top centroid terms, which is what makes cluster
        organization the natural front end to siphoning.
        """
        if not seed_terms:
            raise ValueError("need at least one seed term")

        retrieved: List[Record] = []
        seen_record_ids: Set[int] = set()
        candidate_counts: Counter = Counter()
        tried: Set[str] = set()
        terms_used: List[str] = []
        queries = 0
        barren_streak = 0

        queue: List[str] = [
            term for term in (self.analyzer.analyze(" ".join(seed_terms)))
        ] or list(seed_terms)

        while queries < self.max_queries:
            # Next term: pending seeds first, then the hottest mined term.
            term = None
            while queue:
                head = queue.pop(0)
                if head not in tried:
                    term = head
                    break
            if term is None:
                for candidate, _ in candidate_counts.most_common():
                    if candidate not in tried:
                        term = candidate
                        break
            if term is None:
                break  # mined vocabulary exhausted

            tried.add(term)
            terms_used.append(term)
            queries += 1
            result = database.keyword_search(term)

            new_records = 0
            for record in result.records:
                record_id = id(record)
                if record_id in seen_record_ids:
                    continue
                seen_record_ids.add(record_id)
                retrieved.append(record)
                new_records += 1
                candidate_counts.update(self.analyzer.analyze(record.text()))

            barren_streak = 0 if new_records else barren_streak + 1
            if barren_streak >= self.stop_after_barren:
                break
            if len(retrieved) == len(database):
                break  # everything siphoned

        return SiphonResult(
            retrieved=retrieved,
            queries_issued=queries,
            terms_used=terms_used,
            database_size=len(database),
        )
