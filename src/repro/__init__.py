"""repro — a reproduction of CAFC (Context-Aware Form Clustering).

Implements "Organizing Hidden-Web Databases by Clustering Visible Web
Documents" (Barbosa, Freire, Silva — ICDE 2007): the form-page model, the
CAFC-C and CAFC-CH clustering algorithms, every substrate they stand on
(HTML parsing, text analysis, TF-IDF, k-means/HAC, a simulated web with a
`link:` backlink API), and the paper's full experimental harness.

Quickstart::

    from repro import CAFCConfig, CAFCPipeline
    from repro.webgen import generate_benchmark

    corpus = generate_benchmark(seed=42)
    pipeline = CAFCPipeline(CAFCConfig(k=8))
    result = pipeline.organize(corpus.raw_pages())
    for cluster in result.clusters:
        print(cluster.size, cluster.top_terms)
"""

from repro.core import (
    CAFCConfig,
    CAFCPipeline,
    CAFCResult,
    ContentMode,
    FormPage,
    RawFormPage,
    cafc_c,
    cafc_ch,
)

__version__ = "1.0.0"

__all__ = [
    "CAFCConfig",
    "CAFCPipeline",
    "CAFCResult",
    "ContentMode",
    "FormPage",
    "RawFormPage",
    "cafc_c",
    "cafc_ch",
    "__version__",
]
