"""From scattered forms to one unified query interface.

The paper's Section 5 positions CAFC as the input stage for deep-web
integration systems (WISE-Integrator, MetaQuerier): once similar forms
are grouped, attribute correspondences can be found and interfaces
merged.  This example runs that whole chain:

1. cluster a corpus of form pages with CAFC-CH;
2. pick a cluster and discover attribute correspondences across its
   member forms (label + option-value evidence);
3. build and print the unified query interface.

Run:  python examples/unify_query_interfaces.py
"""

from repro.core import CAFCConfig, CAFCPipeline
from repro.integration import (
    build_unified_interface,
    collect_attributes,
    match_attributes,
)
from repro.webgen import GeneratorConfig, generate_benchmark


def main() -> None:
    config = GeneratorConfig(
        pages_per_domain={
            "airfare": 10, "auto": 10, "book": 10, "hotel": 10,
            "job": 10, "movie": 10, "music": 10, "rental": 10,
        },
        single_attribute_per_domain=2,
        small_hubs_per_domain=8,
        medium_hubs_per_domain=3,
        n_directories=16,
        n_travel_portals=2,
        seed=5,
    )
    web = generate_benchmark(config=config)
    raw_pages = web.raw_pages()
    raw_by_url = {page.url: page for page in raw_pages}

    # ---- 1. Cluster ---------------------------------------------------
    pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
    result = pipeline.organize(raw_pages)
    print(f"clustered {result.n_pages} form pages into "
          f"{result.n_clusters} database domains\n")

    # ---- 2+3. Match and merge within each cluster ---------------------
    for index, cluster in enumerate(result.clusters[:3]):
        members = [raw_by_url[url] for url in cluster.urls]
        # Keep multi-attribute forms; keyword boxes add no schema.
        instances = collect_attributes(members)
        groups = match_attributes(instances)
        unified = build_unified_interface(members, min_coverage=0.3, groups=groups)

        print("=" * 64)
        print(f"cluster {index}: {cluster.size} forms — "
              f"{' / '.join(cluster.top_terms[:3])}")
        print("=" * 64)
        print(f"attribute instances: {len(instances)}; "
              f"concepts discovered: {len(groups)}")
        print("\nunified interface:")
        for unified_field in unified.fields:
            kind = (
                f"select ({len(unified_field.options)} merged options)"
                if unified_field.is_select
                else "text input"
            )
            variants = ", ".join(unified_field.example_labels[:4])
            print(f"  {unified_field.label:<22} {kind}")
            print(f"    seen in {unified_field.n_sources} forms "
                  f"({unified_field.coverage:.0%}) as: {variants}")
        print()


if __name__ == "__main__":
    main()
