"""Build a hidden-web database directory, end to end.

This is the paper's motivating application (Sections 1 and 5): hidden-web
directories such as BrightPlanet's cover only a sliver of the deep web
because they are maintained by hand.  CAFC automates the pipeline:

1. a crawler walks the web and finds pages containing forms;
2. the generic form classifier drops non-searchable forms (logins,
   newsletter signups);
3. backlinks for each surviving form page are harvested from a search
   engine's ``link:`` API (root-page fallback included);
4. CAFC-CH clusters the form pages by database domain;
5. clusters become directory categories, labelled by their centroid
   terms — and new sources found later are classified into them.

Run:  python examples/build_database_directory.py
"""

from repro.core import CAFCConfig, CAFCPipeline, RawFormPage
from repro.webgen import GeneratorConfig, generate_benchmark
from repro.webgraph import Crawler

CONFIG = GeneratorConfig(
    pages_per_domain={
        "airfare": 12, "auto": 12, "book": 12, "hotel": 12,
        "job": 12, "movie": 12, "music": 12, "rental": 12,
    },
    single_attribute_per_domain=2,
    small_hubs_per_domain=8,
    medium_hubs_per_domain=3,
    n_directories=20,
    n_travel_portals=2,
    seed=23,
)


def main() -> None:
    web = generate_benchmark(config=CONFIG)

    # ---- 1+2. Crawl and filter --------------------------------------
    roots = [site.root_url for site in web.sites]
    crawl = Crawler(web.graph).crawl(roots)
    print(f"crawled {crawl.n_visited} pages")
    print(f"searchable form pages found: {len(crawl.form_pages)}")
    print(f"non-searchable forms rejected: {len(crawl.rejected_form_pages)}\n")

    # ---- 3. Harvest backlinks ---------------------------------------
    engine = web.search_engine()
    roots_by_form = {site.form_page_url: site.root_url for site in web.sites}
    raw_pages = []
    for page in crawl.form_pages:
        root = roots_by_form.get(page.url, "")
        backlinks = sorted(
            set(engine.link_query(page.url)) | set(engine.link_query(root))
        )
        raw_pages.append(
            RawFormPage(url=page.url, html=page.html, backlinks=backlinks)
        )
    print(f"harvested backlinks with {engine.query_count} link: queries\n")

    # ---- 4. Cluster ---------------------------------------------------
    pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
    directory = pipeline.organize(raw_pages)

    # ---- 5. Print the directory --------------------------------------
    print("=" * 60)
    print("HIDDEN-WEB DATABASE DIRECTORY")
    print("=" * 60)
    for index, category in enumerate(directory.clusters):
        heading = " / ".join(category.top_terms[:3])
        print(f"\n[{index}] {heading}  ({category.size} databases)")
        for url in category.urls[:4]:
            print(f"    {url}")
        if category.size > 4:
            print(f"    ... and {category.size - 4} more")

    # ---- Classify a newly discovered source --------------------------
    fresh_web = generate_benchmark(config=GeneratorConfig(
        pages_per_domain={
            "airfare": 7, "auto": 7, "book": 7, "hotel": 7,
            "job": 7, "movie": 7, "music": 7, "rental": 7,
        },
        single_attribute_per_domain=1,
        small_hubs_per_domain=4,
        medium_hubs_per_domain=2,
        n_directories=8,
        n_travel_portals=1,
        seed=77,
    ))
    print("\n" + "=" * 60)
    print("CLASSIFYING NEWLY DISCOVERED SOURCES")
    print("=" * 60)
    for raw in fresh_web.raw_pages()[:5]:
        category_index = pipeline.classify(raw, directory)
        category = directory.clusters[category_index]
        print(f"{raw.url}")
        print(f"  true domain: {raw.label}; "
              f"filed under [{category_index}] {' / '.join(category.top_terms[:3])}")


if __name__ == "__main__":
    main()
