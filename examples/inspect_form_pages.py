"""Low-level API tour: what CAFC sees in a form page.

Feeds hand-written HTML — a multi-attribute job-search form, a
keyword-box form with its label outside the FORM tags (the paper's
Figure 1(c)), and a login form — through the extraction stack:

* form structure (fields, options, hidden attributes);
* searchable vs non-searchable classification;
* located text (title / body / option, inside vs outside the form);
* the FC and PC term vectors of Equation 1.

Run:  python examples/inspect_form_pages.py
"""

from repro.core import RawFormPage
from repro.core.vectorizer import FormPageVectorizer
from repro.html import extract_forms, extract_located_text
from repro.webgraph import classify_form

JOB_PAGE = """
<html>
<head><title>TalentTrove Job Search</title></head>
<body>
<h1>Find your next career move</h1>
<p>Search thousands of job postings from top employers nationwide.</p>
<form action="/search" method="get">
  <b>Job Search</b>
  <label for="ind">Industry</label>
  <select name="ind" id="ind">
    <option>Engineering</option><option>Healthcare</option>
    <option>Finance</option><option>Education</option>
  </select>
  <label for="loc">Location</label>
  <select name="loc" id="loc">
    <option>California</option><option>Texas</option><option>New York</option>
  </select>
  <input type="text" name="keywords">
  <input type="hidden" name="session" value="x1">
  <input type="submit" value="Find Jobs">
</form>
<p>Employers: post your openings and reach qualified candidates.</p>
</body>
</html>
"""

KEYWORD_PAGE = """
<html>
<head><title>FlickFinder</title></head>
<body>
<p>The movie database: films, DVDs, actors, directors, trailers.</p>
<b>Search Movies</b>
<form action="/find"><input type="text" name="q">
<input type="submit" value="Go"></form>
</body>
</html>
"""

LOGIN_PAGE = """
<html><body>
<form action="/login" method="post">
  <input type="text" name="user">
  <input type="password" name="pass">
  <input type="submit" value="Sign In">
</form>
</body></html>
"""


def inspect(name: str, html: str) -> None:
    print("=" * 60)
    print(name)
    print("=" * 60)
    for form in extract_forms(html):
        print(f"form action={form.action!r} method={form.method}")
        print(f"  visible attributes: {form.attribute_count} "
              f"({'single' if form.is_single_attribute else 'multi'}-attribute)")
        for field in form.visible_fields:
            detail = f"label={field.label!r}" if field.label else f"name={field.name!r}"
            options = f", {len(field.options)} options" if field.options else ""
            print(f"    <{field.tag}> {detail}{options}")
        print(f"  searchable? {classify_form(form)}")

    print("\nlocated text fragments:")
    for fragment in extract_located_text(html):
        where = "FORM" if fragment.inside_form else "page"
        print(f"  [{fragment.location.value:<6} | {where}] {fragment.text[:60]}")
    print()


def main() -> None:
    inspect("multi-attribute job form", JOB_PAGE)
    inspect("keyword form (hint outside FORM tags)", KEYWORD_PAGE)
    inspect("login form (non-searchable)", LOGIN_PAGE)

    # Vectorize the two searchable pages against each other.
    print("=" * 60)
    print("Equation-1 vectors (corpus of two pages)")
    print("=" * 60)
    vectorizer = FormPageVectorizer()
    pages = vectorizer.fit_transform([
        RawFormPage("http://jobs.example.com/search", JOB_PAGE),
        RawFormPage("http://movies.example.com/", KEYWORD_PAGE),
    ])
    for page in pages:
        print(f"\n{page.url}")
        print(f"  FC top terms: {page.fc.top_terms(5)}")
        print(f"  PC top terms: {page.pc.top_terms(5)}")
        print(f"  page terms: {page.page_term_count}, "
              f"form terms: {page.form_term_count}")


if __name__ == "__main__":
    main()
