"""Compare clustering strategies on the paper's benchmark corpus.

Runs the four strategies of the paper's Table 2 — CAFC-C and CAFC-CH,
each over k-means and HAC — on the full 454-page benchmark, and scores
them with the paper's metrics (entropy, F-measure) plus purity, NMI and
adjusted Rand index.

Run:  python examples/compare_clustering_strategies.py   (takes ~1 min)
"""

import statistics

from repro.clustering.hac import Linkage, hac, similarity_matrix
from repro.core import CAFCConfig, cafc_c, cafc_ch
from repro.core.cafc_c import similarity_for
from repro.core.vectorizer import FormPageVectorizer
from repro.eval import (
    adjusted_rand_index,
    normalized_mutual_information,
    overall_f_measure,
    purity,
    total_entropy,
)
from repro.webgen import generate_benchmark


def score(clustering, gold):
    return {
        "entropy": total_entropy(clustering, gold),
        "F": overall_f_measure(clustering, gold),
        "purity": purity(clustering, gold),
        "NMI": normalized_mutual_information(clustering, gold),
        "ARI": adjusted_rand_index(clustering, gold),
    }


def print_row(name, metrics):
    cells = "  ".join(f"{key}={value:.3f}" for key, value in metrics.items())
    print(f"{name:<28} {cells}")


def main() -> None:
    print("generating the 454-page benchmark corpus ...")
    web = generate_benchmark(seed=42)
    pages = FormPageVectorizer().fit_transform(web.raw_pages())
    gold = [page.label for page in pages]
    config = CAFCConfig(k=8)

    print("running CAFC-C (average of 10 random-seed runs) ...")
    runs = [cafc_c(pages, CAFCConfig(k=8, seed=s)) for s in range(10)]
    mean_metrics = {
        key: statistics.mean(score(run.clustering, gold)[key] for run in runs)
        for key in ("entropy", "F", "purity", "NMI", "ARI")
    }

    print("running CAFC-CH (hub-seeded) ...")
    ch = cafc_ch(pages, config)

    print("running HAC (average linkage, cut at k=8) ...")
    matrix = similarity_matrix(pages, similarity_for(config))
    hac_result = hac(matrix, 8, Linkage.AVERAGE)

    print()
    print_row("CAFC-C (k-means, random)", mean_metrics)
    print_row("CAFC-CH (k-means, hubs)", score(ch.clustering, gold))
    print_row("HAC (content only)", score(hac_result.clustering, gold))

    print("\nhub-phase details for CAFC-CH:")
    print(f"  hub clusters after pruning: {len(ch.hub_clusters)}")
    print(f"  seeds selected (Algorithm 3): "
          f"{[seed.cardinality for seed in ch.selected_seeds]} pages each")


if __name__ == "__main__":
    main()
