"""Keeping a hidden-web directory fresh as sources come and go.

The paper's opening motivation: the web is dynamic, "with new sources
constantly being added and old sources removed and modified."  This
example maintains an organized directory incrementally:

1. build the initial directory with CAFC-CH;
2. hand it to an :class:`~repro.core.IncrementalOrganizer`;
3. stream in newly discovered sources (each classified into its cluster,
   centroids updated) and retire dead ones;
4. watch the cohesion-based drift signal that tells the operator when a
   full re-clustering pays off again.

Run:  python examples/maintain_directory.py
"""

from repro.core import CAFCConfig, IncrementalOrganizer, cafc_ch
from repro.core.vectorizer import FormPageVectorizer
from repro.webgen import GeneratorConfig, generate_benchmark


def small_corpus(seed: int) -> GeneratorConfig:
    return GeneratorConfig(
        pages_per_domain={
            "airfare": 9, "auto": 9, "book": 9, "hotel": 9,
            "job": 9, "movie": 9, "music": 9, "rental": 9,
        },
        single_attribute_per_domain=2,
        small_hubs_per_domain=7,
        medium_hubs_per_domain=3,
        n_directories=14,
        n_travel_portals=2,
        seed=seed,
    )


def describe(organizer: IncrementalOrganizer) -> str:
    sizes = ", ".join(str(size) for size in organizer.sizes())
    return (f"{len(organizer)} sources in {len(organizer.clusters)} clusters "
            f"[{sizes}] cohesion={organizer.cohesion:.3f}")


def main() -> None:
    # ---- 1. Initial build ----------------------------------------------
    web = generate_benchmark(config=small_corpus(seed=61))
    vectorizer = FormPageVectorizer()
    pages = vectorizer.fit_transform(web.raw_pages())
    result = cafc_ch(pages, CAFCConfig(k=8, min_hub_cardinality=3))
    initial = [
        [pages[i] for i in members]
        for members in result.clustering.compact().clusters
    ]

    organizer = IncrementalOrganizer(initial, vectorizer)
    print("initial directory:", describe(organizer), "\n")

    # ---- 2. New sources appear ------------------------------------------
    fresh = generate_benchmark(config=small_corpus(seed=62))
    arrivals = fresh.raw_pages()[:16]
    correct = 0
    for raw in arrivals:
        index = organizer.add(raw)
        cluster = organizer.clusters[index]
        labels = [p.label for p in cluster.pages if p.label]
        majority = max(set(labels), key=labels.count)
        mark = "ok " if majority == raw.label else "?? "
        correct += majority == raw.label
        print(f"  + {mark}{raw.url}  -> cluster {index} ({majority})")
    print(f"\nclassified {correct}/{len(arrivals)} arrivals into their "
          f"domain's cluster")
    print("after arrivals:", describe(organizer), "\n")

    # ---- 3. Old sources disappear ----------------------------------------
    departures = [page.url for page in pages[:10]]
    for url in departures:
        organizer.remove(url)
    print(f"retired {len(departures)} dead sources")
    print("after departures:", describe(organizer), "\n")

    # ---- 4. Drift check ---------------------------------------------------
    if organizer.needs_reclustering:
        print("cohesion has drifted below threshold -> schedule a full "
              "CAFC-CH re-clustering")
    else:
        print("cohesion healthy -> incremental maintenance is sufficient "
              f"({organizer.n_added} added, {organizer.n_removed} removed "
              "so far)")


if __name__ == "__main__":
    main()
