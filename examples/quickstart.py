"""Quickstart: organize a collection of hidden-web form pages.

Generates a small synthetic web (stand-in for a crawl of real form
pages), runs the CAFC pipeline, and prints the resulting database-domain
clusters with their descriptive terms.

Run:  python examples/quickstart.py
"""

from repro.core import CAFCConfig, CAFCPipeline
from repro.webgen import GeneratorConfig, generate_benchmark


def main() -> None:
    # A small corpus: ~10 hidden-web databases per domain.
    config = GeneratorConfig(
        pages_per_domain={
            "airfare": 10, "auto": 10, "book": 10, "hotel": 10,
            "job": 10, "movie": 10, "music": 10, "rental": 10,
        },
        single_attribute_per_domain=2,
        small_hubs_per_domain=8,
        medium_hubs_per_domain=3,
        n_directories=20,
        n_travel_portals=2,
        seed=11,
    )
    web = generate_benchmark(config=config)
    raw_pages = web.raw_pages()
    print(f"collected {len(raw_pages)} searchable form pages\n")

    # Cluster them: CAFC-CH (hub-seeded) with CAFC-C fallback.
    pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
    result = pipeline.organize(raw_pages)

    print(f"algorithm: {result.algorithm}")
    print(f"hub clusters harvested: {result.n_hub_clusters}")
    print(f"k-means iterations: {result.iterations}\n")

    for index, cluster in enumerate(result.clusters):
        labels = [page.label for page in cluster.pages]
        majority = max(set(labels), key=labels.count)
        purity = labels.count(majority) / len(labels)
        print(f"cluster {index}: {cluster.size} databases "
              f"(majority: {majority}, purity {purity:.0%})")
        print(f"  descriptive terms: {', '.join(cluster.top_terms)}")
        for url in cluster.urls[:3]:
            print(f"  {url}")
        print()


if __name__ == "__main__":
    main()
