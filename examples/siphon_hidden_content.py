"""Uncovering hidden-web content: organize, then siphon.

The paper's opening sentence: applications want to "uncover and
leverage" hidden-web information.  This example runs the full uncovering
workflow the paper's own prior work (reference [2], keyword-based
siphoning) implies:

1. CAFC organizes a crawled collection of form pages into domains;
2. each cluster's top centroid terms become domain-appropriate *seed
   queries*;
3. a keyword siphoner extracts records from the keyword-accessible
   databases of one cluster, seeded by those terms;
4. for comparison, the same budget is spent with off-domain seeds —
   showing why organization (step 1) is what makes extraction efficient.

Run:  python examples/siphon_hidden_content.py
"""

from repro.core import CAFCConfig, CAFCPipeline
from repro.hiddendb import build_hidden_databases
from repro.hiddendb.siphon import KeywordSiphoner
from repro.webgen import GeneratorConfig, generate_benchmark

CONFIG = GeneratorConfig(
    pages_per_domain={
        "airfare": 9, "auto": 9, "book": 9, "hotel": 9,
        "job": 9, "movie": 9, "music": 9, "rental": 9,
    },
    single_attribute_per_domain=3,
    small_hubs_per_domain=7,
    medium_hubs_per_domain=3,
    n_directories=14,
    n_travel_portals=2,
    seed=31,
)


def main() -> None:
    web = generate_benchmark(config=CONFIG)
    raw_pages = web.raw_pages()

    # ---- 1. Organize ---------------------------------------------------
    pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
    organized = pipeline.organize(raw_pages)
    print(f"organized {organized.n_pages} sources into "
          f"{organized.n_clusters} domains\n")

    # ---- 2+3. Siphon the keyword-accessible databases of one cluster ---
    registry = build_hidden_databases(web, records_per_database=120)
    budget_per_database = 25

    for cluster in organized.clusters[:2]:
        seeds = cluster.top_terms[:5]
        print("=" * 60)
        print(f"cluster ({cluster.size} sources) — seed terms: {', '.join(seeds)}")
        print("=" * 60)

        total_records = 0
        total_queries = 0
        siphoned = 0
        for url in cluster.urls:
            entry = registry.get(url)
            if entry is None or not entry.keyword_accessible:
                continue
            siphoner = KeywordSiphoner(max_queries=budget_per_database)
            result = siphoner.siphon(entry.database, seed_terms=list(seeds))
            siphoned += 1
            total_records += len(result.retrieved)
            total_queries += result.queries_issued
            print(f"  {url}")
            print(f"    {len(result.retrieved)}/{result.database_size} records "
                  f"({result.coverage:.0%}) in {result.queries_issued} queries")

        if siphoned == 0:
            print("  (no keyword-accessible databases in this cluster)")
            continue

        # ---- 4. Control: off-domain seeds, same budget -----------------
        off_domain = ["miscellaneous", "general", "welcome", "page", "home"]
        control_records = 0
        control_queries = 0
        for url in cluster.urls:
            entry = registry.get(url)
            if entry is None or not entry.keyword_accessible:
                continue
            result = KeywordSiphoner(
                max_queries=budget_per_database, stop_after_barren=3
            ).siphon(entry.database, seed_terms=list(off_domain))
            control_records += len(result.retrieved)
            control_queries += result.queries_issued

        print(f"\n  cluster seeds : {total_records} records "
              f"in {total_queries} queries")
        print(f"  generic seeds : {control_records} records "
              f"in {control_queries} queries")
        print()


if __name__ == "__main__":
    main()
