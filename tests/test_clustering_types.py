"""Tests for Clustering and seeding helpers."""

import random

import numpy as np
import pytest

from repro.clustering.seeding import (
    hac_seed_groups,
    random_seed_indices,
    sample_then_hac_seed_groups,
)
from repro.clustering.types import Clustering


class TestClustering:
    def test_counts(self):
        clustering = Clustering([[0, 1], [2], []])
        assert clustering.n_clusters == 3
        assert clustering.n_points == 3

    def test_assignment(self):
        clustering = Clustering([[0, 2], [1]])
        assert clustering.assignment() == {0: 0, 2: 0, 1: 1}

    def test_labels_dense(self):
        clustering = Clustering([[0, 2], [1]])
        assert clustering.labels(4) == [0, 1, 0, -1]

    def test_compact_drops_empty(self):
        clustering = Clustering([[0], [], [1]])
        compact = clustering.compact()
        assert compact.n_clusters == 2
        assert compact.n_points == 2

    def test_compact_is_a_copy(self):
        clustering = Clustering([[0]])
        compact = clustering.compact()
        compact.clusters[0].append(99)
        assert clustering.clusters[0] == [0]

    def test_sizes(self):
        assert Clustering([[0, 1], [2]]).sizes() == [2, 1]

    def test_from_labels(self):
        clustering = Clustering.from_labels([0, 1, 0, 2])
        assert clustering.clusters == [[0, 2], [1], [3]]

    def test_from_labels_ignores_negative(self):
        clustering = Clustering.from_labels([0, -1, 0])
        assert clustering.n_points == 2

    def test_round_trip(self):
        original = Clustering([[0, 3], [1, 2]])
        labels = original.labels(4)
        rebuilt = Clustering.from_labels(labels)
        assert sorted(map(sorted, rebuilt.clusters)) == sorted(
            map(sorted, original.clusters)
        )


class TestRandomSeeding:
    def test_distinct_indices(self):
        rng = random.Random(0)
        seeds = random_seed_indices(10, 5, rng)
        assert len(set(seeds)) == 5
        assert all(0 <= s < 10 for s in seeds)

    def test_too_many_seeds_rejected(self):
        with pytest.raises(ValueError):
            random_seed_indices(3, 4, random.Random(0))

    def test_reproducible(self):
        assert random_seed_indices(100, 5, random.Random(1)) == random_seed_indices(
            100, 5, random.Random(1)
        )


class TestKMeansPlusPlus:
    def _points(self):
        return [0.0, 0.1, 0.2, 5.0, 5.1, 10.0, 10.1]

    @staticmethod
    def _similarity(a, b):
        return 1.0 / (1.0 + abs(a - b))

    def test_picks_k_distinct_indices(self):
        from repro.clustering.seeding import kmeans_plus_plus_indices

        chosen = kmeans_plus_plus_indices(
            self._points(), 3, self._similarity, random.Random(0)
        )
        assert len(set(chosen)) == 3

    def test_spreads_across_blobs(self):
        from repro.clustering.seeding import kmeans_plus_plus_indices

        points = self._points()
        # Over several seeds, the three picks should usually cover the
        # three separated blobs.
        covered = 0
        for seed in range(10):
            chosen = kmeans_plus_plus_indices(
                points, 3, self._similarity, random.Random(seed)
            )
            blobs = {round(points[i] / 5) for i in chosen}
            covered += len(blobs) == 3
        assert covered >= 7

    def test_duplicate_points_handled(self):
        from repro.clustering.seeding import kmeans_plus_plus_indices

        points = [1.0] * 5
        chosen = kmeans_plus_plus_indices(
            points, 3, self._similarity, random.Random(0)
        )
        assert len(set(chosen)) == 3

    def test_too_many_seeds_rejected(self):
        from repro.clustering.seeding import kmeans_plus_plus_indices

        with pytest.raises(ValueError):
            kmeans_plus_plus_indices([1.0], 2, self._similarity, random.Random(0))

    def test_deterministic_per_seed(self):
        from repro.clustering.seeding import kmeans_plus_plus_indices

        first = kmeans_plus_plus_indices(
            self._points(), 3, self._similarity, random.Random(4)
        )
        second = kmeans_plus_plus_indices(
            self._points(), 3, self._similarity, random.Random(4)
        )
        assert first == second


class TestHacSeeding:
    def _matrix(self):
        matrix = np.full((6, 6), 0.05)
        for group in ([0, 1, 2], [3, 4, 5]):
            for i in group:
                for j in group:
                    matrix[i, j] = 0.9
        np.fill_diagonal(matrix, 1.0)
        return matrix

    def test_groups_cover_all_points(self):
        groups = hac_seed_groups(self._matrix(), 2)
        assert sorted(i for g in groups for i in g) == list(range(6))
        assert len(groups) == 2

    def test_sample_then_hac(self):
        points = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2]
        groups = sample_then_hac_seed_groups(
            points, 2, sample_size=6,
            similarity=lambda a, b: 1.0 / (1.0 + abs(a - b)),
            rng=random.Random(0),
        )
        assert len(groups) == 2
        assert sorted(i for g in groups for i in g) == list(range(6))

    def test_sample_smaller_than_k_rejected(self):
        with pytest.raises(ValueError):
            sample_then_hac_seed_groups(
                [1.0, 2.0], 3, sample_size=2,
                similarity=lambda a, b: 0.0, rng=random.Random(0),
            )
