"""Tests for stopwords and the TextAnalyzer pipeline."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.text.analyzer import TextAnalyzer, default_analyzer
from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import STOPWORDS, is_stopword


class TestStopwords:
    def test_common_function_words(self):
        for word in ("the", "and", "of", "is", "with", "your"):
            assert is_stopword(word)

    def test_content_words_are_not_stopwords(self):
        for word in ("flight", "hotel", "job", "music", "search"):
            assert not is_stopword(word)

    def test_generic_web_terms_kept_for_tfidf(self):
        # The paper relies on TF-IDF (not stopwording) to suppress these.
        for word in ("privacy", "copyright", "shopping"):
            assert not is_stopword(word)

    def test_stopwords_are_lowercase(self):
        assert all(word == word.lower() for word in STOPWORDS)

    def test_stopwords_nonempty(self):
        assert len(STOPWORDS) > 100


class TestTextAnalyzer:
    def test_pipeline_order(self):
        analyzer = TextAnalyzer()
        # tokenize -> drop "for"/"and"/"the" -> stem
        assert analyzer.analyze("Searching for flights and the hotels") == [
            "search", "flight", "hotel",
        ]

    def test_empty_text(self):
        assert TextAnalyzer().analyze("") == []

    def test_stopword_only_text(self):
        assert TextAnalyzer().analyze("the of and is") == []

    def test_term_frequencies(self):
        counts = TextAnalyzer().term_frequencies("flight flights flying flight")
        assert counts == Counter({"flight": 3, "fly": 1})

    def test_custom_stopwords(self):
        analyzer = TextAnalyzer(stopwords={"flight"})
        assert analyzer.analyze("flight hotel") == ["hotel"]

    def test_disabled_stopwords(self):
        analyzer = TextAnalyzer(stopwords=set())
        assert "the" in analyzer.analyze("the hotel")

    def test_disabled_stemming(self):
        class IdentityStemmer(PorterStemmer):
            def stem(self, word):
                return word

        analyzer = TextAnalyzer(stemmer=IdentityStemmer())
        assert analyzer.analyze("flights") == ["flights"]

    def test_analyze_tokens(self):
        analyzer = TextAnalyzer()
        assert analyzer.analyze_tokens(["the", "flights"]) == ["flight"]

    def test_cache_consistency(self):
        analyzer = TextAnalyzer()
        first = analyzer.analyze("reservations reservations")
        second = analyzer.analyze("reservations")
        assert first == [second[0]] * 2

    def test_default_analyzer_factory(self):
        assert default_analyzer().analyze("flights") == ["flight"]

    @given(st.text(max_size=300))
    def test_never_raises(self, text):
        terms = default_analyzer().analyze(text)
        assert all(isinstance(term, str) and term for term in terms)

    @given(st.lists(st.sampled_from(["flight", "the", "hotels", "booking"]), max_size=30))
    def test_output_length_bounded_by_input(self, tokens):
        analyzer = TextAnalyzer()
        assert len(analyzer.analyze_tokens(tokens)) <= len(tokens)
