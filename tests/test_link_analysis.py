"""Tests for the link-analysis extensions (HITS, hub quality, anchors)."""

import pytest

from repro.core.form_page import FormPage, VectorPair
from repro.core.hubs import HubCluster, build_hub_clusters
from repro.core.similarity import FormPageSimilarity
from repro.link_analysis import (
    harvest_anchor_texts,
    hits,
    score_hub_clusters,
    select_hub_clusters_quality_aware,
)
from repro.link_analysis.hub_quality import cluster_tightness
from repro.vsm.vector import SparseVector
from repro.webgraph.graph import WebGraph, WebPage


def star_graph():
    """One hub pointing at three authorities plus an isolated page."""
    graph = WebGraph()
    graph.add_page(WebPage("http://hub.org/", "", [
        "http://a.com/", "http://b.com/", "http://c.com/",
    ]))
    for url in ("http://a.com/", "http://b.com/", "http://c.com/"):
        graph.add_page(WebPage(url, "", []))
    graph.add_page(WebPage("http://island.com/", "", []))
    return graph


class TestHits:
    def test_hub_identified(self):
        scores = hits(star_graph())
        top_hub, _ = scores.top_hubs(1)[0]
        assert top_hub == "http://hub.org/"

    def test_authorities_identified(self):
        scores = hits(star_graph())
        top = {url for url, _ in scores.top_authorities(3)}
        assert top == {"http://a.com/", "http://b.com/", "http://c.com/"}

    def test_isolated_node_scores_zero(self):
        scores = hits(star_graph())
        assert scores.hub["http://island.com/"] == 0.0
        assert scores.authority["http://island.com/"] == 0.0

    def test_scores_normalized(self):
        scores = hits(star_graph())
        total = sum(v * v for v in scores.hub.values())
        assert total == pytest.approx(1.0)

    def test_converges(self):
        scores = hits(star_graph())
        assert scores.converged

    def test_subset_restriction(self):
        scores = hits(star_graph(), urls=["http://hub.org/", "http://a.com/"])
        assert set(scores.hub) == {"http://hub.org/", "http://a.com/"}

    def test_empty_graph(self):
        scores = hits(WebGraph())
        assert scores.hub == {} and scores.authority == {}

    def test_two_hub_ranking(self):
        graph = star_graph()
        # A weaker hub linking to just one authority.
        graph.add_page(WebPage("http://weak-hub.org/", "", ["http://a.com/"]))
        scores = hits(graph)
        assert scores.hub["http://hub.org/"] > scores.hub["http://weak-hub.org/"]


def make_page(url, terms, label="job", backlinks=()):
    vector = SparseVector({t: 1.0 for t in terms})
    return FormPage(url=url, pc=vector, fc=vector,
                    backlinks=frozenset(backlinks), label=label)


class TestHubQuality:
    def _pages_and_clusters(self):
        hub_tight = "http://tight-hub.org/"
        hub_loose = "http://loose-hub.org/"
        pages = [
            make_page("http://j1.com/", ["job", "career"], "job", [hub_tight]),
            make_page("http://j2.com/", ["job", "salary"], "job", [hub_tight]),
            make_page("http://h1.com/", ["hotel", "room"], "hotel", [hub_loose]),
            make_page("http://a1.com/", ["car", "dealer"], "auto", [hub_loose]),
        ]
        clusters = build_hub_clusters(pages, min_cardinality=2)
        return pages, clusters

    def test_tightness_ordering(self):
        pages, clusters = self._pages_and_clusters()
        similarity = FormPageSimilarity()
        by_url = {c.hub_url: c for c in clusters}
        tight = cluster_tightness(by_url["http://tight-hub.org/"], pages, similarity)
        loose = cluster_tightness(by_url["http://loose-hub.org/"], pages, similarity)
        assert tight > loose

    def test_singleton_cluster_tightness_one(self):
        page = make_page("http://x.com/", ["a"])
        cluster = HubCluster("h", [0], VectorPair.of(page))
        assert cluster_tightness(cluster, [page], FormPageSimilarity()) == 1.0

    def test_score_sorted_tightest_first(self):
        pages, clusters = self._pages_and_clusters()
        scored = score_hub_clusters(clusters, pages, FormPageSimilarity())
        tightness_values = [q.tightness for q in scored]
        assert tightness_values == sorted(tightness_values, reverse=True)

    def test_quality_aware_selection_drops_loose(self):
        pages, clusters = self._pages_and_clusters()
        selected = select_hub_clusters_quality_aware(
            clusters, 1, pages, FormPageSimilarity(), drop_fraction=0.5
        )
        assert selected[0].hub_url == "http://tight-hub.org/"

    def test_never_drops_below_k(self):
        pages, clusters = self._pages_and_clusters()
        selected = select_hub_clusters_quality_aware(
            clusters, 2, pages, FormPageSimilarity(), drop_fraction=0.9
        )
        assert len(selected) == 2

    def test_validation(self):
        pages, clusters = self._pages_and_clusters()
        with pytest.raises(ValueError):
            select_hub_clusters_quality_aware(
                clusters, 1, pages, FormPageSimilarity(), drop_fraction=1.5
            )
        with pytest.raises(ValueError):
            select_hub_clusters_quality_aware(
                clusters, 10, pages, FormPageSimilarity()
            )


class TestAnchorText:
    def _graph(self):
        graph = WebGraph()
        graph.add_page(WebPage(
            "http://hub.org/",
            '<a href="http://site.com/search.html">Acme flight deals</a>'
            '<a href="http://site.com/">Acme home</a>'
            '<a href="http://other.com/">Other</a>',
            ["http://site.com/search.html", "http://site.com/", "http://other.com/"],
        ))
        return graph

    def test_harvest_direct_anchor(self):
        anchors = harvest_anchor_texts(
            self._graph(), "http://site.com/search.html", ["http://hub.org/"]
        )
        assert anchors == ["Acme flight deals"]

    def test_harvest_with_root_match(self):
        anchors = harvest_anchor_texts(
            self._graph(), "http://site.com/search.html", ["http://hub.org/"],
            also_match=["http://site.com/"],
        )
        assert sorted(anchors) == ["Acme flight deals", "Acme home"]

    def test_missing_backlink_pages_skipped(self):
        anchors = harvest_anchor_texts(
            self._graph(), "http://site.com/search.html",
            ["http://hub.org/", "http://gone.example/"],
        )
        assert anchors == ["Acme flight deals"]

    def test_anchor_text_reaches_pc_vector(self):
        from repro.core.form_page import RawFormPage
        from repro.core.vectorizer import FormPageVectorizer

        raw = [
            RawFormPage(
                "http://site.com/search.html",
                "<form><input type=text name=q></form>",
                anchor_texts=["cheap flights portal"],
            ),
            RawFormPage(
                "http://pad.com/", "<p>pad words</p><form><input type=text name=p></form>",
            ),
        ]
        pages = FormPageVectorizer().fit_transform(raw)
        assert "flight" in pages[0].pc
        # Anchor terms are off-page and excluded from the Table-1 count.
        assert pages[0].page_term_count == 0

    def test_benchmark_anchor_harvest(self, small_web):
        raw_with = small_web.raw_pages(include_anchor_text=True)
        n_with_anchors = sum(1 for p in raw_with if p.anchor_texts)
        # Most non-orphan pages have hub inlinks carrying anchors.
        assert n_with_anchors > len(raw_with) / 2
