"""Tests for the batched similarity engine and the backend API.

The contract under test: every backend — and every batched shape the
engine serves — agrees with the scalar Equation-3 arithmetic
(:class:`FormPageSimilarity`) to 1e-9, including degenerate pages with
an empty PC or FC vector, across all three content modes.
"""

import random

import pytest

from repro.core.cafc_c import cafc_c, random_seed_centroids
from repro.core.config import CAFCConfig, ContentMode
from repro.core.form_page import FormPage, VectorPair
from repro.core.similarity import (
    EngineBackend,
    FormPageSimilarity,
    NaiveBackend,
    SimilarityBackend,
    form_page_similarity,
    resolve_backend,
)
from repro.core.simengine import HAVE_NUMPY, EngineStats, SimilarityEngine
from repro.vsm.vector import SparseVector

TOLERANCE = 1e-9

VOCAB = [f"term{i}" for i in range(60)]


def random_vector(rng: random.Random, empty_chance: float = 0.0) -> SparseVector:
    if rng.random() < empty_chance:
        return SparseVector()
    n_terms = rng.randint(1, 12)
    return SparseVector(
        {rng.choice(VOCAB): rng.uniform(0.05, 5.0) for _ in range(n_terms)}
    )


def random_pages(rng: random.Random, n: int) -> list:
    """Random vectorized pages, ~15% with an empty PC or FC vector."""
    pages = []
    for i in range(n):
        pages.append(
            FormPage(
                url=f"http://site{i}.example/search",
                pc=random_vector(rng, empty_chance=0.15),
                fc=random_vector(rng, empty_chance=0.15),
                label=f"domain{i % 4}",
            )
        )
    return pages


def config_for(mode: ContentMode, **overrides) -> CAFCConfig:
    return CAFCConfig(k=3, content_mode=mode, **overrides)


class TestBackendAgreement:
    """Satellite: the 200-random-pair property test, all content modes."""

    @pytest.mark.parametrize("mode", list(ContentMode))
    def test_engine_matches_naive_on_random_pairs(self, mode):
        rng = random.Random(1234)
        pages = random_pages(rng, 40)
        config = config_for(mode)
        naive = NaiveBackend.from_config(config)
        engine = EngineBackend.from_config(config, use_numpy=False)
        matrix = engine.pairwise(pages)
        for _ in range(200):
            i = rng.randrange(len(pages))
            j = rng.randrange(len(pages))
            expected = naive.pair(pages[i], pages[j])
            assert engine.pair(pages[i], pages[j]) == pytest.approx(
                expected, abs=TOLERANCE
            )
            assert matrix[i][j] == pytest.approx(expected, abs=TOLERANCE)

    @pytest.mark.parametrize("mode", list(ContentMode))
    def test_full_pairwise_matrix_agreement(self, mode):
        rng = random.Random(99)
        pages = random_pages(rng, 30)
        config = config_for(mode)
        reference = NaiveBackend.from_config(config).pairwise(pages)
        compiled = EngineBackend.from_config(config, use_numpy=False).pairwise(pages)
        for row_a, row_b in zip(reference, compiled):
            for a, b in zip(row_a, row_b):
                assert b == pytest.approx(a, abs=TOLERANCE)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy/SciPy unavailable")
    @pytest.mark.parametrize("mode", list(ContentMode))
    def test_numpy_fast_path_agreement(self, mode):
        rng = random.Random(7)
        pages = random_pages(rng, 30)
        config = config_for(mode)
        reference = NaiveBackend.from_config(config).pairwise(pages)
        compiled = EngineBackend.from_config(config, use_numpy=True).pairwise(pages)
        for row_a, row_b in zip(reference, compiled):
            for a, b in zip(row_a, row_b):
                assert b == pytest.approx(a, abs=TOLERANCE)

    def test_page_centroid_matrix_agreement(self):
        rng = random.Random(5)
        pages = random_pages(rng, 25)
        centroids = [VectorPair.of(page) for page in pages[:4]]
        config = config_for(ContentMode.FC_PC)
        reference = NaiveBackend.from_config(config).page_centroid_matrix(
            pages, centroids
        )
        compiled = EngineBackend.from_config(
            config, use_numpy=False
        ).page_centroid_matrix(pages, centroids)
        for row_a, row_b in zip(reference, compiled):
            for a, b in zip(row_a, row_b):
                assert b == pytest.approx(a, abs=TOLERANCE)

    def test_weighted_combination(self):
        rng = random.Random(3)
        pages = random_pages(rng, 20)
        config = CAFCConfig(k=3, page_weight=2.0, form_weight=0.5)
        reference = NaiveBackend.from_config(config).pairwise(pages)
        compiled = EngineBackend.from_config(config, use_numpy=False).pairwise(pages)
        for row_a, row_b in zip(reference, compiled):
            for a, b in zip(row_a, row_b):
                assert b == pytest.approx(a, abs=TOLERANCE)

    def test_compat_wrapper_matches_scalar_class(self):
        rng = random.Random(11)
        pages = random_pages(rng, 10)
        for mode in ContentMode:
            scalar = FormPageSimilarity(content_mode=mode)
            for i in range(len(pages)):
                for j in range(len(pages)):
                    assert form_page_similarity(
                        pages[i], pages[j], content_mode=mode
                    ) == scalar(pages[i], pages[j])


class TestEngineShapes:
    def test_topk_matches_exhaustive_scoring(self):
        rng = random.Random(21)
        pages = random_pages(rng, 30)
        engine = SimilarityEngine(pages, use_numpy=False)
        scalar = FormPageSimilarity()
        query = pages[17]
        expected = sorted(
            (
                (i, scalar(query, page))
                for i, page in enumerate(pages)
                if scalar(query, page) > 0.0
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )[:5]
        got = engine.topk(query, n=5)
        assert [i for i, _ in got] == [i for i, _ in expected]
        for (_, a), (_, b) in zip(got, expected):
            assert a == pytest.approx(b, abs=TOLERANCE)

    def test_to_centroids_matches_equation_four(self):
        rng = random.Random(31)
        pages = random_pages(rng, 12)
        engine = SimilarityEngine(pages, use_numpy=False)
        assignments = [i % 3 for i in range(len(pages))]
        centroids = engine.to_centroids(assignments, k=3)
        from repro.core.form_page import centroid_of

        for cluster in range(3):
            members = [p for i, p in enumerate(pages) if assignments[i] == cluster]
            expected = centroid_of(members)
            got = centroids.vector_pair(cluster)
            for term, weight in expected.pc.items():
                assert got.pc[term] == pytest.approx(weight, abs=TOLERANCE)
            for term, weight in expected.fc.items():
                assert got.fc[term] == pytest.approx(weight, abs=TOLERANCE)

    def test_kmeans_identical_to_naive_path(self):
        rng = random.Random(41)
        pages = random_pages(rng, 36)
        for seed in (0, 1, 2):
            config = CAFCConfig(k=3, seed=seed)
            naive = cafc_c(pages, config, backend="naive")
            engine = cafc_c(pages, config, backend="engine")
            assert naive.clustering.clusters == engine.clustering.clusters
            assert naive.iterations == engine.iterations
            assert naive.converged == engine.converged

    def test_empty_collection(self):
        engine = SimilarityEngine([], use_numpy=False)
        assert engine.pairwise() == []
        seeds = [VectorPair(pc=SparseVector({"a": 1.0}), fc=SparseVector())]
        result = engine.kmeans(seeds)
        assert result.converged
        assert result.clustering.clusters == [[]]

    def test_use_numpy_true_requires_numpy(self):
        if HAVE_NUMPY:
            SimilarityEngine([], use_numpy=True)  # must not raise
        else:
            with pytest.raises(RuntimeError):
                SimilarityEngine([], use_numpy=True)


class TestStats:
    def test_pairwise_counts_comparisons(self):
        rng = random.Random(51)
        pages = random_pages(rng, 10)
        backend = EngineBackend(use_numpy=False)
        backend.pairwise(pages)
        assert backend.stats.comparisons == 10 * 9 // 2

    def test_engine_reuse_counts_cache_hits(self):
        rng = random.Random(52)
        pages = random_pages(rng, 8)
        backend = EngineBackend(use_numpy=False)
        backend.pairwise(pages)
        assert backend.stats.cache_hits == 0
        backend.pairwise(pages)
        assert backend.stats.cache_hits == 1

    def test_snapshot_is_detached(self):
        stats = EngineStats(comparisons=3)
        copy = stats.snapshot()
        stats.comparisons = 99
        assert copy.comparisons == 3

    def test_naive_backend_counts_too(self):
        rng = random.Random(53)
        pages = random_pages(rng, 6)
        backend = NaiveBackend(FormPageSimilarity())
        backend.pairwise(pages)
        # Full matrix: diagonal plus both triangles' shared computation.
        assert backend.stats.comparisons == 6 + 6 * 5 // 2


class TestResolveBackend:
    def test_names(self):
        assert isinstance(resolve_backend("naive"), NaiveBackend)
        assert isinstance(resolve_backend("engine"), EngineBackend)
        assert isinstance(resolve_backend("auto"), EngineBackend)

    def test_none_uses_config_field(self):
        config = CAFCConfig(backend="naive")
        assert isinstance(resolve_backend(None, config), NaiveBackend)

    def test_instance_passthrough(self):
        backend = NaiveBackend(FormPageSimilarity())
        assert resolve_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("turbo")

    def test_config_validates_backend_field(self):
        with pytest.raises(ValueError):
            CAFCConfig(backend="turbo")

    def test_bare_similarity_object_rejected(self):
        """The PR-1 deprecation is finished: bare callables hard-error."""
        with pytest.raises(TypeError, match="NaiveBackend"):
            resolve_backend(FormPageSimilarity())

    def test_bare_callable_rejected_with_migration_hint(self):
        def fake_similarity(a, b):
            return 0.5

        with pytest.raises(TypeError, match="wrap the callable"):
            resolve_backend(fake_similarity)

    def test_wrapped_callable_still_works(self):
        """The migration target: NaiveBackend(similarity) is accepted."""
        backend = resolve_backend(NaiveBackend(FormPageSimilarity()))
        assert isinstance(backend, NaiveBackend)

    def test_backends_satisfy_protocol(self):
        assert isinstance(NaiveBackend(FormPageSimilarity()), SimilarityBackend)
        assert isinstance(EngineBackend(), SimilarityBackend)

    def test_config_carries_weights_into_backends(self):
        config = CAFCConfig(
            content_mode=ContentMode.FC, page_weight=2.0, form_weight=3.0
        )
        engine = EngineBackend.from_config(config)
        assert engine.content_mode is ContentMode.FC
        assert engine.form_weight == 3.0

    def test_seeds_positional_similarity_removed(self):
        """``select_hub_clusters`` lost its positional similarity seam;
        the wrapped-backend migration path selects the same seeds as the
        named backend."""
        from repro.core.hubs import HubCluster
        from repro.core.seeds import select_hub_clusters

        rng = random.Random(61)
        pages = random_pages(rng, 9)
        clusters = [
            HubCluster(
                hub_url=f"http://hub{i}.example/",
                members=[i],
                centroid=VectorPair.of(page),
            )
            for i, page in enumerate(pages)
        ]
        with pytest.raises(TypeError):
            select_hub_clusters(clusters, 3, FormPageSimilarity())
        wrapped = select_hub_clusters(
            clusters, 3, backend=NaiveBackend(FormPageSimilarity())
        )
        modern = select_hub_clusters(clusters, 3, backend="naive")
        assert [c.hub_url for c in wrapped] == [c.hub_url for c in modern]


class TestCafcSeedPathways:
    def test_random_seeds_unchanged_by_backend(self):
        """Seed selection draws from the config RNG identically under
        both backends (the backend never touches the RNG)."""
        rng = random.Random(71)
        pages = random_pages(rng, 20)
        seeds_a = random_seed_centroids(pages, 4, random.Random(5))
        seeds_b = random_seed_centroids(pages, 4, random.Random(5))
        assert [s.pc for s in seeds_a] == [s.pc for s in seeds_b]
