"""Snapshot round-trip tests — the cold-start contract.

The load-from-snapshot organizer must classify **bit-identically** to
the organizer built in the same process as the pipeline run; the parity
test at the bottom pins this for every page of the full 454-page
benchmark corpus.
"""

import gzip
import json

import pytest

from repro.core.config import CAFCConfig
from repro.core.incremental import IncrementalOrganizer
from repro.core.pipeline import CAFCPipeline
from repro.datasets.store import DatasetFormatError
from repro.service.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    build_snapshot,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)


SMALL_CONFIG = CAFCConfig(k=8, min_hub_cardinality=3)


@pytest.fixture(scope="module")
def small_build(small_raw_pages):
    """(pipeline, result, snapshot) over the small corpus."""
    pipeline = CAFCPipeline(SMALL_CONFIG)
    result = pipeline.organize(small_raw_pages)
    snapshot = build_snapshot(result, pipeline.vectorizer, SMALL_CONFIG)
    return pipeline, result, snapshot


@pytest.fixture(scope="module")
def snapshot_path(small_build, tmp_path_factory):
    _, _, snapshot = small_build
    path = tmp_path_factory.mktemp("snap") / "directory.json.gz"
    save_snapshot(snapshot, path)
    return path


class TestRoundTrip:
    def test_fields_survive(self, small_build, snapshot_path):
        _, result, original = small_build
        loaded = load_snapshot(snapshot_path)
        assert loaded.n_clusters == original.n_clusters
        assert loaded.n_pages == original.n_pages
        assert loaded.algorithm == result.algorithm
        assert loaded.top_terms == original.top_terms
        assert loaded.config.k == SMALL_CONFIG.k
        assert loaded.config.page_weight == SMALL_CONFIG.page_weight
        assert loaded.created_unix > 0

    def test_page_vectors_bit_identical(self, small_build, snapshot_path):
        _, _, original = small_build
        loaded = load_snapshot(snapshot_path)
        for members, loaded_members in zip(original.clusters, loaded.clusters):
            for page, twin in zip(members, loaded_members):
                assert page.url == twin.url
                assert dict(page.pc.items()) == dict(twin.pc.items())
                assert dict(page.fc.items()) == dict(twin.fc.items())
                assert page.backlinks == twin.backlinks

    def test_vectorizer_state_survives(self, small_build, snapshot_path):
        pipeline, _, _ = small_build
        loaded = load_snapshot(snapshot_path)
        rebuilt = loaded.vectorizer()
        assert (
            rebuilt.pc_corpus.document_count
            == pipeline.vectorizer.pc_corpus.document_count
        )
        assert (
            rebuilt.pc_corpus.to_dict() == pipeline.vectorizer.pc_corpus.to_dict()
        )
        assert (
            rebuilt.fc_corpus.to_dict() == pipeline.vectorizer.fc_corpus.to_dict()
        )
        assert rebuilt.fc_corpus.idf_map() == pipeline.vectorizer.fc_corpus.idf_map()

    def test_transform_new_bit_identical(
        self, small_build, snapshot_path, small_raw_pages
    ):
        pipeline, _, _ = small_build
        rebuilt = load_snapshot(snapshot_path).vectorizer()
        for raw in small_raw_pages[:10]:
            ours = pipeline.vectorizer.transform_new(raw)
            theirs = rebuilt.transform_new(raw)
            assert dict(ours.pc.items()) == dict(theirs.pc.items())
            assert dict(ours.fc.items()) == dict(theirs.fc.items())

    def test_plain_json_and_gzip_both_load(self, small_build, tmp_path):
        _, _, snapshot = small_build
        plain = tmp_path / "snap.json"
        packed = tmp_path / "snap.json.gz"
        snapshot.save(plain)
        snapshot.save(packed)
        assert packed.stat().st_size < plain.stat().st_size
        # Plain file is actual JSON; packed one is actual gzip.
        json.loads(plain.read_bytes())
        assert packed.read_bytes()[:2] == b"\x1f\x8b"
        assert Snapshot.load(plain).n_pages == Snapshot.load(packed).n_pages


class TestValidation:
    def test_version_mismatch_raises_format_error(
        self, snapshot_path, tmp_path
    ):
        payload = json.loads(gzip.decompress(snapshot_path.read_bytes()))
        payload["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        bad = tmp_path / "future.json"
        bad.write_text(json.dumps(payload))
        with pytest.raises(DatasetFormatError) as excinfo:
            Snapshot.load(bad)
        assert excinfo.value.found_version == SNAPSHOT_FORMAT_VERSION + 1
        assert str(SNAPSHOT_FORMAT_VERSION) in str(excinfo.value)

    def test_wrong_kind_rejected(self, tmp_path):
        bad = tmp_path / "other.json"
        bad.write_text(json.dumps({"kind": "something-else",
                                   "format_version": 1}))
        with pytest.raises(ValueError, match="not a directory snapshot"):
            Snapshot.load(bad)

    def test_empty_clusters_rejected(self, tmp_path):
        bad = tmp_path / "empty.json"
        bad.write_text(json.dumps({
            "kind": "repro-directory-snapshot",
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "clusters": [],
        }))
        with pytest.raises(ValueError, match="clusters"):
            Snapshot.load(bad)

    def test_snapshot_info(self, snapshot_path, small_build):
        _, _, snapshot = small_build
        info = snapshot_info(snapshot_path)
        assert info["kind"] == "repro-directory-snapshot"
        # Equation-1 state keeps the pre-seam format version so older
        # readers stay compatible (non-default schemes bump to
        # SNAPSHOT_FORMAT_VERSION — see tests/test_schemes.py).
        assert info["format_version"] == 1
        assert info["scheme"] == "eq1"
        assert info["n_pages"] == snapshot.n_pages
        assert info["n_clusters"] == snapshot.n_clusters
        assert info["pc_vocabulary"] > 0
        assert info["fc_vocabulary"] > 0


class TestServedParity:
    """The acceptance criterion: a server cold-started from a snapshot
    classifies every page of the full benchmark corpus exactly as the
    offline organizer does."""

    @pytest.fixture(scope="class")
    def benchmark_build(self, benchmark_raw_pages, tmp_path_factory):
        config = CAFCConfig(k=8)
        pipeline = CAFCPipeline(config)
        result = pipeline.organize(benchmark_raw_pages)
        snapshot = build_snapshot(result, pipeline.vectorizer, config)
        path = tmp_path_factory.mktemp("bench-snap") / "bench.json.gz"
        snapshot.save(path)
        offline = IncrementalOrganizer(
            [list(cluster.pages) for cluster in result.clusters],
            pipeline.vectorizer,
            config=config,
        )
        return pipeline, offline, path

    def test_centroids_bit_identical(self, benchmark_build):
        _, offline, path = benchmark_build
        served = Snapshot.load(path).to_organizer()
        assert len(served.clusters) == len(offline.clusters)
        for ours, theirs in zip(offline.clusters, served.clusters):
            assert dict(ours.centroid.pc.items()) == dict(
                theirs.centroid.pc.items()
            )
            assert dict(ours.centroid.fc.items()) == dict(
                theirs.centroid.fc.items()
            )

    def test_classify_bit_identical_for_every_benchmark_page(
        self, benchmark_build, benchmark_raw_pages
    ):
        pipeline, offline, path = benchmark_build
        served = Snapshot.load(path).to_organizer()
        for raw in benchmark_raw_pages:
            page_offline = pipeline.vectorizer.transform_new(raw)
            page_served = served.vectorizer.transform_new(raw)
            want = offline.classify_vectorized(page_offline)
            got = served.classify_vectorized(page_served)
            assert got[0] == want[0], raw.url
            assert got[1] == want[1], raw.url  # exact float equality
