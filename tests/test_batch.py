"""Tests for vectorized batch similarity (repro.vsm.batch) and result
persistence (repro.datasets.results)."""

import numpy as np
import pytest

from repro.clustering.hac import similarity_matrix
from repro.core.config import CAFCConfig, ContentMode
from repro.core.similarity import FormPageSimilarity
from repro.datasets import load_result, save_result
from repro.vsm.batch import (
    build_term_index,
    centroid_rows,
    cosine_matrix,
    form_page_similarity_matrix,
    to_csr,
)
from repro.vsm.vector import SparseVector, cosine_similarity


class TestCosineMatrix:
    def _vectors(self):
        return [
            SparseVector({"a": 1.0, "b": 2.0}),
            SparseVector({"b": 1.0, "c": 3.0}),
            SparseVector({"d": 5.0}),
            SparseVector({}),
        ]

    def test_matches_scalar_cosine(self):
        vectors = self._vectors()
        matrix = cosine_matrix(vectors)
        for i in range(len(vectors)):
            for j in range(len(vectors)):
                expected = cosine_similarity(vectors[i], vectors[j])
                assert matrix[i, j] == pytest.approx(expected, abs=1e-12)

    def test_zero_vector_row_is_zero(self):
        matrix = cosine_matrix(self._vectors())
        assert np.all(matrix[3] == 0.0)

    def test_empty_collection(self):
        assert cosine_matrix([]).shape == (0, 0)

    def test_term_index_stable(self):
        vectors = self._vectors()
        assert build_term_index(vectors) == {"a": 0, "b": 1, "c": 2, "d": 3}

    def test_csr_round_trip(self):
        vectors = self._vectors()
        index = build_term_index(vectors)
        matrix = to_csr(vectors, index)
        assert matrix.shape == (4, 4)
        assert matrix[0, index["b"]] == 2.0

    def test_centroid_rows(self):
        vectors = [
            SparseVector({"a": 2.0}),
            SparseVector({"a": 4.0}),
            SparseVector({"b": 1.0}),
        ]
        index = build_term_index(vectors)
        matrix = to_csr(vectors, index)
        centroids = centroid_rows(matrix, [[0, 1], [2]])
        assert centroids[0, index["a"]] == pytest.approx(3.0)
        assert centroids[1, index["b"]] == pytest.approx(1.0)


class TestFormPageSimilarityMatrix:
    def test_matches_scalar_path_on_benchmark_sample(self, small_pages):
        pages = small_pages[:40]
        scalar = similarity_matrix(pages, FormPageSimilarity())
        batch = form_page_similarity_matrix(pages)
        assert np.allclose(scalar, batch, atol=1e-10)

    @pytest.mark.parametrize("mode", [ContentMode.FC, ContentMode.PC])
    def test_single_space_modes_match(self, small_pages, mode):
        pages = small_pages[:30]
        scalar = similarity_matrix(pages, FormPageSimilarity(content_mode=mode))
        batch = form_page_similarity_matrix(
            pages,
            use_pc=mode is ContentMode.PC,
            use_fc=mode is ContentMode.FC,
        )
        assert np.allclose(scalar, batch, atol=1e-10)

    def test_weighted_combination_matches(self, small_pages):
        pages = small_pages[:30]
        scalar = similarity_matrix(
            pages, FormPageSimilarity(page_weight=3.0, form_weight=1.0)
        )
        batch = form_page_similarity_matrix(pages, page_weight=3.0, form_weight=1.0)
        assert np.allclose(scalar, batch, atol=1e-10)

    def test_no_spaces_rejected(self, small_pages):
        with pytest.raises(ValueError):
            form_page_similarity_matrix(small_pages[:5], use_pc=False, use_fc=False)

    def test_empty_pages(self):
        assert form_page_similarity_matrix([]).shape == (0, 0)


class TestResultPersistence:
    @pytest.fixture(scope="class")
    def organized(self, small_raw_pages):
        from repro.core.pipeline import CAFCPipeline

        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        return pipeline.organize(small_raw_pages)

    def test_round_trip(self, organized, tmp_path):
        path = tmp_path / "directory.json"
        save_result(organized, path)
        loaded = load_result(path)
        assert loaded.algorithm == organized.algorithm
        assert loaded.n_clusters == organized.n_clusters
        assert loaded.n_pages == organized.n_pages
        for original, restored in zip(organized.clusters, loaded.clusters):
            assert restored.top_terms == original.top_terms
            assert restored.urls == original.urls
            assert restored.centroid.pc == original.centroid.pc
            assert restored.centroid.fc == original.centroid.fc

    def test_loaded_result_supports_exploration(self, organized, tmp_path):
        from repro.explore import ClusterExplorer

        path = tmp_path / "directory.json"
        save_result(organized, path)
        loaded = load_result(path)
        hits = ClusterExplorer(loaded).search("hotel rooms")
        assert hits

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99}')
        with pytest.raises(ValueError, match="format_version"):
            load_result(path)

    def test_top_level_type_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_result(path)
