"""Tests for evaluation metrics: entropy, F-measure, purity, NMI, ARI."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.types import Clustering
from repro.eval.entropy import class_distribution, cluster_entropy, total_entropy
from repro.eval.extra import (
    adjusted_rand_index,
    normalized_mutual_information,
    purity,
)
from repro.eval.fmeasure import f_measure, overall_f_measure, precision_recall

PERFECT = Clustering([[0, 1], [2, 3]])
PERFECT_LABELS = ["a", "a", "b", "b"]

MIXED = Clustering([[0, 2], [1, 3]])  # each cluster half a / half b

ALL_IN_ONE = Clustering([[0, 1, 2, 3]])


class TestEntropy:
    def test_pure_cluster_zero(self):
        assert cluster_entropy(["x", "x", "x"]) == 0.0

    def test_uniform_two_class(self):
        assert cluster_entropy(["a", "b"]) == pytest.approx(math.log(2))

    def test_empty_cluster(self):
        assert cluster_entropy([]) == 0.0

    def test_class_distribution_sums_to_one(self):
        distribution = class_distribution(["a", "a", "b"])
        assert sum(distribution) == pytest.approx(1.0)

    def test_perfect_clustering_zero_total(self):
        assert total_entropy(PERFECT, PERFECT_LABELS) == 0.0

    def test_mixed_clustering(self):
        assert total_entropy(MIXED, PERFECT_LABELS) == pytest.approx(math.log(2))

    def test_weighting_by_cluster_size(self):
        clustering = Clustering([[0], [1, 2, 3]])
        labels = ["a", "a", "b", "b"]
        # Cluster 0 pure; cluster 1 has 1 a + 2 b.
        expected = (3 / 4) * (-(1 / 3) * math.log(1 / 3) - (2 / 3) * math.log(2 / 3))
        assert total_entropy(clustering, labels) == pytest.approx(expected)

    def test_empty_clustering(self):
        assert total_entropy(Clustering([]), []) == 0.0

    def test_entropy_nonnegative_and_bounded(self):
        value = total_entropy(ALL_IN_ONE, PERFECT_LABELS)
        assert 0.0 <= value <= math.log(2) + 1e-9


class TestFMeasure:
    def test_precision_recall(self):
        precision, recall = precision_recall(3, 6, 4)
        assert precision == pytest.approx(0.75)
        assert recall == pytest.approx(0.5)

    def test_zero_safe(self):
        assert precision_recall(0, 0, 0) == (0.0, 0.0)
        assert f_measure(0, 0, 0) == 0.0

    def test_equation_six(self):
        # R = 1/2, P = 1/4 -> F = 2RP/(R+P) = 1/3.
        assert f_measure(1, 2, 4) == pytest.approx(1 / 3)

    def test_perfect_clustering_scores_one(self):
        assert overall_f_measure(PERFECT, PERFECT_LABELS) == pytest.approx(1.0)

    def test_all_in_one_cluster(self):
        # Each class: recall 1, precision 1/2 -> F = 2/3.
        assert overall_f_measure(ALL_IN_ONE, PERFECT_LABELS) == pytest.approx(2 / 3)

    def test_empty_clustering(self):
        assert overall_f_measure(Clustering([]), []) == 0.0

    def test_better_clustering_scores_higher(self):
        good = overall_f_measure(PERFECT, PERFECT_LABELS)
        bad = overall_f_measure(MIXED, PERFECT_LABELS)
        assert good > bad


class TestPurity:
    def test_perfect(self):
        assert purity(PERFECT, PERFECT_LABELS) == 1.0

    def test_mixed(self):
        assert purity(MIXED, PERFECT_LABELS) == 0.5

    def test_empty(self):
        assert purity(Clustering([]), []) == 0.0


class TestNmi:
    def test_perfect(self):
        assert normalized_mutual_information(PERFECT, PERFECT_LABELS) == pytest.approx(1.0)

    def test_independent_partition_near_zero(self):
        assert normalized_mutual_information(MIXED, PERFECT_LABELS) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_bounds(self):
        value = normalized_mutual_information(ALL_IN_ONE, PERFECT_LABELS)
        assert 0.0 <= value <= 1.0


class TestAri:
    def test_perfect(self):
        assert adjusted_rand_index(PERFECT, PERFECT_LABELS) == pytest.approx(1.0)

    def test_random_near_zero(self):
        assert abs(adjusted_rand_index(MIXED, PERFECT_LABELS)) < 0.5

    def test_empty(self):
        assert adjusted_rand_index(Clustering([]), []) == 0.0


label_lists = st.lists(st.sampled_from(["a", "b", "c"]), min_size=2, max_size=30)


def random_partition(n, rng_seed):
    import random as _random

    rng = _random.Random(rng_seed)
    k = rng.randint(1, n)
    clusters = [[] for _ in range(k)]
    for i in range(n):
        clusters[rng.randrange(k)].append(i)
    return Clustering([c for c in clusters if c])


class TestMetricProperties:
    @settings(max_examples=40, deadline=None)
    @given(label_lists, st.integers(min_value=0, max_value=100))
    def test_entropy_bounds(self, labels, seed):
        clustering = random_partition(len(labels), seed)
        value = total_entropy(clustering, labels)
        assert 0.0 <= value <= math.log(len(set(labels))) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(label_lists, st.integers(min_value=0, max_value=100))
    def test_f_measure_bounds(self, labels, seed):
        clustering = random_partition(len(labels), seed)
        value = overall_f_measure(clustering, labels)
        assert 0.0 <= value <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(label_lists)
    def test_gold_partition_is_optimal(self, labels):
        by_label = {}
        for index, label in enumerate(labels):
            by_label.setdefault(label, []).append(index)
        gold = Clustering(list(by_label.values()))
        assert total_entropy(gold, labels) == pytest.approx(0.0)
        assert overall_f_measure(gold, labels) == pytest.approx(1.0)
        assert purity(gold, labels) == pytest.approx(1.0)
        assert adjusted_rand_index(gold, labels) == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(label_lists, st.integers(min_value=0, max_value=100))
    def test_purity_bounds(self, labels, seed):
        clustering = random_partition(len(labels), seed)
        assert 0.0 < purity(clustering, labels) <= 1.0
