"""Epoch-fenced leadership: the split-brain chaos suite.

The scenario PR 7's runbook could only describe: a leader pauses (GC,
VM migration, a partition), a replica is promoted, and the old leader
*resumes* — a **zombie** that would happily keep acknowledging writes
nobody will ever see again.  The fence has two interlocking halves:

* **epochs** in the journal — promotion fsyncs an epoch marker before
  the new leader acks anything, and every apply path drops records
  stamped below the highest epoch durably seen;
* **leases** in a shared :class:`LeaseStore` — a node must hold a live
  lease *at its epoch* to ack a write, and the promoted node acquires
  at the bumped epoch, fencing the deposed lease TTL-or-not.

Pinned here, across seeded kill / pause-resume schedules
(``make failover-chaos`` runs the full soak):

1. **no acked write is ever lost** — every add the router acked is in
   the surviving node after failover;
2. **no two nodes ack writes in the same epoch** — the reply's
   ``(epoch, served_by)`` pair never shows a second acker;
3. the zombie's first post-resume write dies with
   :class:`StaleEpochError` (→ HTTP ``409 stale_epoch``), never an ack.

Plus the seams the invariants rest on: LeaseStore grant rules, journal
epoch stamping (pre-epoch logs recover bit-identically), the router's
single stale-epoch recovery (re-resolve once, then 503 — never a
loop), concurrent double-promotion, re-bootstrap across a sealed-scope
checkpoint fold, and the deadline budget the scatter-gather hands each
failover attempt.
"""

import json
import os
import random
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.distrib import (
    AllShardsUnavailable,
    DirectoryRouter,
    FailoverCoordinator,
    HttpShardClient,
    LeaseHeld,
    LeaseStore,
    LocalShardClient,
    ReplicaApp,
    ReplicaNode,
    ShardApp,
    ShardNode,
    ShardUnavailable,
    StaleEpochError,
    split_snapshot,
)
from repro.resilience import STATS, FaultPlan, FaultSpec, active_plan
from repro.resilience.journal import (
    DirectoryJournal,
    JournalError,
    open_journal,
    record_epoch,
)
from repro.service.directory import FormDirectory
from repro.service.snapshot import build_snapshot

N_POOL = 20
TTL = 10.0

#: Seeded kill/pause schedules the soak runs — >= 25 is the acceptance
#: bar; ``make failover-chaos`` (or the env knob) can push it higher.
FENCE_SEEDS = range(int(os.environ.get("REPRO_FENCING_SEEDS", "25")))

SHARD_KWARGS = dict(auto_recluster=False, batch_window_ms=None, cache_size=0)
REPLICA_KWARGS = dict(batch_window_ms=None, cache_size=0)
DIRECTORY_KWARGS = dict(
    auto_recluster=False, batch_window_ms=None, cache_size=0
)


class FakeClock:
    """Deterministic time for lease schedules (pause = just advance)."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def seed_corpus(small_raw_pages):
    managed = small_raw_pages[:-N_POOL]
    pool = small_raw_pages[-N_POOL:]
    config = CAFCConfig(k=8, min_hub_cardinality=3)
    pipeline = CAFCPipeline(config)
    result = pipeline.organize(managed)
    return build_snapshot(result, pipeline.vectorizer, config), pool


def build_fenced_cluster(snapshot, tmp_path, tag, seed, clock, ttl=TTL):
    """Hash-routed 2-shard deployment; shard 0 is fenced (journal +
    lease) with a tailing replica, shard 1 is a plain node."""
    parts = split_snapshot(snapshot, 2, placement="hash")
    wal = tmp_path / f"leader-{tag}-{seed}.wal"
    store = LeaseStore(tmp_path / f"lease-{tag}-{seed}.json", clock=clock)
    leader_node = ShardNode(
        parts[0], journal=wal, segment_records=4,
        lease_store=store, lease_ttl=ttl, **SHARD_KWARGS,
    )
    leader = LocalShardClient(leader_node, name="leader")
    other_node = ShardNode(parts[1], **SHARD_KWARGS)
    other = LocalShardClient(other_node, name="shard-1")
    replica = ReplicaNode(leader, name="replica-0", **REPLICA_KWARGS)
    replica.bootstrap()
    replica_client = LocalShardClient(replica, name="replica-0")
    router = DirectoryRouter(
        [[leader, replica_client], [other]], placement="hash"
    )
    return router, store, leader, leader_node, other_node, replica, \
        replica_client, wal


# ---------------------------------------------------------------------
# The tentpole soak: seeded kill / pause-resume schedules.
# ---------------------------------------------------------------------


class TestFencedFailoverSoak:
    def test_no_acked_write_lost_and_one_acker_per_epoch(
        self, seed_corpus, tmp_path
    ):
        snapshot, pool = seed_corpus
        epoch1_acks = 0
        zombies_pinned = 0
        for seed in FENCE_SEEDS:
            rng = random.Random(seed)
            clock = FakeClock()
            (router, store, leader, leader_node, other_node, replica,
             replica_client, wal) = build_fenced_cluster(
                snapshot, tmp_path, "soak", seed, clock
            )
            plan = FaultPlan(
                [
                    FaultSpec("lease.renew", "transient", probability=0.10),
                    FaultSpec("lease.read", "transient", probability=0.10),
                    FaultSpec(
                        "journal.append", "transient", probability=0.05
                    ),
                    FaultSpec(
                        "replication.ship", "transient", probability=0.15
                    ),
                ],
                seed=seed,
            )
            cut = rng.randrange(6, N_POOL - 5)
            scenario = rng.choice(["kill", "pause"])
            acked = {}  # url -> (shard, epoch, served_by)
            failovers_before = STATS.get("failovers")

            def write(raw):
                clock.advance(rng.uniform(0.2, 1.5))
                try:
                    reply = router.add(raw)
                except Exception:
                    # Chaos ate the write before the ack: the client
                    # saw an error, so losing it is *allowed*.
                    return
                acked[reply["url"]] = (
                    reply["shard"], reply["epoch"], reply["served_by"]
                )

            with active_plan(plan):
                for raw in pool[:cut]:
                    write(raw)
                    if rng.random() < 0.5:
                        try:
                            replica.poll()
                        except Exception:
                            pass

                # --- the event: crash, or pause long enough to fence --
                if scenario == "kill":
                    leader.kill()
                    leader_node.close()
                clock.advance(TTL + 1.0)  # missed renewals: lease lapses

                coordinator = FailoverCoordinator(
                    leader, [replica_client], wal, lease_store=store,
                    router=router, shard_index=0, miss_threshold=2,
                    lease_ttl=TTL,
                )
                event = coordinator.tick()
                for _ in range(6):
                    if event["action"] == "promoted":
                        break
                    clock.advance(1.0)
                    event = coordinator.tick()
                assert event["action"] == "promoted", (seed, event)
                assert event["epoch"] == 1
                assert STATS.get("failovers") == failovers_before + 1

                if scenario == "pause":
                    # The zombie resumes and tries to ack: pinned dead.
                    with pytest.raises(StaleEpochError):
                        leader_node.add(pool[cut])
                    assert leader_node.fenced
                    zombies_pinned += 1

                for raw in pool[cut:]:
                    write(raw)

            # --- invariant 2: one acker per (shard, epoch) -------------
            ackers = {}
            for url, (shard, epoch, served_by) in acked.items():
                ackers.setdefault((shard, epoch), set()).add(served_by)
                if shard == 0 and epoch == 1:
                    epoch1_acks += 1
            for key, names in ackers.items():
                assert len(names) == 1, (
                    f"seed {seed}: split brain — {key} acked by {names}"
                )

            # --- invariant 1: zero acked writes lost -------------------
            shard0_urls = set(replica.node.directory.organizer._by_url)
            shard1_urls = set(other_node.directory.organizer._by_url)
            for url, (shard, epoch, served_by) in acked.items():
                holder = shard0_urls if shard == 0 else shard1_urls
                assert url in holder, (
                    f"seed {seed}: acked write {url} "
                    f"(shard {shard}, epoch {epoch}) lost in failover"
                )

            router.close()
            replica.close()
            other_node.close()
            if scenario == "pause":
                leader_node.close()

        # Across the whole soak both halves of the fence fired.
        assert epoch1_acks > 0
        assert zombies_pinned > 0


class TestZombieLeaderPinned:
    """The named post-mortem scenario, deterministically."""

    def test_paused_leader_resumes_into_the_fence(
        self, seed_corpus, tmp_path
    ):
        snapshot, pool = seed_corpus
        clock = FakeClock()
        (router, store, leader, leader_node, other_node, replica,
         replica_client, wal) = build_fenced_cluster(
            snapshot, tmp_path, "zombie", 0, clock
        )
        try:
            for raw in pool[:6]:
                clock.advance(0.5)
                leader_node.add(raw)  # shard-0 writes: the lease is live
            lease = store.read()
            assert lease is not None and lease.epoch == 0
            assert leader_node.lease_remaining() > 0

            # The pause: the leader stops renewing; its lease lapses.
            clock.advance(TTL + 1.0)
            promoted = replica.promote(wal, lease_store=store)
            assert promoted.epoch == 1
            assert store.read().holder == "replica-0"

            # The resume: the zombie's very first ack attempt dies.
            rejections = STATS.get("fencing_rejections")
            with pytest.raises(StaleEpochError) as info:
                leader_node.add(pool[6])
            assert info.value.epoch == 1 and info.value.offered == 0
            assert STATS.get("fencing_rejections") == rejections + 1
            assert leader_node.fenced
            health = leader_node.healthz()
            assert health["role"] == "fenced"
            assert health["status"] == "degraded"

            # It cannot lease its way back in either.
            with pytest.raises(StaleEpochError):
                store.acquire(leader_node.name, 0, TTL)

            # The router fails over past the zombie to the new leader.
            reply = None
            for raw in pool[6:]:
                reply = router.add(raw)
                if reply["shard"] == 0:
                    break
            assert reply is not None and reply["shard"] == 0
            assert reply["epoch"] == 1
            assert reply["served_by"] == "replica-0"

            # Health-probe re-resolution fronts the promoted node.
            assert router._resolve_leader(0) is True
            assert router.shards[0][0] is replica_client
        finally:
            router.close()
            replica.close()
            leader_node.close()
            other_node.close()


# ---------------------------------------------------------------------
# LeaseStore grant rules (fake clock; no corpus needed).
# ---------------------------------------------------------------------


class TestLeaseStore:
    def test_acquire_read_renew_roundtrip(self, tmp_path):
        clock = FakeClock()
        store = LeaseStore(tmp_path / "a.lease", clock=clock)
        assert store.read() is None
        lease = store.acquire("n1", 1, 10.0)
        assert (lease.holder, lease.epoch) == ("n1", 1)
        assert lease.remaining(clock()) == pytest.approx(10.0)
        clock.advance(4.0)
        renewed = store.renew("n1", 1, 10.0)
        assert renewed.expires_at == pytest.approx(clock() + 10.0)
        assert store.read() == renewed
        assert not renewed.expired(clock())
        clock.advance(10.1)
        assert store.read().expired(clock())

    def test_same_epoch_contention_and_expiry_takeover(self, tmp_path):
        clock = FakeClock()
        store = LeaseStore(tmp_path / "b.lease", clock=clock)
        store.acquire("n1", 1, 10.0)
        with pytest.raises(LeaseHeld) as info:
            store.acquire("n2", 1, 10.0)
        assert info.value.holder == "n1"
        assert info.value.remaining == pytest.approx(10.0)
        clock.advance(10.5)  # expired: anyone may take it
        taken = store.acquire("n2", 1, 10.0)
        assert taken.holder == "n2"

    def test_higher_epoch_fences_a_live_lease(self, tmp_path):
        clock = FakeClock()
        store = LeaseStore(tmp_path / "c.lease", clock=clock)
        store.acquire("old", 1, 60.0)
        # TTL nowhere near expiry — the epoch alone wins.
        promoted = store.acquire("new", 2, 10.0)
        assert promoted.holder == "new"
        with pytest.raises(StaleEpochError) as info:
            store.renew("old", 1, 60.0)
        assert info.value.epoch == 2 and info.value.offered == 1

    def test_torn_file_reads_as_no_lease(self, tmp_path):
        path = tmp_path / "d.lease"
        store = LeaseStore(path, clock=FakeClock())
        path.write_bytes(b"\x00garbage{{{")
        assert store.read() is None
        path.write_text(json.dumps({"kind": "something-else"}), "utf-8")
        assert store.read() is None
        assert store.acquire("n1", 0, 5.0).holder == "n1"

    def test_release_only_by_holder(self, tmp_path):
        store = LeaseStore(tmp_path / "e.lease", clock=FakeClock())
        store.acquire("n1", 0, 5.0)
        assert store.release("n2") is False
        assert store.read() is not None
        assert store.release("n1") is True
        assert store.read() is None

    def test_operations_cross_fault_seams(self, tmp_path):
        from repro.resilience.faults import FaultError

        store = LeaseStore(tmp_path / "f.lease", clock=FakeClock())
        plan = FaultPlan(
            [FaultSpec("lease.acquire", "transient", probability=1.0)],
            seed=0,
        )
        with active_plan(plan):
            with pytest.raises(FaultError):
                store.acquire("n1", 0, 5.0)
        assert store.read() is None  # the faulted grant never landed


# ---------------------------------------------------------------------
# The epoch substrate in the journal and the directory apply paths.
# ---------------------------------------------------------------------


class TestEpochJournal:
    def test_pre_epoch_journal_stays_bit_identical(self, tmp_path):
        path = tmp_path / "v1.wal"
        journal = DirectoryJournal(path)
        for i in range(3):
            journal.append({"op": "noop", "i": i})
        journal.close()
        before = path.read_bytes()
        assert b'"epoch"' not in before  # the v1 byte format, untouched

        recovered = DirectoryJournal(path)
        assert recovered.epoch == 0
        assert recovered.replay() == [
            {"op": "noop", "i": i} for i in range(3)
        ]
        recovered.append({"op": "noop", "i": 3})
        recovered.close()
        after = path.read_bytes()
        assert after[: len(before)] == before
        assert b'"epoch"' not in after  # epoch-0 appends stay unstamped

    def test_bump_stamps_records_and_survives_reopen(self, tmp_path):
        path = tmp_path / "v2.wal"
        journal = DirectoryJournal(path)
        journal.append({"op": "noop", "i": 0})
        assert journal.bump_epoch() == 1
        journal.append({"op": "noop", "i": 1})
        assert journal.manifest()["epoch"] == 1
        records = journal.replay()
        assert record_epoch(records[0]) == 0
        assert records[1] == {"op": "epoch", "epoch": 1}
        assert record_epoch(records[2]) == 1
        with pytest.raises(JournalError):
            journal.bump_epoch(1)  # must increase
        journal.close()
        assert DirectoryJournal(path).epoch == 1

    def test_zombie_bytes_below_the_marker_drop_on_replay(
        self, seed_corpus, tmp_path
    ):
        """A deposed leader's records behind an applied epoch marker
        are counted for position but never applied — on recovery and
        through ``apply_replicated``."""
        snapshot, pool = seed_corpus
        wal = tmp_path / "zombie-bytes.wal"
        directory = FormDirectory.from_snapshot(
            snapshot, journal=open_journal(wal), **DIRECTORY_KWARGS
        )
        directory.add(pool[0])
        url = pool[0].url
        directory.journal.bump_epoch()
        # The zombie's parting shot: an epoch-0 remove of the acked add.
        directory.journal.append({"op": "remove", "url": url, "epoch": 0})
        position = directory.journal.next_record
        directory.close()

        stale_before = STATS.get("stale_records_dropped")
        recovered = FormDirectory.from_snapshot(
            snapshot, journal=open_journal(wal), **DIRECTORY_KWARGS
        )
        try:
            assert url in recovered.organizer._by_url  # remove skipped
            assert recovered.epoch == 1
            assert recovered.n_stale_dropped == 1
            assert STATS.get("stale_records_dropped") == stale_before + 1
            # Positions stayed global: the dropped record still counted.
            assert recovered.journal.next_record == position

            with pytest.raises(StaleEpochError):
                recovered.apply_replicated(
                    {"op": "remove", "url": url, "epoch": 0}
                )
            # Epoch markers themselves always pass (they raise the bar).
            recovered.apply_replicated({"op": "epoch", "epoch": 2})
            assert recovered.epoch == 2
        finally:
            recovered.close()


# ---------------------------------------------------------------------
# Promotion is exclusive (satellite: concurrent double-promote).
# ---------------------------------------------------------------------


class TestPromotionExclusive:
    def test_concurrent_promote_has_exactly_one_winner(
        self, seed_corpus, tmp_path
    ):
        snapshot, pool = seed_corpus
        clock = FakeClock()
        (router, store, leader, leader_node, other_node, replica,
         replica_client, wal) = build_fenced_cluster(
            snapshot, tmp_path, "double", 0, clock
        )
        try:
            for raw in pool[:4]:
                clock.advance(0.5)
                router.add(raw)
            leader.kill()
            leader_node.close()

            barrier = threading.Barrier(2)
            outcomes = [None, None]

            def attempt(slot):
                barrier.wait()
                try:
                    replica.promote(wal, lease_store=store)
                    outcomes[slot] = "ok"
                except RuntimeError as exc:
                    outcomes[slot] = f"err: {exc}"

            threads = [
                threading.Thread(target=attempt, args=(slot,))
                for slot in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert sorted(o.split(":")[0] for o in outcomes) == [
                "err", "ok"
            ]
            assert replica.promoted
            assert replica.node.epoch == 1  # bumped exactly once
            assert store.read().epoch == 1

            # A later retry answers cleanly too — and over HTTP that is
            # a structured 409, not corruption.
            with pytest.raises(RuntimeError, match="already promoted"):
                replica.promote(wal, lease_store=store)
            app = ReplicaApp(replica)
            body = json.dumps({"leader_journal": str(wal)}).encode()
            response = app.handle("POST", "/promote", lambda: body)
            assert response.status == 409
            payload = json.loads(response.body)
            assert payload["error"]["code"] == "already_promoted"
        finally:
            router.close()
            replica.close()
            other_node.close()


# ---------------------------------------------------------------------
# Router: one stale-epoch recovery, then a structured 503 — no loop.
# ---------------------------------------------------------------------


class _FencedEndpoint:
    """A write endpoint stuck answering 'I am fenced'."""

    def __init__(self, name, epoch=2):
        self.name = name
        self.epoch = epoch
        self.remove_calls = 0
        self.healthz_calls = 0

    def remove(self, url):
        self.remove_calls += 1
        raise StaleEpochError(self.epoch, 0)

    def healthz(self):
        self.healthz_calls += 1
        return {"role": "fenced", "epoch": self.epoch, "status": "degraded"}


class _PromotableEndpoint(_FencedEndpoint):
    """Fenced until a health probe observes its promotion landing."""

    def __init__(self, name, epoch=2):
        super().__init__(name, epoch)
        self.leader = False

    def remove(self, url):
        self.remove_calls += 1
        if self.leader:
            return True
        raise StaleEpochError(self.epoch, 0)

    def healthz(self):
        self.healthz_calls += 1
        self.leader = True  # promotion completes between sweeps
        return {
            "role": "leader", "epoch": self.epoch, "status": "ok",
        }


class TestRouterStaleEpochRecovery:
    def test_all_stale_reresolves_once_then_503(self):
        first = _FencedEndpoint("a")
        second = _FencedEndpoint("b")
        router = DirectoryRouter([[first, second]], placement="hash")
        try:
            with pytest.raises(AllShardsUnavailable) as info:
                router.remove("http://x.example/q")
            # One sweep + exactly one re-resolved retry — never a loop.
            assert first.remove_calls == 2 and second.remove_calls == 2
            assert first.healthz_calls == 1 and second.healthz_calls == 1
            assert "stale epoch everywhere" in str(info.value)
            assert router._m_reresolves.value == 1
        finally:
            router.close()

    def test_reresolve_finds_the_promoted_leader(self):
        zombie = _FencedEndpoint("zombie")
        promoted = _PromotableEndpoint("promoted")
        router = DirectoryRouter([[zombie, promoted]], placement="hash")
        try:
            reply = router.remove("http://x.example/q")
            assert reply["removed"] is True
            # First sweep fenced on both; the probe found the new
            # leader, fronted it, and the single retry settled.
            assert zombie.remove_calls == 1
            assert promoted.remove_calls == 2
            assert router.shards[0][0] is promoted
        finally:
            router.close()


# ---------------------------------------------------------------------
# Re-bootstrap re-verifies the manifest epoch (satellite regression).
# ---------------------------------------------------------------------


class TestRebootstrapAcrossFold:
    def test_sealed_fold_racing_writes_converges_at_epoch(
        self, seed_corpus, tmp_path
    ):
        """A replica behind a ``checkpoint(scope="sealed")`` fold must
        re-bootstrap — while the leader keeps writing — and land on the
        leader's epoch, not silently behind it."""
        snapshot, pool = seed_corpus
        parts = split_snapshot(snapshot, 2, placement="hash")
        wal = tmp_path / "fold.wal"
        # The leader already survived one failover: epoch 1 from birth.
        leader_node = ShardNode(
            parts[0], journal=wal, segment_records=4, epoch=1,
            **SHARD_KWARGS,
        )
        leader = LocalShardClient(leader_node, name="leader")
        replica = ReplicaNode(leader, name="replica-f", **REPLICA_KWARGS)
        replica.bootstrap()
        assert replica.epoch == 1  # the snapshot meta carried the epoch
        try:
            for raw in pool[:10]:
                leader_node.directory.add(raw)
            assert leader_node.journal.n_segments >= 2
            # Fold the sealed history while the replica is still at 0,
            # racing new writes in before the replica's next poll.
            leader_node.checkpoint(tmp_path / "fold.json.gz", scope="sealed")
            for raw in pool[10:14]:
                leader_node.directory.add(raw)
            bootstraps_before = replica.bootstraps
            replica.catch_up()
            assert replica.bootstraps > bootstraps_before
            assert replica.epoch == 1
            assert sorted(replica.node.directory.organizer._by_url) == (
                sorted(leader_node.directory.organizer._by_url)
            )

            # The inverse race: a zombie (epoch 0) serving the
            # bootstrap/tail endpoints is refused, not re-seeded from.
            stale_node = ShardNode(parts[0], **SHARD_KWARGS)
            stale_client = LocalShardClient(stale_node, name="stale")
            replica.leader = stale_client
            with pytest.raises(StaleEpochError):
                replica.poll()
            with pytest.raises(StaleEpochError):
                replica.bootstrap()
            stale_node.close()
        finally:
            replica.close()
            leader_node.close()


# ---------------------------------------------------------------------
# Deadline budget: remaining time, not a fresh constant, per attempt.
# ---------------------------------------------------------------------


class _BudgetRecorder:
    def __init__(self, name, fail=False):
        self.name = name
        self.fail = fail
        self.budgets = []

    @contextmanager
    def deadline(self, seconds):
        self.budgets.append(seconds)
        yield

    def ping(self):
        if self.fail:
            raise ShardUnavailable(self.name, "injected endpoint failure")
        return "pong"


class TestDeadlineBudget:
    def test_failover_attempts_share_one_budget(self):
        first = _BudgetRecorder("first", fail=True)
        second = _BudgetRecorder("second")
        router = DirectoryRouter([[first, second]], placement="hash")
        try:
            deadline = time.monotonic() + 5.0
            result = router._call_shard(0, lambda c: c.ping(), deadline)
            assert result == "pong"
            assert len(first.budgets) == 1 and len(second.budgets) == 1
            assert first.budgets[0] <= 5.0
            # The second endpoint got what the first one left, not a
            # fresh five seconds.
            assert second.budgets[0] <= first.budgets[0]
        finally:
            router.close()

    def test_exhausted_budget_stops_the_walk(self):
        endpoint = _BudgetRecorder("late")
        router = DirectoryRouter([[endpoint]], placement="hash")
        try:
            with pytest.raises(ShardUnavailable) as info:
                router._call_shard(
                    0, lambda c: c.ping(), time.monotonic() - 0.01
                )
            assert "deadline budget exhausted" in info.value.reason
            assert endpoint.budgets == []  # never even attempted
        finally:
            router.close()

    def test_http_client_budget_is_thread_local_and_restored(self):
        client = HttpShardClient("http://127.0.0.1:9", timeout=7.0)
        assert client.effective_timeout == 7.0
        with client.deadline(1.5):
            assert client.effective_timeout == 1.5
            with client.deadline(0.25):
                assert client.effective_timeout == 0.25
            assert client.effective_timeout == 1.5
            seen = []
            thread = threading.Thread(
                target=lambda: seen.append(client.effective_timeout)
            )
            thread.start()
            thread.join()
            assert seen == [7.0]  # other threads keep the base timeout
        assert client.effective_timeout == 7.0
        with client.deadline(-3.0):
            assert client.effective_timeout == 0.001  # floored, not bogus


# ---------------------------------------------------------------------
# The HTTP wire format: 409 stale_epoch, end to end through the app.
# ---------------------------------------------------------------------


class TestStaleEpochOnTheWire:
    def test_shard_app_maps_fencing_to_409(self, seed_corpus, tmp_path):
        snapshot, pool = seed_corpus
        clock = FakeClock()
        store = LeaseStore(tmp_path / "wire.lease", clock=clock)
        store.acquire("successor", 5, 60.0)  # someone else leads
        node = ShardNode(
            snapshot, lease_store=store, lease_ttl=TTL, **SHARD_KWARGS
        )
        app = ShardApp(node)
        try:
            body = json.dumps(
                {"url": pool[0].url, "html": pool[0].html}
            ).encode()
            response = app.handle("POST", "/add", lambda: body)
            assert response.status == 409
            error = json.loads(response.body)["error"]
            assert error["code"] == "stale_epoch"
            assert error["epoch"] == 5 and error["offered"] == 0

            # The HTTP client decodes those same bytes back into the
            # exception the in-process transport raises.
            client = HttpShardClient("http://127.0.0.1:9")
            with pytest.raises(StaleEpochError) as info:
                client._interpret("/add", 409, response.body, False, False)
            assert info.value.epoch == 5 and info.value.offered == 0

            # And health exposes the fenced role for re-resolution.
            health = app.handle("GET", "/healthz", None)
            payload = json.loads(health.body)
            assert payload["role"] == "fenced"
            assert payload["status"] == "degraded"
            assert payload["epoch"] == 0
            assert payload["lease_remaining"] == 0.0
        finally:
            node.close()


# ---------------------------------------------------------------------
# FailoverCoordinator: deterministic ticks over stub clients.
# ---------------------------------------------------------------------


class _StubReplicaClient:
    def __init__(self, name, epoch=0, applied=0, reachable=True):
        self.name = name
        self.epoch = epoch
        self.applied = applied
        self.reachable = reachable
        self.promoted_with = None

    def healthz(self):
        if not self.reachable:
            raise ShardUnavailable(self.name, "unreachable")
        return {
            "role": "replica", "status": "ok",
            "epoch": self.epoch, "applied": self.applied,
        }

    def promote(self, leader_journal, **kwargs):
        self.promoted_with = (leader_journal, kwargs)
        return {
            "ok": True, "name": self.name,
            "epoch": self.epoch + 1, "applied": self.applied,
        }


class _StubLeaderClient:
    def __init__(self):
        self.alive = True

    def healthz(self):
        if not self.alive:
            raise ShardUnavailable("leader", "dead")
        return {"role": "leader", "status": "ok"}


class _RouterRecorder:
    def __init__(self):
        self.calls = []

    def set_endpoints(self, index, endpoints):
        self.calls.append((index, list(endpoints)))


class TestFailoverCoordinator:
    def test_constructor_validates(self, tmp_path):
        with pytest.raises(ValueError):
            FailoverCoordinator(_StubLeaderClient(), [], tmp_path / "j.wal")
        with pytest.raises(ValueError):
            FailoverCoordinator(
                _StubLeaderClient(), [_StubReplicaClient("r")],
                tmp_path / "j.wal", miss_threshold=0,
            )

    def test_miss_threshold_absorbs_blips_then_promotes(self, tmp_path):
        clock = FakeClock()
        store = LeaseStore(tmp_path / "co.lease", clock=clock)
        store.acquire("leader", 0, 10.0)
        lagging = _StubReplicaClient("lagging", epoch=0, applied=5)
        caught_up = _StubReplicaClient("caught-up", epoch=1, applied=3)
        offline = _StubReplicaClient("offline", reachable=False)
        router = _RouterRecorder()
        coordinator = FailoverCoordinator(
            _StubLeaderClient(), [lagging, caught_up, offline],
            tmp_path / "leader.wal", lease_store=store, router=router,
            shard_index=0, miss_threshold=2, lease_ttl=10.0,
        )
        failovers_before = STATS.get("failovers")

        assert coordinator.tick()["action"] == "alive"
        clock.advance(11.0)  # lease lapses
        assert coordinator.tick()["action"] == "suspect"
        store.renew("leader", 0, 10.0)  # a blip: the leader came back
        assert coordinator.tick()["action"] == "alive"
        assert coordinator.misses == 0

        clock.advance(11.0)
        assert coordinator.tick()["action"] == "suspect"
        event = coordinator.tick()
        assert event["action"] == "promoted"
        # Highest (epoch, applied) wins — epoch beats raw position.
        assert event["winner"] == "caught-up"
        assert event["epoch"] == 2
        assert event["misses"] == 2
        assert event["detect_seconds"] >= 0.0
        journal, kwargs = caught_up.promoted_with
        assert journal.endswith("leader.wal")
        assert kwargs["lease_store"] is store
        assert kwargs["lease_ttl"] == 10.0
        assert lagging.promoted_with is None
        # The router now serves the promoted node first.
        assert router.calls == [(0, [caught_up, lagging, offline])]
        assert STATS.get("failovers") == failovers_before + 1
        assert coordinator.tick()["action"] == "done"

    def test_no_candidate_keeps_watching(self, tmp_path):
        clock = FakeClock()
        store = LeaseStore(tmp_path / "nc.lease", clock=clock)
        replica = _StubReplicaClient("r", reachable=False)
        coordinator = FailoverCoordinator(
            _StubLeaderClient(), [replica], tmp_path / "leader.wal",
            lease_store=store, miss_threshold=1,
        )
        assert coordinator.tick()["action"] == "no_candidate"
        assert not coordinator.completed
        replica.reachable = True
        assert coordinator.tick()["action"] == "promoted"

    def test_storeless_detection_probes_health(self, tmp_path):
        leader = _StubLeaderClient()
        replica = _StubReplicaClient("r")
        coordinator = FailoverCoordinator(
            leader, [replica], tmp_path / "leader.wal", miss_threshold=2,
        )
        assert coordinator.tick()["action"] == "alive"
        leader.alive = False
        assert coordinator.tick()["action"] == "suspect"
        assert coordinator.tick()["action"] == "promoted"
        assert replica.promoted_with == (str(tmp_path / "leader.wal"), {})
