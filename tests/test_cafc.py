"""Tests for CAFC-C and CAFC-CH (Algorithms 1-3) on synthetic corpora."""

import pytest

from repro.core.cafc_c import cafc_c, random_seed_centroids, similarity_for
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig, ContentMode
from repro.core.form_page import FormPage, VectorPair
from repro.core.hubs import build_hub_clusters
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.vsm.vector import SparseVector
import random


def page(url, label, terms, backlinks=()):
    vector = SparseVector({term: 1.0 for term in terms})
    return FormPage(
        url=url, pc=vector, fc=vector,
        backlinks=frozenset(backlinks), label=label,
    )


def toy_corpus():
    """Three clean domains, four pages each, with per-domain hubs."""
    pages = []
    vocab = {
        "job": ["job", "career", "salary"],
        "hotel": ["hotel", "room", "stay"],
        "auto": ["car", "dealer", "engine"],
    }
    for domain, words in vocab.items():
        hub = f"http://{domain}-hub.org/list"
        for index in range(4):
            terms = words + [f"{domain}{index}"]  # per-page idiosyncrasy
            pages.append(
                page(f"http://{domain}{index}.com/search", domain, terms, [hub])
            )
    return pages


class TestCafcC:
    def test_clusters_toy_domains(self):
        pages = toy_corpus()
        result = cafc_c(pages, CAFCConfig(k=3, seed=1, stop_fraction=0.0))
        gold = [p.label for p in pages]
        # The toy corpus is separable; a decent seed gets it right.
        assert overall_f_measure(result.clustering, gold) > 0.7

    def test_respects_k(self):
        pages = toy_corpus()
        result = cafc_c(pages, CAFCConfig(k=3, seed=0))
        assert result.clustering.n_clusters == 3

    def test_partition_covers_all_pages(self):
        pages = toy_corpus()
        result = cafc_c(pages, CAFCConfig(k=3, seed=0))
        assert result.clustering.n_points == len(pages)

    def test_reproducible_given_seed(self):
        pages = toy_corpus()
        first = cafc_c(pages, CAFCConfig(k=3, seed=5))
        second = cafc_c(pages, CAFCConfig(k=3, seed=5))
        assert first.clustering.clusters == second.clustering.clusters

    def test_different_seeds_allowed(self):
        pages = toy_corpus()
        cafc_c(pages, CAFCConfig(k=3, seed=1))
        cafc_c(pages, CAFCConfig(k=3, seed=2))  # must not raise

    def test_explicit_seed_centroids(self):
        pages = toy_corpus()
        seeds = [VectorPair.of(pages[0]), VectorPair.of(pages[4]), VectorPair.of(pages[8])]
        result = cafc_c(pages, CAFCConfig(k=3), seed_centroids=seeds)
        gold = [p.label for p in pages]
        assert total_entropy(result.clustering, gold) == pytest.approx(0.0)

    def test_seed_count_mismatch_raises(self):
        pages = toy_corpus()
        with pytest.raises(ValueError):
            cafc_c(pages, CAFCConfig(k=3), seed_centroids=[VectorPair.of(pages[0])])

    def test_more_seeds_than_pages_raises(self):
        pages = toy_corpus()[:2]
        with pytest.raises(ValueError):
            cafc_c(pages, CAFCConfig(k=3, seed=0))

    def test_random_seed_centroids_helper(self):
        pages = toy_corpus()
        seeds = random_seed_centroids(pages, 3, random.Random(0))
        assert len(seeds) == 3

    def test_content_mode_respected(self):
        pages = [
            page("http://a.com/", "a", ["x"]),
            page("http://b.com/", "b", ["y"]),
        ]
        # Give them identical FC but different PC.
        pages[0].fc = SparseVector({"same": 1.0})
        pages[1].fc = SparseVector({"same": 1.0})
        sim_fc = similarity_for(CAFCConfig(k=2, content_mode=ContentMode.FC))
        sim_pc = similarity_for(CAFCConfig(k=2, content_mode=ContentMode.PC))
        assert sim_fc(pages[0], pages[1]) == pytest.approx(1.0)
        assert sim_pc(pages[0], pages[1]) == 0.0


class TestCafcCH:
    def test_hub_seeding_beats_toy_noise(self):
        pages = toy_corpus()
        result = cafc_ch(pages, CAFCConfig(k=3, min_hub_cardinality=2))
        gold = [p.label for p in pages]
        assert total_entropy(result.clustering, gold) == pytest.approx(0.0)
        assert overall_f_measure(result.clustering, gold) == pytest.approx(1.0)

    def test_artifacts_exposed(self):
        pages = toy_corpus()
        result = cafc_ch(pages, CAFCConfig(k=3, min_hub_cardinality=2))
        assert len(result.hub_clusters) == 3
        assert len(result.selected_seeds) == 3

    def test_prebuilt_hub_clusters_accepted(self):
        pages = toy_corpus()
        hubs = build_hub_clusters(pages, min_cardinality=2)
        result = cafc_ch(pages, CAFCConfig(k=3), hub_clusters=hubs)
        assert result.hub_clusters is hubs

    def test_insufficient_hubs_raises(self):
        pages = toy_corpus()
        with pytest.raises(ValueError):
            cafc_ch(pages, CAFCConfig(k=3, min_hub_cardinality=100))

    def test_deterministic(self):
        pages = toy_corpus()
        first = cafc_ch(pages, CAFCConfig(k=3, min_hub_cardinality=2))
        second = cafc_ch(pages, CAFCConfig(k=3, min_hub_cardinality=2))
        assert first.clustering.clusters == second.clustering.clusters


class TestConfigValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            CAFCConfig(k=0)

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            CAFCConfig(page_weight=-1.0)
        with pytest.raises(ValueError):
            CAFCConfig(page_weight=0.0, form_weight=0.0)

    def test_bad_stop_fraction(self):
        with pytest.raises(ValueError):
            CAFCConfig(stop_fraction=1.0)

    def test_bad_min_cardinality(self):
        with pytest.raises(ValueError):
            CAFCConfig(min_hub_cardinality=0)

    def test_content_mode_flags(self):
        assert ContentMode.FC.uses_fc and not ContentMode.FC.uses_pc
        assert ContentMode.PC.uses_pc and not ContentMode.PC.uses_fc
        assert ContentMode.FC_PC.uses_fc and ContentMode.FC_PC.uses_pc


class TestOnSmallBenchmark:
    def test_cafc_ch_beats_cafc_c(self, small_pages, small_gold):
        config = CAFCConfig(k=8, min_hub_cardinality=3)
        ch = cafc_ch(small_pages, config)
        c = cafc_c(small_pages, CAFCConfig(k=8, seed=0))
        assert total_entropy(ch.clustering, small_gold) <= total_entropy(
            c.clustering, small_gold
        ) + 0.05

    def test_cafc_ch_quality_floor(self, small_pages, small_gold):
        config = CAFCConfig(k=8, min_hub_cardinality=3)
        ch = cafc_ch(small_pages, config)
        assert overall_f_measure(ch.clustering, small_gold) > 0.75
