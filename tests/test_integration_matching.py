"""Tests for attribute matching and unified-interface construction."""

import pytest

from repro.core.form_page import RawFormPage
from repro.integration import (
    AttributeInstance,
    build_unified_interface,
    collect_attributes,
    match_attributes,
)
from repro.integration.matching import attribute_similarity


def instance(form_index, field_name, label, label_terms, options=()):
    return AttributeInstance(
        form_index=form_index,
        field_name=field_name,
        label=label,
        label_terms=frozenset(label_terms),
        options=frozenset(options),
    )


JOB_FORM_A = """
<html><body><form action="/s">
<table>
<tr><td>Job Category</td><td><select name="category">
<option>Engineering</option><option>Sales</option><option>Finance</option>
</select></td></tr>
<tr><td>State</td><td><select name="state">
<option>Texas</option><option>Ohio</option></select></td></tr>
</table></form></body></html>
"""

JOB_FORM_B = """
<html><body><form action="/find">
<table>
<tr><td>Industry</td><td><select name="category">
<option>Engineering</option><option>Sales</option><option>Marketing</option>
</select></td></tr>
<tr><td>Location</td><td><select name="state">
<option>Texas</option><option>Maine</option></select></td></tr>
</table></form></body></html>
"""


class TestAttributeSimilarity:
    def test_identical_labels(self):
        a = instance(0, "x", "Job Category", ["job", "categori"])
        b = instance(1, "y", "Job Category", ["job", "categori"])
        assert attribute_similarity(a, b) == pytest.approx(1.0)

    def test_partial_label_overlap(self):
        a = instance(0, "x", "Job Category", ["job", "categori"])
        b = instance(1, "y", "Category", ["categori"])
        assert 0.0 < attribute_similarity(a, b) < 1.0

    def test_option_overlap_rescues_disjoint_labels(self):
        options = ["texas", "ohio", "maine"]
        a = instance(0, "x", "State", ["state"], options)
        b = instance(1, "y", "Where", ["where"], options)
        assert attribute_similarity(a, b) >= 0.4

    def test_same_field_name_bonus(self):
        a = instance(0, "state", "", [])
        b = instance(1, "state", "", [])
        assert attribute_similarity(a, b) == pytest.approx(0.3)

    def test_no_evidence_scores_zero(self):
        a = instance(0, "x", "", [])
        b = instance(1, "y", "", [])
        assert attribute_similarity(a, b) == 0.0

    def test_capped_at_one(self):
        options = ["a", "b"]
        a = instance(0, "same", "State", ["state"], options)
        b = instance(1, "same", "State", ["state"], options)
        assert attribute_similarity(a, b) == 1.0


class TestCollectAttributes:
    def test_attributes_collected_with_labels_and_options(self):
        pages = [RawFormPage("http://a.com/", JOB_FORM_A)]
        instances = collect_attributes(pages)
        assert len(instances) == 2
        by_label = {i.label: i for i in instances}
        assert "engineering" in by_label["Job Category"].options

    def test_form_index_tracked(self):
        pages = [
            RawFormPage("http://a.com/", JOB_FORM_A),
            RawFormPage("http://b.com/", JOB_FORM_B),
        ]
        instances = collect_attributes(pages)
        assert {i.form_index for i in instances} == {0, 1}

    def test_page_without_form_skipped(self):
        pages = [RawFormPage("http://a.com/", "<p>no form</p>")]
        assert collect_attributes(pages) == []


class TestMatchAttributes:
    def test_cross_site_correspondences_found(self):
        pages = [
            RawFormPage("http://a.com/", JOB_FORM_A),
            RawFormPage("http://b.com/", JOB_FORM_B),
        ]
        groups = match_attributes(collect_attributes(pages))
        # 'Job Category'~'Industry' (options) and 'State'~'Location'.
        assert len(groups) == 2
        assert all(group.size == 2 for group in groups)

    def test_same_form_attributes_never_merge(self):
        instances = [
            instance(0, "a", "Category", ["categori"]),
            instance(0, "b", "Category", ["categori"]),
        ]
        groups = match_attributes(instances)
        assert len(groups) == 2

    def test_below_threshold_stays_apart(self):
        instances = [
            instance(0, "a", "Author", ["author"]),
            instance(1, "b", "Destination", ["destin"]),
        ]
        groups = match_attributes(instances)
        assert len(groups) == 2

    def test_empty_input(self):
        assert match_attributes([]) == []

    def test_canonical_label_majority(self):
        instances = [
            instance(0, "c", "Industry", ["industri"]),
            instance(1, "c", "Industry", ["industri"]),
            instance(2, "c", "Job Category", ["job", "categori"]),
        ]
        groups = match_attributes(instances, threshold=0.2)
        assert groups[0].canonical_label() == "Industry"

    def test_generator_ground_truth_precision(self, small_raw_pages):
        """Matched pairs should share the generator's concept name."""
        job_pages = [p for p in small_raw_pages if p.label == "job"][:6]
        groups = match_attributes(collect_attributes(job_pages))
        correct = total = 0
        for group in groups:
            names = [m.field_name for m in group.members]
            for i in range(len(names)):
                for j in range(i + 1, len(names)):
                    total += 1
                    correct += names[i] == names[j]
        if total:
            assert correct / total >= 0.9


class TestUnifiedInterface:
    def _pages(self):
        return [
            RawFormPage("http://a.com/", JOB_FORM_A),
            RawFormPage("http://b.com/", JOB_FORM_B),
        ]

    def test_fields_built_with_coverage(self):
        unified = build_unified_interface(self._pages(), min_coverage=0.5)
        assert len(unified.fields) == 2
        assert all(field.coverage == 1.0 for field in unified.fields)

    def test_options_merged_across_sources(self):
        unified = build_unified_interface(self._pages())
        state_field = next(f for f in unified.fields if "texas" in f.options)
        assert set(state_field.options) == {"texas", "ohio", "maine"}

    def test_coverage_filter(self):
        pages = self._pages() + [
            RawFormPage(
                "http://c.com/",
                "<form><td>Salary</td><select name='sal'><option>High</option></select></form>",
            )
        ]
        strict = build_unified_interface(pages, min_coverage=0.5)
        labels = {field.label for field in strict.fields}
        assert "Salary" not in labels

    def test_to_html_renders_a_form(self):
        unified = build_unified_interface(self._pages())
        html = unified.to_html()
        from repro.html.forms import extract_forms

        form = extract_forms(html)[0]
        assert form.attribute_count == len(unified.fields)

    def test_bad_coverage_rejected(self):
        with pytest.raises(ValueError):
            build_unified_interface(self._pages(), min_coverage=1.5)

    def test_source_count_recorded(self):
        unified = build_unified_interface(self._pages())
        assert unified.n_source_forms == 2
