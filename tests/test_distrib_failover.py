"""Kill-the-leader: the failover soak under seeded chaos.

The scenario the distributed directory exists to survive: a leader
shard takes acknowledged writes while a replica tails its shipped
journal segments over a *flaky* ship path, then the leader dies
mid-stream.  The replica promotes by draining the leader's on-disk
journal (acknowledged = fsynced there) — and the pinned invariant is
**zero acknowledged writes lost**: every add the router acked is
present after failover, every time, under every chaos seed.

Also pinned here: the router's degradation ladder while this happens —
failover lists mask a dead leader entirely, a shard with no live
endpoint degrades responses to ``partial`` (never wrong), and aggregate
health grades ``degraded`` instead of lying.
"""

import random

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.distrib import (
    AllShardsUnavailable,
    DirectoryRouter,
    LocalShardClient,
    ReplicaNode,
    ShardNode,
    split_snapshot,
)
from repro.resilience import STATS, FaultPlan, FaultSpec, active_plan
from repro.service.snapshot import build_snapshot

N_POOL = 20
SOAK_SEEDS = range(5)

SHARD_KWARGS = dict(auto_recluster=False, batch_window_ms=None, cache_size=0)
# ReplicaNode.bootstrap pins journal/auto_recluster itself.
REPLICA_KWARGS = dict(batch_window_ms=None, cache_size=0)


@pytest.fixture(scope="module")
def seed_corpus(small_raw_pages):
    managed = small_raw_pages[:-N_POOL]
    pool = small_raw_pages[-N_POOL:]
    config = CAFCConfig(k=8, min_hub_cardinality=3)
    pipeline = CAFCPipeline(config)
    result = pipeline.organize(managed)
    return build_snapshot(result, pipeline.vectorizer, config), pool


def build_cluster(snapshot, tmp_path, tag, seed, segment_records=4):
    """Leader (journaled, segment-rotating) + follower replica + a
    second shard, behind a router with a failover list for shard 0."""
    parts = split_snapshot(snapshot, 2)
    wal = tmp_path / f"leader-{tag}-{seed}.wal"
    leader_node = ShardNode(
        parts[0], journal=wal, segment_records=segment_records,
        **SHARD_KWARGS,
    )
    leader = LocalShardClient(leader_node, name="leader")
    other_node = ShardNode(parts[1], **SHARD_KWARGS)
    other = LocalShardClient(other_node, name="shard-1")
    replica = ReplicaNode(leader, name="replica-0", **REPLICA_KWARGS)
    replica.bootstrap()
    router = DirectoryRouter(
        [[leader, LocalShardClient(replica, name="replica-0")], [other]]
    )
    return router, leader, leader_node, other_node, replica, wal


class TestKillTheLeaderSoak:
    def test_zero_acked_writes_lost_under_chaos(
        self, seed_corpus, tmp_path
    ):
        snapshot, pool = seed_corpus
        for seed in SOAK_SEEDS:
            rng = random.Random(seed)
            router, leader, leader_node, other_node, replica, wal = (
                build_cluster(snapshot, tmp_path, "soak", seed)
            )
            plan = FaultPlan(
                [
                    FaultSpec(
                        "replication.ship", "transient", probability=0.25
                    ),
                    FaultSpec(
                        "router.fanout", "transient", probability=0.05
                    ),
                    FaultSpec(
                        "journal.append", "transient", probability=0.10
                    ),
                ],
                seed=seed,
            )
            acked = {}  # url -> shard that acknowledged the write
            with active_plan(plan):
                for raw in pool:
                    try:
                        reply = router.add(raw)
                        acked[reply["url"]] = reply["shard"]
                    except Exception:
                        # Chaos ate the write before the ack: the client
                        # saw an error, so losing it is *allowed*.
                        pass
                    if rng.random() < 0.5:
                        try:
                            replica.poll()  # flaky ship path: may raise
                        except Exception:
                            pass

            # --- the kill ----------------------------------------------
            promotions_before = STATS.get("promotions")
            applied_at_death = replica.applied
            leader.kill()
            leader_node.close()  # the process is gone; the log survives

            promoted = replica.promote(wal)
            assert replica.promoted
            assert STATS.get("promotions") == promotions_before + 1
            assert replica.applied == promoted.journal.next_record
            # applied includes the epoch marker promotion fsyncs after
            # the drain, which drained_on_promotion does not count.
            assert replica.drained_on_promotion == (
                replica.applied - applied_at_death - 1
            )
            assert promoted.epoch == 1  # promotion bumped the fence

            # --- zero acknowledged writes lost -------------------------
            shard0_urls = set(promoted.directory.organizer._by_url)
            shard1_urls = set(other_node.directory.organizer._by_url)
            for url, shard in acked.items():
                holder = shard0_urls if shard == 0 else shard1_urls
                assert url in holder, (
                    f"seed {seed}: acked write {url} (shard {shard}) "
                    f"lost in failover"
                )

            # --- the promoted node serves and journals new writes ------
            new_router = DirectoryRouter(
                [[LocalShardClient(promoted, name="promoted")],
                 [LocalShardClient(other_node, name="shard-1")]]
            )
            position = promoted.journal.next_record
            probe = pool[0]
            reply = new_router.classify(probe)
            assert reply["partial"] is False
            new_router.remove(probe.url)
            # Removes journal even as no-ops: the log advanced.
            assert promoted.journal.next_record == position + 1

            new_router.close()
            router.close()
            replica.close()
            other_node.close()

    def test_soak_is_deterministic_per_seed(self, seed_corpus, tmp_path):
        """Same seed → same chaos → the same set of acked writes."""
        snapshot, pool = seed_corpus
        outcomes = []
        for run in range(2):
            router, leader, leader_node, other_node, replica, wal = (
                build_cluster(snapshot, tmp_path, f"det{run}", 99)
            )
            plan = FaultPlan(
                [
                    FaultSpec(
                        "router.fanout", "transient", probability=0.15
                    ),
                    FaultSpec(
                        "journal.append", "transient", probability=0.15
                    ),
                ],
                seed=99,
            )
            acked = []
            with active_plan(plan):
                for raw in pool:
                    try:
                        reply = router.add(raw)
                        acked.append((reply["url"], reply["shard"]))
                    except Exception:
                        acked.append(None)
            outcomes.append(acked)
            router.close()
            replica.close()
            leader_node.close()
            other_node.close()
        assert outcomes[0] == outcomes[1]


class TestDegradationLadder:
    def test_failover_masks_then_partial_then_503(
        self, seed_corpus, tmp_path
    ):
        snapshot, pool = seed_corpus
        router, leader, leader_node, other_node, replica, wal = (
            build_cluster(snapshot, tmp_path, "ladder", 0)
        )
        try:
            for raw in pool[:6]:
                router.add(raw)
            replica.catch_up()

            # Rung 1: leader dead, replica caught up → masked entirely.
            leader.kill()
            reply = router.search("cheap flight airline ticket", n=5)
            assert reply["partial"] is False
            assert reply["shards"]["answered"] == [0, 1]
            assert router.healthz()["status"] == "ok"

            # Rung 2: replica dies too → shard 0 gone, answers degrade
            # to partial (flagged, never silently wrong).
            broken = ReplicaNode(leader, name="rebooting")  # never boots
            degraded = DirectoryRouter(
                [[leader, LocalShardClient(broken, name="rebooting")],
                 [LocalShardClient(other_node, name="shard-1")]]
            )
            reply = degraded.search("cheap flight airline ticket", n=5)
            assert reply["partial"] is True
            assert reply["shards"]["answered"] == [1]
            assert "0" in reply["shards"]["failed"]
            health = degraded.healthz()
            assert health["status"] == "degraded"
            # The replica *answers* health while recovering (the leader
            # endpoint is dead, so its record is the one that surfaces).
            assert health["shards"]["0"]["status"] == "recovering"

            # Writes that need shard 0 refuse rather than misroute.
            with pytest.raises(AllShardsUnavailable):
                degraded.add(pool[-1])
            degraded.close()

            # Rung 3: everything dead → AllShardsUnavailable (the HTTP
            # face turns this into 503 + Retry-After).
            dead = DirectoryRouter([[leader]])
            with pytest.raises(AllShardsUnavailable):
                dead.search("anything")
            dead.close()
        finally:
            router.close()
            replica.close()
            leader_node.close()
            other_node.close()

    def test_lagging_replica_grades_recovering(self, seed_corpus, tmp_path):
        """A replica behind by more than ``max_lag_records`` grades
        itself ``recovering`` so routers stop reading from it; catching
        up restores the normal grade."""
        snapshot, pool = seed_corpus
        # No rotation: the whole backlog stays in the active (unsealed)
        # tail, which is exactly the lag a poll cannot apply.
        router, leader, leader_node, other_node, replica, wal = (
            build_cluster(snapshot, tmp_path, "lag", 1, segment_records=100)
        )
        try:
            replica.max_lag_records = 2
            for raw in pool[:8]:
                leader.add(raw)
            report = replica.poll()
            assert report["lag"] == 8
            assert replica.health_state() == "recovering"
            # The leader seals the backlog; the next poll applies it.
            leader_node.journal.roll()
            replica.catch_up()
            assert replica.last_lag == 0
            assert replica.health_state() in ("ok", "degraded")
        finally:
            router.close()
            replica.close()
            leader_node.close()
            other_node.close()


class TestReplicaResync:
    def test_folded_segments_force_rebootstrap(self, seed_corpus, tmp_path):
        """A replica that fell behind a sealed-scope checkpoint cannot
        replay the gap — it must (and does) re-bootstrap."""
        snapshot, pool = seed_corpus
        router, leader, leader_node, other_node, replica, wal = (
            build_cluster(snapshot, tmp_path, "resync", 2)
        )
        try:
            for raw in pool[:10]:
                leader.add(raw)  # 2 sealed segments + active tail
            assert leader_node.journal.n_segments == 2
            # Fold the sealed history while the replica is still at 0.
            leader_node.checkpoint(
                tmp_path / "fold.json.gz", scope="sealed"
            )
            # New writes seal a segment whose base is *past* the
            # replica's applied position — the unreplayable gap.
            for raw in pool[10:14]:
                leader.add(raw)
            assert leader_node.journal.n_segments >= 1
            bootstraps_before = replica.bootstraps
            replica.catch_up()
            assert replica.bootstraps > bootstraps_before
            # After the resync the copy converges with the leader.
            assert sorted(replica.node.directory.organizer._by_url) == (
                sorted(leader_node.directory.organizer._by_url)
            )
        finally:
            router.close()
            replica.close()
            leader_node.close()
            other_node.close()
