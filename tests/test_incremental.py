"""Tests for incremental cluster maintenance."""

import pytest

from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.core.incremental import IncrementalOrganizer
from repro.core.vectorizer import FormPageVectorizer
from repro.webgen.corpus import generate_benchmark

from tests.conftest import small_config


@pytest.fixture(scope="module")
def organizer_setup(small_web, small_raw_pages):
    vectorizer = FormPageVectorizer()
    pages = vectorizer.fit_transform(small_raw_pages)
    result = cafc_ch(pages, CAFCConfig(k=8, min_hub_cardinality=3))
    initial = [
        [pages[i] for i in members]
        for members in result.clustering.compact().clusters
    ]
    return vectorizer, pages, initial


def make_organizer(organizer_setup):
    vectorizer, _, initial = organizer_setup
    return IncrementalOrganizer(
        [list(cluster) for cluster in initial], vectorizer
    )


class TestConstruction:
    def test_initial_state(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        _, pages, _ = organizer_setup
        assert len(organizer) == len(pages)
        assert organizer.cohesion > 0.0
        assert not organizer.needs_reclustering

    def test_requires_clusters(self, organizer_setup):
        vectorizer, _, _ = organizer_setup
        with pytest.raises(ValueError):
            IncrementalOrganizer([], vectorizer)

    def test_drift_threshold_validated(self, organizer_setup):
        vectorizer, _, initial = organizer_setup
        with pytest.raises(ValueError):
            IncrementalOrganizer(initial, vectorizer, drift_threshold=0.0)

    def test_membership_lookup(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        _, pages, _ = organizer_setup
        url = pages[0].url
        assert url in organizer
        assert 0 <= organizer.cluster_of(url) < len(organizer.clusters)


class TestAddRemove:
    def test_add_new_source_lands_in_right_domain(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        fresh = generate_benchmark(config=small_config(seed=55))
        correct = 0
        added = fresh.raw_pages()[:20]
        for raw in added:
            index = organizer.add(raw)
            cluster = organizer.clusters[index]
            labels = [p.label for p in cluster.pages if p.label]
            majority = max(set(labels), key=labels.count)
            correct += majority == raw.label
        assert correct / len(added) > 0.6
        assert organizer.n_added == len(added)

    def test_add_updates_centroid_and_size(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        fresh = generate_benchmark(config=small_config(seed=56))
        raw = fresh.raw_pages()[0]
        before = organizer.sizes()
        index = organizer.add(raw)
        after = organizer.sizes()
        assert after[index] == before[index] + 1
        assert raw.url in organizer

    def test_remove_managed_page(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        _, pages, _ = organizer_setup
        url = pages[0].url
        index = organizer.cluster_of(url)
        before = organizer.clusters[index].size
        assert organizer.remove(url)
        assert organizer.clusters[index].size == before - 1
        assert url not in organizer

    def test_remove_unknown_returns_false(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        assert not organizer.remove("http://nowhere.example/")

    def test_re_add_replaces(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        fresh = generate_benchmark(config=small_config(seed=57))
        raw = fresh.raw_pages()[0]
        organizer.add(raw)
        total_before = len(organizer)
        organizer.add(raw)
        assert len(organizer) == total_before  # replaced, not duplicated

    def test_cohesion_tracks_quality(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        initial_cohesion = organizer.cohesion
        # Adding well-matching pages keeps cohesion in the same regime.
        fresh = generate_benchmark(config=small_config(seed=58))
        for raw in fresh.raw_pages()[:10]:
            organizer.add(raw)
        assert organizer.cohesion > 0.5 * initial_cohesion


class TestSimilarityBudget:
    """Regression: add is O(1) in similarity evaluations — exactly
    ``len(clusters) + 1`` per add (one per centroid plus the new page's
    cohesion contribution), independent of how many pages are managed;
    remove costs zero."""

    def test_add_costs_k_plus_one_similarities(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        k = len(organizer.clusters)
        fresh = generate_benchmark(config=small_config(seed=59))
        raw_pages = fresh.raw_pages()[:12]
        budgets = []
        for raw in raw_pages:
            before = organizer.backend.stats.comparisons
            organizer.add(raw)
            budgets.append(organizer.backend.stats.comparisons - before)
        # Every add pays the same price, no matter how large the
        # collection has grown, and that price is exactly k + 1.
        assert budgets == [k + 1] * len(raw_pages)

    def test_remove_costs_no_similarities(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        _, pages, _ = organizer_setup
        before = organizer.backend.stats.comparisons
        assert organizer.remove(pages[0].url)
        assert organizer.backend.stats.comparisons == before

    def test_cohesion_read_costs_no_similarities(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        before = organizer.backend.stats.comparisons
        _ = organizer.cohesion
        _ = organizer.needs_reclustering
        assert organizer.backend.stats.comparisons == before

    def test_refresh_cohesion_matches_running_sum_initially(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        running = organizer.cohesion
        assert organizer.refresh_cohesion() == pytest.approx(running, abs=1e-9)


class TestEmptyOrganizer:
    """Regression: an organizer whose clusters hold no pages (all
    removed, or seeded with empty clusters) must not crash or wedge
    drift detection."""

    def empty_organizer(self, organizer_setup):
        vectorizer, _, initial = organizer_setup
        return IncrementalOrganizer(
            [[] for _ in initial], vectorizer
        )

    def test_refresh_cohesion_on_empty(self, organizer_setup):
        organizer = self.empty_organizer(organizer_setup)
        assert organizer.refresh_cohesion() == 0.0
        assert organizer.cohesion == 0.0
        assert not organizer.needs_reclustering

    def test_drain_then_refresh(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        for url in list(organizer._by_url):
            assert organizer.remove(url)
        assert len(organizer) == 0
        assert organizer.refresh_cohesion() == 0.0
        assert organizer.cohesion == 0.0
        assert not organizer.needs_reclustering

    def test_baseline_self_heals_after_first_add(self, organizer_setup):
        # Starting empty, the drift baseline is 0.0 — which would make
        # needs_reclustering permanently False.  The first add with real
        # cohesion must re-arm it.
        organizer = self.empty_organizer(organizer_setup)
        fresh = generate_benchmark(config=small_config(seed=61))
        for raw in fresh.raw_pages()[:5]:
            organizer.add(raw)
        assert organizer.cohesion > 0.0
        assert organizer._baseline_cohesion > 0.0


class TestBatchClassify:
    """The serving hooks: classify_batch must agree with the scalar
    path, and recluster must repair drift in place."""

    def test_classify_batch_matches_scalar(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        _, pages, _ = organizer_setup
        probes = pages[:16]
        batched = organizer.classify_batch(probes)
        for page, (cluster, similarity) in zip(probes, batched):
            want_cluster, want_similarity = organizer.classify_vectorized(page)
            assert cluster == want_cluster, page.url
            assert similarity == pytest.approx(want_similarity, abs=1e-9)

    def test_classify_batch_single_engine_call(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        _, pages, _ = organizer_setup
        probes = pages[:16]
        before = organizer.backend.stats.comparisons
        organizer.classify_batch(probes)
        paid = organizer.backend.stats.comparisons - before
        # One batched matrix call: pages x centroids comparisons, not
        # per-request overhead.
        assert paid == len(probes) * len(organizer.clusters)

    def test_recluster_preserves_pages_and_k(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        n_pages = len(organizer)
        k = len(organizer.clusters)
        moved = organizer.recluster()
        assert moved >= 0
        assert len(organizer) == n_pages
        assert len(organizer.clusters) == k
        # Membership map stays consistent with cluster contents.
        for index, cluster in enumerate(organizer.clusters):
            for page in cluster.pages:
                assert organizer.cluster_of(page.url) == index

    def test_recluster_resets_drift_baseline(self, organizer_setup):
        organizer = make_organizer(organizer_setup)
        organizer.recluster()
        assert organizer._baseline_cohesion == pytest.approx(
            organizer.cohesion
        )
        assert not organizer.needs_reclustering
