"""Tests for the run-all experiment driver and markup invariance."""

import random

import pytest

from repro.experiments.run_all import experiment_names, run_all
from repro.text.analyzer import TextAnalyzer
from repro.webgen.pages_gen import _paragraphs


class TestRunAll:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_all(only="nonsense")

    def test_single_experiment_report(self):
        report = run_all(only="corpus_profile", n_runs=1)
        assert "Section 4.1" in report
        assert "Figure 2" not in report

    def test_experiment_names_stable(self):
        names = experiment_names()
        assert "fig2" in names and "robustness" in names
        assert len(names) == len(set(names))


class TestSloppyMarkupInvariance:
    """Sloppy markup must change the HTML but never the visible terms."""

    def test_same_analyzed_terms(self):
        from repro.html.text_extract import page_text

        words = ["flight", "hotel", "career", "album"] * 6
        analyzer = TextAnalyzer()
        clean = _paragraphs(words, random.Random(3), sloppy=False)
        sloppy = _paragraphs(words, random.Random(3), sloppy=True)
        assert clean != sloppy  # the markup differs ...
        clean_terms = sorted(analyzer.analyze(page_text(f"<body>{clean}</body>")))
        sloppy_terms = sorted(analyzer.analyze(page_text(f"<body>{sloppy}</body>")))
        assert clean_terms == sloppy_terms  # ... the content does not

    def test_sloppy_markup_parses(self):
        from repro.html.parser import parse_html

        words = ["job"] * 40
        sloppy = _paragraphs(words, random.Random(1), sloppy=True)
        root = parse_html(f"<html><body>{sloppy}</body></html>")
        assert root.find("p") is not None
