"""Tests for the keyword siphoner."""

import pytest

from repro.hiddendb import HiddenDatabase, generate_records
from repro.hiddendb.siphon import KeywordSiphoner
from repro.webgen.domains import domain_by_name


@pytest.fixture(scope="module")
def job_db():
    return HiddenDatabase(generate_records(domain_by_name("job"), 80, seed="s"))


class TestSiphoner:
    def test_retrieves_most_of_the_database(self, job_db):
        siphoner = KeywordSiphoner(max_queries=60)
        result = siphoner.siphon(job_db, seed_terms=["job", "career"])
        assert result.coverage > 0.8

    def test_respects_query_budget(self, job_db):
        siphoner = KeywordSiphoner(max_queries=3)
        result = siphoner.siphon(job_db, seed_terms=["job"])
        assert result.queries_issued <= 3

    def test_no_duplicate_records(self, job_db):
        result = KeywordSiphoner(max_queries=40).siphon(job_db, ["job"])
        ids = [id(record) for record in result.retrieved]
        assert len(ids) == len(set(ids))

    def test_terms_mined_beyond_seeds(self, job_db):
        # A mid-frequency seed term cannot cover the database alone, so
        # the siphoner must mine further query terms from the results.
        result = KeywordSiphoner(max_queries=30).siphon(job_db, ["staffing"])
        assert len(result.terms_used) > 1
        assert result.coverage > 0.5

    def test_bad_seed_still_terminates(self, job_db):
        siphoner = KeywordSiphoner(max_queries=10, stop_after_barren=2)
        result = siphoner.siphon(job_db, seed_terms=["zzzqqq"])
        assert result.queries_issued <= 10
        assert result.coverage == 0.0

    def test_empty_database(self):
        empty = HiddenDatabase([])
        result = KeywordSiphoner().siphon(empty, ["anything"])
        assert result.coverage == 1.0
        assert result.retrieved == []

    def test_validation(self, job_db):
        with pytest.raises(ValueError):
            KeywordSiphoner(max_queries=0)
        with pytest.raises(ValueError):
            KeywordSiphoner().siphon(job_db, [])

    def test_domain_seed_terms_beat_random_seeds(self, job_db):
        """The CAFC workflow rationale: domain-appropriate seeds (cluster
        centroid terms) siphon more efficiently than off-domain seeds."""
        good = KeywordSiphoner(max_queries=10, stop_after_barren=10).siphon(
            job_db, ["job", "career", "salary"]
        )
        bad = KeywordSiphoner(max_queries=10, stop_after_barren=10).siphon(
            job_db, ["hotel", "flight", "album"]
        )
        assert good.coverage >= bad.coverage
