"""Tests for the Porter stemmer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.stemmer import PorterStemmer, stem

# Classic vocabulary from Porter's paper and the CAFC paper's own examples.
KNOWN_PAIRS = [
    # The CAFC paper's Section 2.1 examples.
    ("privacy", "privaci"),
    ("shopping", "shop"),
    ("copyright", "copyright"),
    # Step 1a.
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("caress", "caress"),
    ("cats", "cat"),
    # Step 1b.
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    # Step 1c.
    ("happy", "happi"),
    ("sky", "sky"),
    # Step 2.
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valency", "valenc"),
    ("hesitancy", "hesit"),
    ("digitizer", "digit"),
    ("conformably", "conform"),
    ("radically", "radic"),
    ("differently", "differ"),
    ("vileness", "vile"),
    ("analogously", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formality", "formal"),
    ("sensitivity", "sensit"),
    ("sensibility", "sensibl"),
    # Step 3.
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electricity", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    # Step 4.
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angularity", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    # Step 5.
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
    # Domain-relevant words.
    ("flights", "flight"),
    ("hotels", "hotel"),
    ("booking", "book"),
    ("reservations", "reserv"),
    ("categories", "categori"),
    ("searching", "search"),
]


class TestKnownStems:
    @pytest.mark.parametrize("word,expected", KNOWN_PAIRS)
    def test_known_pair(self, word, expected):
        assert stem(word) == expected


class TestEdgeCases:
    def test_short_words_untouched(self):
        assert stem("a") == "a"
        assert stem("is") == "is"
        assert stem("go") == "go"

    def test_three_letter_words(self):
        assert stem("sky") == "sky"
        assert stem("die") == "die"

    def test_module_wrapper_matches_instance(self):
        stemmer = PorterStemmer()
        for word in ("running", "happiness", "computers"):
            assert stem(word) == stemmer.stem(word)

    def test_stem_all_preserves_order(self):
        stemmer = PorterStemmer()
        words = ["flights", "hotels", "jobs"]
        assert stemmer.stem_all(words) == ["flight", "hotel", "job"]


class TestStemmerProperties:
    @given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"), min_size=1, max_size=20))
    def test_never_raises_and_never_grows(self, word):
        result = stem(word)
        assert isinstance(result, str)
        assert len(result) <= len(word)

    @given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"), min_size=1, max_size=20))
    def test_idempotent_on_most_words(self, word):
        # Porter is not strictly idempotent in theory, but the second
        # application must never raise and must stay within the word.
        once = stem(word)
        twice = stem(once)
        assert len(twice) <= len(once)

    @given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"), min_size=3, max_size=20))
    def test_output_nonempty_for_nonempty_input(self, word):
        assert stem(word)

    @given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"), min_size=1, max_size=20))
    def test_deterministic(self, word):
        assert stem(word) == stem(word)


class TestStemCache:
    """The bounded memo table: correct, bounded, counted, picklable."""

    def test_cached_equals_uncached(self):
        cached = PorterStemmer()
        uncached = PorterStemmer(cache_size=0)
        words = ["flights", "flights", "privacy", "shopping", "shopping"]
        assert cached.stem_all(words) == uncached.stem_all(words)

    def test_hit_and_miss_counters(self):
        stemmer = PorterStemmer()
        stemmer.stem("flights")
        stemmer.stem("flights")
        stemmer.stem("hotels")
        assert stemmer.cache_misses == 2
        assert stemmer.cache_hits == 1

    def test_short_words_bypass_cache(self):
        stemmer = PorterStemmer()
        stemmer.stem("ab")
        stemmer.stem("ab")
        assert stemmer.cache_hits == 0 and stemmer.cache_misses == 0

    def test_cache_stays_bounded(self):
        stemmer = PorterStemmer(cache_size=3)
        for word in ["flights", "hotels", "careers", "albums", "rentals"]:
            stemmer.stem(word)
        assert len(stemmer._cache) <= 3
        # Evicted entries are recomputed correctly, not wrongly served.
        assert stemmer.stem("flights") == "flight"

    def test_zero_size_disables_storage(self):
        stemmer = PorterStemmer(cache_size=0)
        stemmer.stem("flights")
        stemmer.stem("flights")
        assert stemmer._cache == {}
        assert stemmer.cache_hits == 0

    def test_concurrent_eviction_never_raises(self):
        # Regression: thread-executor ingestion shares one analyzer (and
        # thus one memo) across workers; two threads evicting at once
        # popped the same key -> KeyError, surfaced as a spurious
        # IngestError that aborted the whole run.
        import threading

        stemmer = PorterStemmer(cache_size=4)
        words = [f"testing{i}words" for i in range(64)]
        errors = []
        start = threading.Barrier(8)

        def loop():
            try:
                start.wait()
                for _ in range(50):
                    for word in words:
                        stemmer.stem(word)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=loop) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Lock-free eviction can transiently overshoot by at most one
        # entry per racing thread; it must never grow unbounded.
        assert len(stemmer._cache) <= 4 + len(threads)
        assert stemmer.stem("flights") == "flight"

    def test_picklable_with_warm_cache(self):
        import pickle

        stemmer = PorterStemmer()
        stemmer.stem("flights")
        clone = pickle.loads(pickle.dumps(stemmer))
        assert clone.stem("flights") == "flight"
        # The clone carried the warm cache with it.
        assert clone.cache_hits == 1
