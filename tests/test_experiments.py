"""Tests for the experiment harness.

Most experiments run here against a small ExperimentContext built from
the fast fixture corpus; a few session-cached checks exercise the real
benchmark context.
"""

import math

import pytest

from repro.core.config import CAFCConfig
from repro.core.hubs import build_hub_clusters
from repro.experiments import corpus_profile, errors, fig2, fig3, hac_seeding
from repro.experiments import hubstats, table1, table2, weights
from repro.experiments.context import ExperimentContext, get_context
from repro.experiments.reporting import paper_vs_measured, render_table


@pytest.fixture(scope="module")
def small_context(small_web, small_raw_pages, small_pages, small_gold):
    return ExperimentContext(
        web=small_web,
        raw_pages=small_raw_pages,
        pages=small_pages,
        gold_labels=small_gold,
        raw_hub_clusters=build_hub_clusters(small_pages, min_cardinality=1),
        config=CAFCConfig(k=8, min_hub_cardinality=3),
    )


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["col", "x"], [["a", 1.5], ["bb", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert "1.500" in text

    def test_render_table_with_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_paper_vs_measured(self):
        assert paper_vs_measured(0.15, 0.043) == "0.150 / 0.043"
        assert paper_vs_measured(None, 0.5) == "— / 0.500"

    def test_render_bar_chart(self):
        from repro.experiments.reporting import render_bar_chart

        chart = render_bar_chart(["aa", "b"], [2.0, 1.0], width=4)
        lines = chart.splitlines()
        assert lines[0].startswith("aa  ████")
        assert lines[1].startswith("b   ██ ")
        assert "2.000" in lines[0]

    def test_render_bar_chart_validation(self):
        from repro.experiments.reporting import render_bar_chart

        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_render_bar_chart_empty_and_zero(self):
        from repro.experiments.reporting import render_bar_chart

        assert render_bar_chart([], [], title="t").startswith("t")
        chart = render_bar_chart(["a"], [0.0], width=4)
        assert "█" not in chart


class TestContext:
    def test_get_context_cached(self):
        first = get_context(seed=42)
        second = get_context(seed=42)
        assert first is second

    def test_uniform_weights_context_distinct(self):
        default = get_context(seed=42)
        uniform = get_context(seed=42, uniform_weights=True)
        assert default is not uniform

    def test_hub_cluster_pruning(self, small_context):
        all_clusters = small_context.hub_clusters(1)
        pruned = small_context.hub_clusters(5)
        assert len(pruned) <= len(all_clusters)
        assert all(c.cardinality >= 5 for c in pruned)


class TestFig2:
    def test_rows_complete(self, small_context):
        result = fig2.run_fig2(small_context, n_runs=2)
        assert len(result.rows) == 6
        for algorithm in ("cafc-c", "cafc-ch"):
            for mode in ("fc", "pc", "fc+pc"):
                row = result.get(algorithm, mode)
                assert 0.0 <= row.entropy <= math.log(8) + 1e-9
                assert 0.0 <= row.f_measure <= 1.0

    def test_format(self, small_context):
        result = fig2.run_fig2(small_context, n_runs=2)
        text = fig2.format_fig2(result)
        assert "CAFC-CH" in text and "FC+PC" in text

    def test_get_unknown_raises(self, small_context):
        result = fig2.run_fig2(small_context, n_runs=1)
        with pytest.raises(KeyError):
            result.get("cafc-c", "nonsense")


class TestFig3:
    def test_sweep_points(self, small_context):
        result = fig3.run_fig3(small_context, thresholds=range(2, 6), n_cafc_c_runs=2)
        assert len(result.points) == 4
        assert result.cafc_c_entropy >= 0.0

    def test_format(self, small_context):
        result = fig3.run_fig3(small_context, thresholds=range(2, 5), n_cafc_c_runs=1)
        assert "min card" in fig3.format_fig3(result)

    def test_failed_points_flagged(self, small_context):
        result = fig3.run_fig3(
            small_context, thresholds=range(50, 52), n_cafc_c_runs=1
        )
        assert all(point.failed for point in result.points)


class TestTable1:
    def test_buckets_cover_all_pages(self, small_context):
        result = table1.run_table1(small_context)
        assert sum(row.n_pages for row in result.rows) == len(small_context.pages)

    def test_interval_labels(self, small_context):
        result = table1.run_table1(small_context)
        labels = [row.interval_label for row in result.rows]
        assert labels[0] == "< 10"
        assert labels[-1] == ">= 200"

    def test_format(self, small_context):
        assert "form size" in table1.format_table1(table1.run_table1(small_context))


class TestTable2:
    def test_four_cells(self, small_context):
        result = table2.run_table2(small_context, n_kmeans_runs=2)
        assert len(result.cells) == 4
        for cell in result.cells:
            assert 0.0 <= cell.f_measure <= 1.0

    def test_format(self, small_context):
        result = table2.run_table2(small_context, n_kmeans_runs=1)
        assert "kmeans" in table2.format_table2(result)


class TestHacSeeding:
    def test_four_rows(self, small_context):
        result = hac_seeding.run_hac_seeding(small_context, n_random_runs=2)
        assert {row.seeding for row in result.rows} == {
            "random", "kmeans++", "hac", "hubs",
        }

    def test_format(self, small_context):
        result = hac_seeding.run_hac_seeding(small_context, n_random_runs=1)
        assert "seeding" in hac_seeding.format_hac_seeding(result)


class TestHubStats:
    def test_statistics_computed(self, small_context):
        result = hubstats.run_hubstats(small_context)
        assert result.n_form_pages == len(small_context.pages)
        assert 0.0 <= result.raw_homogeneity <= 1.0
        assert result.n_pruned_hub_clusters <= result.n_raw_hub_clusters

    def test_format(self, small_context):
        assert "homogeneous" in hubstats.format_hubstats(
            hubstats.run_hubstats(small_context)
        )


class TestErrors:
    def test_analysis_runs(self, small_context):
        result = errors.run_errors(small_context)
        assert result.n_pages == len(small_context.pages)
        assert result.n_misclustered >= 0

    def test_format(self, small_context):
        assert "total errors" in errors.format_errors(errors.run_errors(small_context))


class TestCorpusProfileExperiment:
    def test_small_corpus_violates_454(self, small_context):
        result = corpus_profile.run_corpus_profile(small_context)
        # The small fixture is intentionally not the paper corpus.
        assert corpus_profile.check_shape(result)

    def test_benchmark_corpus_passes(self):
        context = get_context(seed=42)
        result = corpus_profile.run_corpus_profile(context)
        assert corpus_profile.check_shape(result) == []

    def test_format(self, small_context):
        result = corpus_profile.run_corpus_profile(small_context)
        assert "form pages" in corpus_profile.format_corpus_profile(result)


class TestBenchmarkShapes:
    """The paper's headline shape claims on the real benchmark corpus.

    These are the load-bearing reproduction checks; they use the cached
    context and modest run counts to stay fast.
    """

    def test_table1_shape(self):
        context = get_context(seed=42)
        assert table1.check_shape(table1.run_table1(context)) == []

    def test_hubstats_shape(self):
        context = get_context(seed=42)
        assert hubstats.check_shape(hubstats.run_hubstats(context)) == []

    def test_errors_shape(self):
        context = get_context(seed=42)
        assert errors.check_shape(errors.run_errors(context)) == []

    def test_weights_shape(self):
        context = get_context(seed=42)
        result = weights.run_weights(context, n_cafc_c_runs=3)
        assert weights.check_shape(result) == []
