"""Deep audit of the benchmark corpus structure.

The generator is calibrated code, not frozen data; these tests are the
regression net that keeps future generator edits faithful to the
engineered profile (docs/CORPUS.md maps each property to its mechanism).
"""

from collections import Counter

from repro.html.forms import extract_forms
from repro.html.text_extract import page_text
from repro.webgraph.form_classifier import classify_form
from repro.webgraph.urls import host_of, same_site


class TestSiteStructure:
    def test_single_attribute_split_per_domain(self, benchmark_web):
        per_domain = Counter(
            site.domain_name
            for site in benchmark_web.sites
            if site.is_single_attribute
        )
        assert all(count == 7 for count in per_domain.values())
        assert sum(per_domain.values()) == 56

    def test_mixed_entertainment_pages(self, benchmark_web):
        mixed = [s for s in benchmark_web.sites if s.is_mixed_entertainment]
        assert len(mixed) == benchmark_web.config.mixed_entertainment_pages
        labels = Counter(site.domain_name for site in mixed)
        assert labels["music"] == labels["movie"]

    def test_every_site_has_unique_host(self, benchmark_web):
        hosts = [site.host for site in benchmark_web.sites]
        assert len(set(hosts)) == len(hosts)

    def test_site_pages_live_on_site_host(self, benchmark_web):
        for site in benchmark_web.sites[:50]:
            for page in site.pages:
                assert host_of(page.url) == site.host


class TestGraphIntegrity:
    def test_all_outlinks_resolve(self, benchmark_web):
        graph = benchmark_web.graph
        dangling = 0
        total = 0
        for page in graph.pages():
            for target in page.outlinks:
                total += 1
                if target not in graph:
                    dangling += 1
        assert dangling == 0, f"{dangling}/{total} dangling links"

    def test_hub_pages_are_cross_site(self, benchmark_web):
        graph = benchmark_web.graph
        for hub in graph.pages_of_kind("hub"):
            for target in hub.outlinks:
                assert not same_site(hub.url, target)

    def test_form_pages_link_back_to_root(self, benchmark_web):
        graph = benchmark_web.graph
        for site in benchmark_web.sites[:50]:
            outlinks = graph.outlinks(site.form_page_url)
            assert site.root_url in outlinks


class TestPageContent:
    def test_every_form_page_parses_with_searchable_form(self, benchmark_web):
        misses = 0
        for site in benchmark_web.sites:
            page = benchmark_web.graph.get(site.form_page_url)
            forms = extract_forms(page.html)
            assert forms, site.form_page_url
            if not any(classify_form(form) for form in forms):
                misses += 1
        # The heuristic classifier may miss a handful; never more.
        assert misses <= len(benchmark_web.sites) * 0.05

    def test_login_pages_never_searchable(self, benchmark_web):
        graph = benchmark_web.graph
        for page in graph.pages_of_kind("login"):
            forms = extract_forms(page.html)
            assert forms
            assert not any(classify_form(form) for form in forms)

    def test_form_pages_have_titles(self, benchmark_web):
        for site in benchmark_web.sites[:50]:
            page = benchmark_web.graph.get(site.form_page_url)
            assert "<title>" in page.html

    def test_keyword_pages_carry_hint_outside_form(self, benchmark_web):
        keyword_sites = [
            s for s in benchmark_web.sites if s.is_single_attribute
        ][:10]
        for site in keyword_sites:
            page = benchmark_web.graph.get(site.form_page_url)
            before_form = page.html.split("<form")[0]
            # The domain's keyword hint lives before the FORM tag.
            assert "<b>" in before_form

    def test_pages_contain_visible_text(self, benchmark_web):
        for site in benchmark_web.sites[:30]:
            page = benchmark_web.graph.get(site.form_page_url)
            assert len(page_text(page.html).split()) > 5


class TestBacklinkLayer:
    def test_orphans_are_never_hub_targets(self, benchmark_web):
        graph = benchmark_web.graph
        orphan_roots = set()
        for site in benchmark_web.sites:
            if site.form_page_url in benchmark_web.orphan_urls:
                orphan_roots.add(site.root_url)
        for hub in graph.pages_of_kind("hub"):
            for target in hub.outlinks:
                assert target not in benchmark_web.orphan_urls
                assert target not in orphan_roots

    def test_hub_cardinality_spectrum(self, benchmark_pages):
        from repro.core.hubs import build_hub_clusters

        clusters = build_hub_clusters(benchmark_pages, min_cardinality=1)
        sizes = Counter(cluster.cardinality for cluster in clusters)
        # Small, medium and large (>=14) clusters must all exist.
        assert any(size <= 4 for size in sizes)
        assert any(7 <= size <= 10 for size in sizes)
        assert any(size >= 14 for size in sizes)

    def test_large_clusters_are_travel_only(self, benchmark_pages):
        from repro.core.hubs import build_hub_clusters

        clusters = build_hub_clusters(benchmark_pages, min_cardinality=14)
        for cluster in clusters:
            labels = set(cluster.member_labels(benchmark_pages))
            assert labels <= {"airfare", "hotel"}
