"""Tests for dataset (de)serialization."""

import json

import pytest

from repro.core.form_page import RawFormPage
from repro.datasets import dataset_info, load_dataset, save_dataset


def sample_pages():
    return [
        RawFormPage(
            url="http://a.com/search",
            html="<form><input type=text name=q></form>",
            backlinks=["http://hub.org/"],
            label="job",
        ),
        RawFormPage(
            url="http://b.com/search",
            html="<form><select name=c><option>x</option></select></form>",
            backlinks=[],
            label=None,
        ),
    ]


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "dataset.json"
        pages = sample_pages()
        save_dataset(pages, path)
        loaded = load_dataset(path)
        assert len(loaded) == 2
        assert loaded[0].url == pages[0].url
        assert loaded[0].html == pages[0].html
        assert loaded[0].backlinks == pages[0].backlinks
        assert loaded[0].label == "job"
        assert loaded[1].label is None

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset(sample_pages(), path)
        assert list(tmp_path.iterdir()) == [path]

    def test_small_corpus_round_trip(self, tmp_path, small_raw_pages):
        path = tmp_path / "corpus.json"
        save_dataset(small_raw_pages, path)
        loaded = load_dataset(path)
        assert len(loaded) == len(small_raw_pages)
        assert [p.url for p in loaded] == [p.url for p in small_raw_pages]


class TestValidation:
    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "pages": []}))
        with pytest.raises(ValueError, match="format_version"):
            load_dataset(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="JSON object"):
            load_dataset(path)

    def test_pages_not_list_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 1, "pages": {}}))
        with pytest.raises(ValueError, match="list"):
            load_dataset(path)

    def test_malformed_entry_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"format_version": 1, "pages": [{"url": "http://x.com/"}]})
        )
        with pytest.raises(ValueError, match="entry 0"):
            load_dataset(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_dataset(tmp_path / "nope.json")


class TestInfo:
    def test_info_summary(self, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset(sample_pages(), path)
        info = dataset_info(path)
        assert info["n_pages"] == 2
        assert info["format_version"] == 1
        assert info["labels"] == {"job": 1, "?": 1}


class TestStoreDurability:
    """The atomic writer and the typed format error (PR satellite)."""

    def test_format_error_carries_versions(self, tmp_path):
        from repro.datasets import DatasetFormatError

        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format_version": 99, "pages": []}))
        with pytest.raises(DatasetFormatError) as excinfo:
            load_dataset(path)
        error = excinfo.value
        assert isinstance(error, ValueError)  # old call sites keep working
        assert error.found_version == 99
        assert error.expected_version == 1
        assert "99" in str(error) and "1" in str(error)

    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        save_dataset(sample_pages(), tmp_path / "dataset.json")
        leftovers = [
            p.name for p in tmp_path.iterdir() if p.name != "dataset.json"
        ]
        assert leftovers == []

    def test_atomic_write_json_gzip_roundtrip(self, tmp_path):
        from repro.datasets import atomic_write_json, read_json

        payload = {"pi": 3.141592653589793, "n": 7, "nested": {"a": [1, 2]}}
        path = tmp_path / "blob.json.gz"
        atomic_write_json(payload, path, compress=True)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # really gzip
        assert read_json(path) == payload

    def test_gzip_detected_by_magic_not_suffix(self, tmp_path):
        from repro.datasets import atomic_write_json, read_json

        # Misleading name: gzipped content under a .json suffix still loads.
        path = tmp_path / "blob.json"
        atomic_write_json({"x": 1}, path, compress=True)
        assert read_json(path) == {"x": 1}
