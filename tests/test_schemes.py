"""Weighting-scheme seam tests — the ranking-API redesign contract.

Three pins:

* **Equation-1 parity** — the scheme seam emits bit-identical vectors
  to an independent recomputation through the pre-seam primitives
  (``located_term_frequencies`` + ``CorpusStats`` + ``tf_idf_vector``)
  for every page of the full 454-page benchmark corpus, including under
  pooled parallel ingestion.
* **BM25 range** — every emitted weight lies in (0, 1] per feature
  space (the normalization happens *before* the PC/FC combination).
* **Snapshot versioning** — BM25-built snapshots carry format version 2
  and refuse to load as Equation 1; pre-seam Equation-1 state (no
  ``scheme`` key) still loads bit-identically.
"""

import gzip
import json

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.core.vectorizer import FormPageVectorizer
from repro.datasets.store import DatasetFormatError
from repro.options import OptionError
from repro.parallel.config import ParallelConfig
from repro.parallel.ingest import analyze_form_page
from repro.service.directory import FormDirectory
from repro.service.snapshot import build_snapshot, load_snapshot, snapshot_info
from repro.vsm.corpus import CorpusStats
from repro.vsm.schemes import (
    BM25Scheme,
    Eq1Scheme,
    SpaceStats,
    TFScheme,
    UnknownSchemeError,
    WeightingScheme,
    resolve_scheme,
    scheme_from_dict,
)
from repro.vsm.weights import (
    LocationWeights,
    located_term_frequencies,
    tf_idf_vector,
)

SMALL_CONFIG = CAFCConfig(k=8, min_hub_cardinality=3)


def vector_items(page):
    return dict(page.pc.items()), dict(page.fc.items())


# ---------------------------------------------------------------------
# Resolution & validation (the shared option convention).
# ---------------------------------------------------------------------


class TestResolution:
    def test_default_is_equation_one(self):
        assert isinstance(resolve_scheme(None), Eq1Scheme)
        assert isinstance(resolve_scheme("auto"), Eq1Scheme)
        assert isinstance(resolve_scheme("eq1"), Eq1Scheme)

    def test_off_is_plain_tf(self):
        assert isinstance(resolve_scheme("off"), TFScheme)
        assert isinstance(resolve_scheme("tf"), TFScheme)

    def test_bm25_by_name_and_instance_passthrough(self):
        assert isinstance(resolve_scheme("bm25"), BM25Scheme)
        tuned = BM25Scheme(k1=2.0, b=0.5)
        assert resolve_scheme(tuned) is tuned

    def test_unknown_name_is_option_error_naming_the_field(self):
        with pytest.raises(OptionError) as excinfo:
            resolve_scheme("pagerank")
        assert excinfo.value.field == "scheme"
        assert "scheme" in str(excinfo.value)
        assert "pagerank" in str(excinfo.value)

    def test_non_scheme_object_is_type_error(self):
        with pytest.raises(TypeError):
            resolve_scheme(42)

    def test_config_validates_scheme_field(self):
        with pytest.raises(OptionError, match="scheme"):
            CAFCConfig(scheme="pagerank")
        assert CAFCConfig(scheme="bm25").scheme == "bm25"
        assert CAFCConfig().scheme == "auto"

    def test_config_round_trips_scheme(self):
        config = CAFCConfig(scheme="bm25")
        assert CAFCConfig.from_dict(config.to_dict()).scheme == "bm25"

    def test_bm25_tunable_validation(self):
        with pytest.raises(ValueError):
            BM25Scheme(k1=-0.1)
        with pytest.raises(ValueError):
            BM25Scheme(b=1.5)

    def test_scheme_from_dict_restores_tunables(self):
        restored = scheme_from_dict({"name": "bm25", "k1": 1.6, "b": 0.3})
        assert isinstance(restored, BM25Scheme)
        assert restored.k1 == 1.6
        assert restored.b == 0.3

    def test_scheme_from_dict_unknown_name(self):
        with pytest.raises(UnknownSchemeError) as excinfo:
            scheme_from_dict({"name": "pagerank"})
        assert excinfo.value.name == "pagerank"

    def test_schemes_satisfy_protocol(self):
        for scheme in (Eq1Scheme(), BM25Scheme(), TFScheme()):
            assert isinstance(scheme, WeightingScheme)


# ---------------------------------------------------------------------
# Equation-1 parity over the full benchmark corpus (the acceptance pin).
# ---------------------------------------------------------------------


class TestEq1Parity:
    def test_seam_matches_pre_seam_primitives_on_benchmark(
        self, benchmark_raw_pages, benchmark_pages
    ):
        """The scheme seam is bit-identical to recomputing Equation 1
        through the raw primitives, for all 454 pages and both spaces."""
        from repro.text.analyzer import TextAnalyzer

        weights = LocationWeights()
        analyzer = TextAnalyzer()
        analyses = [
            analyze_form_page(raw, analyzer) for raw in benchmark_raw_pages
        ]
        pc_corpus, fc_corpus = CorpusStats(), CorpusStats()
        for analysis in analyses:
            pc_corpus.add_document(term for term, _ in analysis.pc_terms)
            fc_corpus.add_document(term for term, _ in analysis.fc_terms)
        for analysis, page in zip(analyses, benchmark_pages):
            expected_pc = tf_idf_vector(
                located_term_frequencies(analysis.pc_terms, weights), pc_corpus
            )
            expected_fc = tf_idf_vector(
                located_term_frequencies(analysis.fc_terms, weights), fc_corpus
            )
            assert dict(page.pc.items()) == dict(expected_pc.items()), page.url
            assert dict(page.fc.items()) == dict(expected_fc.items()), page.url

    def test_explicit_eq1_matches_default(self, benchmark_raw_pages):
        explicit = FormPageVectorizer(scheme="eq1").fit_transform(
            benchmark_raw_pages
        )
        default = FormPageVectorizer().fit_transform(benchmark_raw_pages)
        for a, b in zip(default, explicit):
            assert vector_items(a) == vector_items(b), a.url

    def test_clustering_identical_under_explicit_eq1(self, benchmark_raw_pages):
        auto = CAFCPipeline(CAFCConfig()).organize(benchmark_raw_pages)
        eq1 = CAFCPipeline(CAFCConfig(scheme="eq1")).organize(
            benchmark_raw_pages
        )
        assert [
            [page.url for page in cluster.pages] for cluster in auto.clusters
        ] == [
            [page.url for page in cluster.pages] for cluster in eq1.clusters
        ]


# ---------------------------------------------------------------------
# Parallel pooled ingestion parity, per scheme.
# ---------------------------------------------------------------------


class TestParallelParity:
    @pytest.mark.parametrize("scheme", ["eq1", "bm25", "tf"])
    def test_pooled_ingest_bit_identical(self, small_raw_pages, scheme):
        """Scheme stats merge parent-side in page order, so pooled
        map/reduce output is bit-identical to serial — for every scheme."""
        serial = FormPageVectorizer(
            scheme=scheme, parallel=ParallelConfig(workers=1)
        ).fit_transform(small_raw_pages)
        pooled = FormPageVectorizer(
            scheme=scheme,
            parallel=ParallelConfig(workers=4, executor="thread"),
        ).fit_transform(small_raw_pages)
        for a, b in zip(serial, pooled):
            assert a.url == b.url
            assert vector_items(a) == vector_items(b), a.url


# ---------------------------------------------------------------------
# BM25 behaviour.
# ---------------------------------------------------------------------


class TestBM25:
    @pytest.fixture(scope="class")
    def bm25_pages(self, small_raw_pages):
        vectorizer = FormPageVectorizer(scheme="bm25")
        return vectorizer.fit_transform(small_raw_pages), vectorizer

    def test_weights_normalized_per_space(self, bm25_pages):
        """Every weight in (0, 1], and each non-empty vector's maximum is
        exactly 1.0 — per space, before the PC/FC combination."""
        pages, _ = bm25_pages
        assert pages
        for page in pages:
            for vector in (page.pc, page.fc):
                values = [weight for _, weight in vector.items()]
                if not values:
                    continue
                assert all(0.0 < weight <= 1.0 for weight in values), page.url
                assert max(values) == 1.0, page.url

    def test_transform_new_drops_unknown_terms_and_stays_normalized(
        self, bm25_pages, small_raw_pages
    ):
        _, vectorizer = bm25_pages
        page = vectorizer.transform_new(small_raw_pages[0])
        for vector in (page.pc, page.fc):
            for term, weight in vector.items():
                assert 0.0 < weight <= 1.0
                assert vectorizer.pc_corpus.document_frequency(term) > 0 or \
                    vectorizer.fc_corpus.document_frequency(term) > 0

    def test_rarer_terms_score_higher_idf(self):
        scheme = BM25Scheme()
        stats = SpaceStats()
        weights = LocationWeights()
        docs = [["rare", "common"], ["common"], ["common"], ["common"]]
        for terms in docs:
            from repro.html.text_extract import TextLocation

            scheme.observe(
                stats, [(t, TextLocation.BODY) for t in terms], weights
            )
        idf = scheme.prepare(stats)
        assert idf["rare"] > idf["common"] > 0.0

    def test_empty_page_emits_empty_vector(self):
        from collections import Counter

        scheme = BM25Scheme()
        assert not list(scheme.vector(Counter(), SpaceStats()).items())


class TestTFScheme:
    def test_emits_raw_weighted_tf(self):
        from collections import Counter

        weighted = Counter({"jobs": 3.0, "title": 6.0})
        vector = TFScheme().vector(weighted, SpaceStats())
        assert dict(vector.items()) == dict(weighted)


# ---------------------------------------------------------------------
# Snapshot round trips & version gating (satellite 4).
# ---------------------------------------------------------------------


def _build(raw_pages, scheme):
    pipeline = CAFCPipeline(
        CAFCConfig(k=8, min_hub_cardinality=3, scheme=scheme)
    )
    result = pipeline.organize(raw_pages)
    return pipeline, result


class TestSnapshotVersioning:
    @pytest.fixture(scope="class")
    def bm25_snapshot_path(self, small_raw_pages, tmp_path_factory):
        pipeline, result = _build(small_raw_pages, "bm25")
        snapshot = build_snapshot(result, pipeline.vectorizer, pipeline.config)
        path = tmp_path_factory.mktemp("bm25snap") / "directory.json.gz"
        snapshot.save(path)
        return path

    def test_bm25_snapshot_is_version_two(self, bm25_snapshot_path):
        with gzip.open(bm25_snapshot_path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["format_version"] == 2
        assert payload["vectorizer"]["scheme"]["name"] == "bm25"
        info = snapshot_info(bm25_snapshot_path)
        assert info["format_version"] == 2
        assert info["scheme"] == "bm25"

    def test_eq1_snapshot_keeps_version_one(
        self, small_raw_pages, tmp_path_factory
    ):
        """Equation-1 state stays readable by pre-seam (version-1-only)
        tooling: the payload is still written as format version 1."""
        pipeline, result = _build(small_raw_pages, "auto")
        snapshot = build_snapshot(result, pipeline.vectorizer, pipeline.config)
        path = tmp_path_factory.mktemp("eq1snap") / "directory.json"
        snapshot.save(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format_version"] == 1
        assert load_snapshot(path).n_pages == snapshot.n_pages

    def test_mislabelled_version_one_bm25_payload_refused(
        self, bm25_snapshot_path, tmp_path
    ):
        """A version-1 reader would silently re-weight BM25 state as
        Equation 1; the loader refuses the mislabelled payload."""
        with gzip.open(bm25_snapshot_path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["format_version"] = 1
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(DatasetFormatError) as excinfo:
            load_snapshot(doctored)
        assert "bm25" in str(excinfo.value)

    def test_unknown_scheme_in_payload_refused(
        self, bm25_snapshot_path, tmp_path
    ):
        with gzip.open(bm25_snapshot_path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["vectorizer"]["scheme"] = {"name": "pagerank"}
        doctored = tmp_path / "unknown.json"
        doctored.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(DatasetFormatError) as excinfo:
            load_snapshot(doctored)
        assert "pagerank" in str(excinfo.value)

    def test_pre_seam_state_loads_as_equation_one(self, small_raw_pages):
        """Vectorizer state exported before the scheme seam existed (no
        ``scheme`` / length keys) loads as Equation 1 and classifies new
        pages bit-identically to the live fitted vectorizer."""
        live = FormPageVectorizer()
        live.fit_transform(small_raw_pages)
        state = live.export_state()
        for key in ("scheme", "pc_total_weighted_length",
                    "fc_total_weighted_length"):
            state.pop(key)
        rebuilt = FormPageVectorizer.from_state(state)
        assert rebuilt.scheme.name == "eq1"
        for raw in small_raw_pages[:20]:
            assert vector_items(live.transform_new(raw)) == \
                vector_items(rebuilt.transform_new(raw)), raw.url


class TestSnapshotRoundTripPerScheme:
    @pytest.mark.parametrize("scheme", ["bm25", "tf"])
    def test_classify_bit_identical_after_round_trip(
        self, small_raw_pages, tmp_path, scheme
    ):
        pipeline, result = _build(small_raw_pages, scheme)
        snapshot = build_snapshot(result, pipeline.vectorizer, pipeline.config)
        path = tmp_path / "snap.json.gz"
        snapshot.save(path)
        loaded = load_snapshot(path)
        assert loaded.vectorizer().scheme.name == scheme
        live = snapshot.to_organizer()
        cold = loaded.to_organizer()
        for raw in small_raw_pages:
            page = live.vectorizer.transform_new(raw)
            twin = cold.vectorizer.transform_new(raw)
            assert vector_items(page) == vector_items(twin), raw.url
            assert live.classify_vectorized(page) == \
                cold.classify_vectorized(twin), raw.url


# ---------------------------------------------------------------------
# Indexed search parity per scheme (exact top-k stays exact).
# ---------------------------------------------------------------------


class TestIndexedSearchParityPerScheme:
    QUERIES = ["cheap flights", "jazz albums", "job listings", "hotel rooms"]

    @pytest.mark.parametrize("scheme", ["bm25", "tf"])
    def test_indexed_equals_scan(self, small_raw_pages, scheme):
        """Posting-list bounds come from the actual emitted vectors, so
        pruning stays exact under every scheme, not just Equation 1."""
        pipeline, result = _build(small_raw_pages, scheme)
        snapshot = build_snapshot(result, pipeline.vectorizer, pipeline.config)
        with FormDirectory(
            snapshot.to_organizer(index="on"), auto_recluster=False
        ) as indexed, FormDirectory(
            snapshot.to_organizer(index="off"), auto_recluster=False
        ) as scan:
            assert indexed.scheme_name == scheme
            for query in self.QUERIES:
                for n in (1, 5, 25):
                    assert indexed.search(query, n=n) == \
                        scan.search(query, n=n), query
                    assert indexed.search_pages(query, n=n) == \
                        scan.search_pages(query, n=n), query
            stats = indexed.stats()
            assert stats["scheme"] == scheme
