"""Tests for FormPageVectorizer (Equation 1 over a collection)."""

import pytest

from repro.core.form_page import RawFormPage
from repro.core.vectorizer import FormPageVectorizer
from repro.vsm.weights import LocationWeights


def raw(url, html, label=None, backlinks=()):
    return RawFormPage(url=url, html=html, backlinks=list(backlinks), label=label)


JOB_HTML = """
<html><head><title>Acme Jobs</title></head><body>
<p>career employment salary recruiter</p>
<form><b>Job Search</b><select name=cat>
<option>Engineering</option><option>Sales</option></select>
<input type=submit value=Search></form>
</body></html>
"""

HOTEL_HTML = """
<html><head><title>Zenith Hotels</title></head><body>
<p>hotel rooms lodging reservations amenities</p>
<form><b>Hotel Search</b><select name=city>
<option>Boston</option><option>Denver</option></select>
<input type=submit value=Search></form>
</body></html>
"""

BOOK_HTML = """
<html><head><title>Readmore Books</title></head><body>
<p>books authors publishers paperback novels</p>
<form><b>Book Search</b><input type=text name=title>
<input type=submit value=Search></form>
</body></html>
"""


class TestFitTransform:
    def _pages(self):
        vectorizer = FormPageVectorizer()
        pages = vectorizer.fit_transform(
            [
                raw("http://a.com/s", JOB_HTML, "job"),
                raw("http://b.com/s", HOTEL_HTML, "hotel"),
                raw("http://c.com/s", BOOK_HTML, "book"),
            ]
        )
        return vectorizer, pages

    def test_one_output_per_input(self):
        _, pages = self._pages()
        assert len(pages) == 3

    def test_labels_carried(self):
        _, pages = self._pages()
        assert [p.label for p in pages] == ["job", "hotel", "book"]

    def test_fc_contains_form_terms_only(self):
        _, pages = self._pages()
        job = pages[0]
        # "career" appears only outside the form.
        assert "career" not in job.fc
        assert "career" in job.pc

    def test_pc_superset_of_fc_terms(self):
        _, pages = self._pages()
        for page in pages:
            for term in page.fc.terms():
                assert term in page.pc

    def test_domain_terms_have_weight(self):
        _, pages = self._pages()
        job = pages[0]
        assert job.pc["salari"] > 0  # stemmed 'salary', unique to this page

    def test_ubiquitous_terms_dropped(self):
        _, pages = self._pages()
        # 'search' appears in every document (submit caption) -> IDF 0.
        for page in pages:
            assert "search" not in page.fc

    def test_term_counts_tracked(self):
        _, pages = self._pages()
        for page in pages:
            assert page.page_term_count >= page.form_term_count > 0

    def test_attribute_counts(self):
        _, pages = self._pages()
        assert pages[0].attribute_count == 1   # one select
        assert pages[2].attribute_count == 1   # one text input
        assert pages[2].is_single_attribute

    def test_backlinks_capped(self):
        vectorizer = FormPageVectorizer(max_backlinks=2)
        page = vectorizer.fit_transform(
            [raw("http://a.com/s", JOB_HTML, backlinks=["u1", "u2", "u3"])]
        )[0]
        assert len(page.backlinks) == 2


class TestTransformNew:
    def test_requires_fit(self):
        vectorizer = FormPageVectorizer()
        with pytest.raises(RuntimeError):
            vectorizer.transform_new(raw("http://x.com/", JOB_HTML))

    def test_new_page_scored_against_frozen_corpus(self):
        vectorizer = FormPageVectorizer()
        vectorizer.fit_transform(
            [
                raw("http://a.com/s", JOB_HTML),
                raw("http://b.com/s", HOTEL_HTML),
                raw("http://c.com/s", BOOK_HTML),
            ]
        )
        new_page = vectorizer.transform_new(raw("http://d.com/s", JOB_HTML))
        assert "career" in new_page.pc

    def test_unseen_terms_dropped(self):
        vectorizer = FormPageVectorizer()
        vectorizer.fit_transform([raw("http://a.com/s", JOB_HTML),
                                  raw("http://b.com/s", HOTEL_HTML)])
        alien = "<html><body><p>xylophone zebra</p><form><input type=text name=q></form></body></html>"
        new_page = vectorizer.transform_new(raw("http://d.com/s", alien))
        assert "xylophon" not in new_page.pc


class TestLocationWeighting:
    def test_title_terms_boosted(self):
        html_title = "<html><head><title>hotel</title></head><body><p>unrelated</p><form><input type=text name=q></form></body></html>"
        html_body = "<html><body><p>hotel unrelated</p><form><input type=text name=q></form></body></html>"
        other = "<html><body><p>filler words here</p><form><input type=text name=q></form></body></html>"
        vectorizer = FormPageVectorizer(location_weights=LocationWeights(title=3))
        pages = vectorizer.fit_transform(
            [raw("http://a.com/", html_title), raw("http://b.com/", html_body),
             raw("http://c.com/", other)]
        )
        assert pages[0].pc["hotel"] == pytest.approx(3 * pages[1].pc["hotel"])

    def test_option_terms_discounted(self):
        html_option = "<html><body><form><select name=g><option>jazz</option></select></form><p>pad</p></body></html>"
        html_label = "<html><body><form>jazz <input type=text name=g></form><p>pad</p></body></html>"
        other = "<html><body><p>other page entirely</p><form><input type=text name=q></form></body></html>"
        weights = LocationWeights(option=0.5)
        vectorizer = FormPageVectorizer(location_weights=weights)
        pages = vectorizer.fit_transform(
            [raw("http://a.com/", html_option), raw("http://b.com/", html_label),
             raw("http://c.com/", other)]
        )
        assert pages[0].fc["jazz"] == pytest.approx(0.5 * pages[1].fc["jazz"])

    def test_uniform_weights_equalize(self):
        vectorizer = FormPageVectorizer(location_weights=LocationWeights.uniform())
        html_title = "<html><head><title>hotel</title></head><body><form><input type=text name=q></form></body></html>"
        html_body = "<html><body>hotel<form><input type=text name=q></form></body></html>"
        other = "<html><body><p>different</p><form><input type=text name=q></form></body></html>"
        pages = vectorizer.fit_transform(
            [raw("http://a.com/", html_title), raw("http://b.com/", html_body),
             raw("http://c.com/", other)]
        )
        assert pages[0].pc["hotel"] == pytest.approx(pages[1].pc["hotel"])
