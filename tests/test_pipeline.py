"""Tests for the high-level CAFC pipeline."""

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline


class TestOrganize:
    def test_end_to_end_on_small_corpus(self, small_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        result = pipeline.organize(small_raw_pages)
        assert result.n_pages == len(small_raw_pages)
        assert 1 <= result.n_clusters <= 8

    def test_hub_seeding_used_when_possible(self, small_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        result = pipeline.organize(small_raw_pages)
        assert result.used_hub_seeding
        assert result.algorithm == "cafc-ch"
        assert result.n_hub_clusters > 0
        assert len(result.seed_hub_urls) == 8

    def test_fallback_to_cafc_c(self, small_raw_pages):
        # An absurd cardinality threshold leaves no hub clusters.
        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=1000))
        result = pipeline.organize(small_raw_pages)
        assert not result.used_hub_seeding
        assert "fallback" in result.algorithm

    def test_explicit_cafc_c(self, small_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig(k=8))
        result = pipeline.organize(small_raw_pages, algorithm="cafc-c")
        assert result.algorithm == "cafc-c"
        assert not result.used_hub_seeding

    def test_unknown_algorithm_rejected(self, small_raw_pages):
        pipeline = CAFCPipeline()
        with pytest.raises(ValueError):
            pipeline.organize(small_raw_pages, algorithm="dbscan")

    def test_clusters_sorted_by_size(self, small_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        result = pipeline.organize(small_raw_pages)
        sizes = [cluster.size for cluster in result.clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_top_terms_describe_clusters(self, small_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        result = pipeline.organize(small_raw_pages)
        for cluster in result.clusters:
            assert cluster.top_terms
            assert all(isinstance(term, str) for term in cluster.top_terms)

    def test_cluster_urls(self, small_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        result = pipeline.organize(small_raw_pages)
        all_urls = [url for cluster in result.clusters for url in cluster.urls]
        assert sorted(all_urls) == sorted(p.url for p in small_raw_pages)


class TestClassify:
    def test_new_page_assigned_to_plausible_cluster(self, small_raw_pages, small_web):
        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        result = pipeline.organize(small_raw_pages)

        # Re-classify an existing job page (held out copy): its cluster
        # should be dominated by its own domain.
        sample = next(p for p in small_raw_pages if p.label == "job")
        cluster_index = pipeline.classify(sample, result)
        cluster = result.clusters[cluster_index]
        labels = [p.label for p in cluster.pages]
        assert labels.count("job") >= len(labels) / 2

    def test_classify_requires_clusters(self, small_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        result = pipeline.organize(small_raw_pages)
        result.clusters = []
        with pytest.raises(ValueError):
            pipeline.classify(small_raw_pages[0], result)


class TestHacAlgorithm:
    def test_hac_organize(self, small_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig(k=8))
        result = pipeline.organize(small_raw_pages, algorithm="hac")
        assert result.algorithm == "hac"
        assert result.n_pages == len(small_raw_pages)
        assert result.n_clusters <= 8
        assert not result.used_hub_seeding

    def test_hac_clusters_have_terms(self, small_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig(k=8))
        result = pipeline.organize(small_raw_pages, algorithm="hac")
        assert all(cluster.top_terms for cluster in result.clusters)

    def test_hac_with_fewer_pages_than_k(self, small_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        result = pipeline.organize(small_raw_pages[:4], algorithm="hac")
        assert result.n_clusters <= 4
