"""repro.index — posting lists, pruned retrieval, and parity pins.

The contract under test is absolute: indexed top-k (clusters and pages,
classify and search) must be **bit-identical** to the full-scan
reference — same ids, same float scores, same order — including after
arbitrary interleavings of add / remove / recluster.  The randomized
property tests drive an ``index="on"`` directory and an ``index="off"``
directory through identical mutation schedules and diff every answer.
"""

import json
import random
import urllib.request

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.index import (
    INDEX_AUTO_MIN_CLUSTERS,
    SpaceIndex,
    combined_query_channel,
    top_k_exact,
)
from repro.index.retrieval import Channel, RetrievalStats
from repro.service.directory import FormDirectory
from repro.service.http import serve_directory
from repro.service.snapshot import build_snapshot, snapshot_info
from repro.vsm.vector import SparseVector, cosine_similarity

SMALL_CONFIG = CAFCConfig(k=8, min_hub_cardinality=3)


@pytest.fixture(scope="module")
def small_snapshot(small_raw_pages):
    pipeline = CAFCPipeline(SMALL_CONFIG)
    result = pipeline.organize(small_raw_pages)
    return build_snapshot(result, pipeline.vectorizer, SMALL_CONFIG)


def make_directory(snapshot, **kwargs):
    kwargs.setdefault("auto_recluster", False)
    return FormDirectory.from_snapshot(snapshot, **kwargs)


def random_vector(rng, vocabulary, max_terms=12):
    n_terms = rng.randint(0, max_terms)
    return SparseVector({
        term: rng.uniform(0.1, 5.0)
        for term in rng.sample(vocabulary, n_terms)
    })


# ---------------------------------------------------------------------
# SpaceIndex maintenance.
# ---------------------------------------------------------------------


class TestSpaceIndex:
    def test_add_and_lookup(self):
        index = SpaceIndex()
        vector = SparseVector({"a": 3.0, "b": 4.0})  # norm 5
        index.add_row(7, vector)
        assert len(index) == 1
        assert 7 in index
        assert index.vector(7) is vector
        assert index.norm(7) == 5.0
        assert index.postings("a") == [(7, 3.0 * (1.0 / 5.0))]
        assert index.max_prenormed("b") == 4.0 * (1.0 / 5.0)
        assert index.max_prenormed("zzz") == 0.0
        assert index.n_postings == 2
        assert index.n_terms == 2

    def test_replace_row(self):
        index = SpaceIndex()
        index.add_row(1, SparseVector({"a": 1.0, "b": 1.0}))
        index.add_row(1, SparseVector({"b": 2.0}))
        assert index.postings("a") == []
        assert index.postings("b") == [(1, 1.0)]
        assert index.n_postings == 1

    def test_remove_recomputes_maxima(self):
        index = SpaceIndex()
        index.add_row(1, SparseVector({"a": 1.0}))          # prenormed 1.0
        index.add_row(2, SparseVector({"a": 3.0, "b": 4.0}))  # a: 0.6
        assert index.max_prenormed("a") == 1.0
        assert index.remove_row(1)
        assert index.max_prenormed("a") == 3.0 * (1.0 / 5.0)
        assert not index.remove_row(1)
        assert index.remove_row(2)
        assert index.n_postings == 0
        assert index.n_terms == 0

    def test_zero_norm_row_posts_nothing(self):
        index = SpaceIndex()
        index.add_row(3, SparseVector())
        assert 3 in index
        assert index.n_postings == 0
        assert index.remove_row(3)

    def test_storage_only_mode(self):
        index = SpaceIndex(build_postings=False)
        index.add_row(1, SparseVector({"a": 2.0}))
        assert 1 in index
        assert index.n_postings == 0
        assert index.postings("a") == []
        assert index.remove_row(1)
        assert len(index) == 0


# ---------------------------------------------------------------------
# top_k_exact against brute force, randomized.
# ---------------------------------------------------------------------


class TestTopKExact:
    def brute_force(self, query, index, k):
        scored = []
        for row, vector in index.row_items():
            score = cosine_similarity(query, vector)
            if score > 0.0:
                scored.append((row, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]

    def test_matches_brute_force_with_churn(self):
        rng = random.Random(20260806)
        vocabulary = [f"t{i}" for i in range(60)]
        index = SpaceIndex()
        live = set()
        for row in range(150):
            index.add_row(row, random_vector(rng, vocabulary))
            live.add(row)
        for row in rng.sample(sorted(live), 40):  # interleave removals
            index.remove_row(row)
            live.remove(row)
        for row in range(150, 180):
            index.add_row(row, random_vector(rng, vocabulary))

        for trial in range(30):
            query = random_vector(rng, vocabulary, max_terms=8)
            if not query:
                continue
            for k in (1, 3, 10, 50):
                stats = RetrievalStats()
                got = top_k_exact(
                    [combined_query_channel(index, query)], k,
                    lambda row: cosine_similarity(query, index.vector(row)),
                    stats=stats,
                )
                want = self.brute_force(query, index, k)
                assert got == want, (trial, k)
                assert stats.rows_scored <= stats.rows_total

    def test_empty_cases(self):
        index = SpaceIndex()
        query = SparseVector({"a": 1.0})
        assert top_k_exact(
            [combined_query_channel(index, query)], 3, lambda row: 1.0
        ) == []
        index.add_row(0, SparseVector({"b": 1.0}))  # disjoint vocabulary
        assert top_k_exact(
            [combined_query_channel(index, query)], 3,
            lambda row: cosine_similarity(query, index.vector(row)),
        ) == []
        assert top_k_exact(
            [combined_query_channel(index, query)], 0, lambda row: 1.0
        ) == []

    def test_tie_break_via_key(self):
        index = SpaceIndex()
        vector = SparseVector({"a": 1.0})
        for row in (0, 1, 2):
            index.add_row(row, vector)
        names = {0: "zebra", 1: "apple", 2: "mango"}
        query = SparseVector({"a": 2.0})
        got = top_k_exact(
            [combined_query_channel(index, query)], 2,
            lambda row: cosine_similarity(query, index.vector(row)),
            tie_key=names.__getitem__,
        )
        assert [row for row, _ in got] == [1, 2]

    def test_multi_channel_bounds(self):
        # Two channels (the classify shape): brute-force an Equation-3
        # style half/half combination and require exact agreement.
        rng = random.Random(99)
        vocabulary = [f"t{i}" for i in range(30)]
        first, second = SpaceIndex(), SpaceIndex()
        for row in range(80):
            first.add_row(row, random_vector(rng, vocabulary))
            second.add_row(row, random_vector(rng, vocabulary))

        def exact(query_a, query_b, row):
            return 0.5 * cosine_similarity(query_a, first.vector(row)) \
                + 0.5 * cosine_similarity(query_b, second.vector(row))

        for _ in range(15):
            query_a = random_vector(rng, vocabulary, max_terms=6)
            query_b = random_vector(rng, vocabulary, max_terms=6)
            channels = []
            if query_a.norm() > 0.0:
                scale = 0.5 / query_a.norm()
                channels.append(Channel(
                    first, {t: w * scale for t, w in query_a.items()}
                ))
            if query_b.norm() > 0.0:
                scale = 0.5 / query_b.norm()
                channels.append(Channel(
                    second, {t: w * scale for t, w in query_b.items()}
                ))
            if not channels:
                continue
            got = top_k_exact(
                channels, 5, lambda row: exact(query_a, query_b, row)
            )
            scored = [
                (row, exact(query_a, query_b, row)) for row in range(80)
            ]
            scored = [(r, s) for r, s in scored if s > 0.0]
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            assert got == scored[:5]


# ---------------------------------------------------------------------
# Classify parity: indexed candidate generation vs full centroid scan.
# ---------------------------------------------------------------------


class TestClassifyParity:
    def test_indexed_classify_bit_identical(self, small_snapshot, small_pages):
        organizer_on = small_snapshot.to_organizer(index="on")
        organizer_off = small_snapshot.to_organizer(index="off")
        assert organizer_on.centroid_index is not None
        assert organizer_off.centroid_index is None
        for page in small_pages:
            got = organizer_on.classify_vectorized(page)
            want = organizer_off.classify_vectorized(page)
            assert got == want, page.url  # same cluster AND same float

    def test_parity_survives_mutations(self, small_snapshot, small_raw_pages):
        organizer_on = small_snapshot.to_organizer(index="on")
        organizer_off = small_snapshot.to_organizer(index="off")
        churn = small_raw_pages[:10]
        for raw in churn[:5]:
            assert organizer_on.remove(raw.url) == organizer_off.remove(raw.url)
        for raw in churn[:5]:
            assert organizer_on.add(raw) == organizer_off.add(raw)
        organizer_on.recluster()
        organizer_off.recluster()
        probes = [
            organizer_on.vectorizer.transform_new(raw) for raw in churn
        ]
        for page in probes:
            assert organizer_on.classify_vectorized(page) == \
                organizer_off.classify_vectorized(page), page.url

    def test_auto_threshold(self, small_snapshot):
        organizer = small_snapshot.to_organizer()  # auto, k=8 clusters
        assert len(organizer.clusters) < INDEX_AUTO_MIN_CLUSTERS
        assert organizer.centroid_index is None

    def test_candidate_pruning_counts_fewer_comparisons(
        self, small_snapshot, small_pages
    ):
        organizer = small_snapshot.to_organizer(index="on")
        stats = organizer.centroid_index.stats
        for page in small_pages[:20]:
            organizer.classify_vectorized(page)
        assert stats.rows_total == 20 * len(organizer.clusters)
        assert 0 < stats.rows_scored <= stats.rows_total


# ---------------------------------------------------------------------
# Directory parity: randomized interleaved mutations, search both scopes.
# ---------------------------------------------------------------------


QUERIES = (
    "flight airfare ticket",
    "book novel author",
    "job career salary engineer",
    "movie theater actor",
    "hotel room reservation",
    "car rental pickup",
    "music album",
    "zzz-nothing-matches-this",
)


class TestDirectoryParity:
    def assert_search_parity(self, indexed, scan):
        for query in QUERIES:
            for n in (1, 3, 5, 20):
                got = indexed.search(query, n=n)
                want = scan.search(query, n=n)
                assert got == want, (query, n)
                got_pages = indexed.search_pages(query, n=n)
                want_pages = scan.search_pages(query, n=n)
                assert got_pages == want_pages, (query, n)

    def test_randomized_interleaved_mutations(
        self, small_snapshot, small_raw_pages
    ):
        rng = random.Random(1234)
        with make_directory(small_snapshot, index="on") as indexed, \
                make_directory(small_snapshot, index="off") as scan:
            assert indexed.stats()["index"]["active_clusters"]
            assert not scan.stats()["index"]["active_clusters"]
            self.assert_search_parity(indexed, scan)

            managed = {raw.url for raw in small_raw_pages
                       if raw.url in indexed.organizer}
            pool = list(small_raw_pages)
            for round_number in range(4):
                for _ in range(6):
                    action = rng.random()
                    if action < 0.45:
                        raw = rng.choice(pool)
                        assert indexed.add(raw) == scan.add(raw)
                        managed.add(raw.url)
                    elif action < 0.8 and managed:
                        url = rng.choice(sorted(managed))
                        assert indexed.remove(url) == scan.remove(url)
                        managed.discard(url)
                    else:
                        indexed.recluster()
                        scan.recluster()
                self.assert_search_parity(indexed, scan)
            assert indexed.generation == scan.generation
            assert indexed.generation > 0

    def test_page_hits_shape(self, small_snapshot):
        with make_directory(small_snapshot, index="on") as directory:
            hits = directory.search_pages("flight airfare", n=5)
            assert hits
            previous = None
            for hit in hits:
                assert set(hit) == {
                    "url", "cluster", "score", "matched_terms"
                }
                assert hit["score"] > 0.0
                assert hit["cluster"] == \
                    directory.organizer.cluster_of(hit["url"])
                if previous is not None:
                    assert (-previous["score"], previous["url"]) <= \
                        (-hit["score"], hit["url"])
                previous = hit

    def test_off_mode_still_caches_combined_centroids(self, small_snapshot):
        with make_directory(small_snapshot, index="off") as directory:
            first = directory._index.cluster_combined(0)
            assert directory.search("flight airfare", n=3)
            assert directory._index.cluster_combined(0) is first
            assert directory._index.n_cluster_postings == 0

    def test_generation_stamps_follow_mutations(
        self, small_snapshot, small_raw_pages
    ):
        with make_directory(small_snapshot, index="on") as directory:
            assert directory._index.generation == directory.generation == 0
            directory.add(small_raw_pages[0])
            assert directory._index.generation == directory.generation == 1
            directory.remove(small_raw_pages[0].url)
            assert directory._index.generation == directory.generation == 2
            directory.recluster()
            assert directory._index.generation == directory.generation == 3


# ---------------------------------------------------------------------
# Full benchmark corpus parity (the acceptance pin).
# ---------------------------------------------------------------------


class TestBenchmarkCorpusParity:
    def test_full_corpus_bit_identical(self, benchmark_raw_pages):
        pipeline = CAFCPipeline(CAFCConfig())
        result = pipeline.organize(benchmark_raw_pages)
        snapshot = build_snapshot(result, pipeline.vectorizer, pipeline.config)
        organizer_on = snapshot.to_organizer(index="on")
        organizer_off = snapshot.to_organizer(index="off")
        for raw in benchmark_raw_pages:
            page = organizer_on.vectorizer.transform_new(raw)
            assert organizer_on.classify_vectorized(page) == \
                organizer_off.classify_vectorized(page), raw.url
        with FormDirectory(organizer_on, auto_recluster=False) as indexed, \
                FormDirectory(organizer_off, auto_recluster=False) as scan:
            for query in QUERIES:
                for n in (1, 5, 25):
                    assert indexed.search(query, n=n) == \
                        scan.search(query, n=n), query
                    assert indexed.search_pages(query, n=n) == \
                        scan.search_pages(query, n=n), query


# ---------------------------------------------------------------------
# HTTP scope + metrics + snapshot surfaces.
# ---------------------------------------------------------------------


class TestServiceSurfaces:
    def fetch(self, base, path):
        with urllib.request.urlopen(base + path, timeout=10) as response:
            return json.loads(response.read().decode("utf-8"))

    def test_http_search_scopes(self, small_snapshot):
        directory = make_directory(small_snapshot, index="on")
        server = serve_directory(directory)
        server.serve_in_thread()
        try:
            base = server.base_url
            clusters = self.fetch(base, "/search?q=flight+airfare&n=3")
            assert clusters["ok"] and clusters["scope"] == "clusters"
            assert clusters["hits"] == directory.search("flight airfare", n=3)
            pages = self.fetch(
                base, "/search?q=flight+airfare&n=3&scope=pages"
            )
            assert pages["ok"] and pages["scope"] == "pages"
            assert pages["hits"] == \
                directory.search_pages("flight airfare", n=3)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.fetch(base, "/search?q=x&scope=bogus")
            assert excinfo.value.code == 400
        finally:
            server.shut_down()

    def test_search_and_index_metrics_exposed(self, small_snapshot):
        with make_directory(small_snapshot, index="on") as directory:
            directory.search("flight airfare", n=3)
            directory.search_pages("flight airfare", n=3)
            text = directory.metrics.render()
            assert 'repro_search_requests_total{path="indexed",' \
                'scheme="eq1",scope="clusters"} 1' in text
            assert 'repro_search_seconds_count{scheme="eq1",' \
                'scope="pages"} 1' in text
            assert 'repro_index_postings{space="clusters"}' in text
            assert 'repro_index_terms{space="pages"}' in text
            assert "repro_index_pruning_ratio" in text
            assert "repro_index_rows_scored_total" in text

    def test_scan_path_labels(self, small_snapshot):
        with make_directory(small_snapshot, index="off") as directory:
            directory.search("flight airfare", n=3)
            text = directory.metrics.render()
            assert 'repro_search_requests_total{path="scan",' \
                'scheme="eq1",scope="clusters"} 1' in text

    def test_config_round_trip_and_snapshot_info(
        self, small_snapshot, tmp_path
    ):
        config = CAFCConfig(index="on")
        assert CAFCConfig.from_dict(config.to_dict()).index == "on"
        with pytest.raises(ValueError):
            CAFCConfig(index="sometimes")
        path = tmp_path / "snap.json.gz"
        small_snapshot.save(path)
        info = snapshot_info(path)
        assert info["index"] == "auto"
        assert info["n_pages"] == small_snapshot.n_pages