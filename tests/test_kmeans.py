"""Tests for the generic k-means engine."""

import math
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.kmeans import kmeans

# A 1-D playground: points are floats, centroids are floats, similarity is
# negative distance, centroid is the mean.


def neg_distance(point: float, centroid: float) -> float:
    return -abs(point - centroid)


def mean(points: List[float]) -> float:
    return sum(points) / len(points)


class TestConvergence:
    def test_two_obvious_clusters(self):
        points = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2]
        result = kmeans(points, [0.0, 10.0], neg_distance, mean, stop_fraction=0.0)
        clusters = sorted(
            sorted(members) for members in result.clustering.clusters
        )
        assert clusters == [[0, 1, 2], [3, 4, 5]]
        assert result.converged

    def test_centroids_are_means(self):
        points = [0.0, 2.0, 10.0, 12.0]
        result = kmeans(points, [0.0, 12.0], neg_distance, mean, stop_fraction=0.0)
        assert sorted(result.centroids) == pytest.approx([1.0, 11.0])

    def test_all_points_assigned_exactly_once(self):
        points = [float(i) for i in range(20)]
        result = kmeans(points, [2.0, 9.0, 16.0], neg_distance, mean)
        labels = result.clustering.labels(len(points))
        assert all(label >= 0 for label in labels)
        assert result.clustering.n_points == len(points)

    def test_k_clusters_returned(self):
        points = [1.0, 2.0, 3.0]
        result = kmeans(points, [1.0, 3.0], neg_distance, mean)
        assert result.clustering.n_clusters == 2

    def test_single_cluster(self):
        points = [1.0, 5.0, 9.0]
        result = kmeans(points, [0.0], neg_distance, mean, stop_fraction=0.0)
        assert result.clustering.clusters[0] == [0, 1, 2]


class TestStoppingCriterion:
    def test_stop_fraction_limits_iterations(self):
        # With a very lenient stop fraction the first recompute already
        # qualifies.
        points = [float(i) for i in range(10)]
        result = kmeans(points, [0.0, 9.0], neg_distance, mean, stop_fraction=0.99)
        assert result.iterations == 1
        assert result.converged

    def test_max_iterations_cap(self):
        points = [0.0, 1.0]
        result = kmeans(
            points, [0.4, 0.6], neg_distance, mean,
            stop_fraction=0.0, max_iterations=1,
        )
        assert result.iterations <= 1

    def test_exact_convergence_with_zero_fraction(self):
        points = [0.0, 0.1, 5.0, 5.1]
        result = kmeans(points, [0.0, 5.0], neg_distance, mean, stop_fraction=0.0)
        assert result.converged


class TestEdgeCases:
    def test_no_centroids_raises(self):
        with pytest.raises(ValueError):
            kmeans([1.0], [], neg_distance, mean)

    def test_empty_points(self):
        result = kmeans([], [1.0, 2.0], neg_distance, mean)
        assert result.clustering.n_points == 0
        assert result.converged

    def test_emptied_cluster_keeps_centroid(self):
        # Both points sit at 0; the far centroid empties but survives.
        points = [0.0, 0.0]
        result = kmeans(points, [0.0, 100.0], neg_distance, mean, stop_fraction=0.0)
        assert len(result.centroids) == 2
        assert result.clustering.compact().n_clusters == 1

    def test_duplicate_points(self):
        points = [1.0] * 6
        result = kmeans(points, [1.0, 2.0], neg_distance, mean, stop_fraction=0.0)
        assert result.clustering.n_points == 6

    def test_deterministic(self):
        points = [0.0, 1.0, 2.0, 8.0, 9.0, 10.0]
        first = kmeans(points, [1.0, 9.0], neg_distance, mean, stop_fraction=0.0)
        second = kmeans(points, [1.0, 9.0], neg_distance, mean, stop_fraction=0.0)
        assert first.clustering.clusters == second.clustering.clusters


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=30),
        st.integers(min_value=1, max_value=3),
    )
    def test_partition_invariant(self, points, k):
        seeds = points[:k]
        result = kmeans(points, seeds, neg_distance, mean, max_iterations=10)
        # Every point in exactly one cluster.
        seen = sorted(
            index for members in result.clustering.clusters for index in members
        )
        assert seen == list(range(len(points)))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100), min_size=4, max_size=30
        )
    )
    def test_iterations_bounded(self, points):
        result = kmeans(points, points[:2], neg_distance, mean, max_iterations=7)
        assert result.iterations <= 7
