"""Tests for hub-cluster construction (repro.core.hubs)."""

import pytest

from repro.core.form_page import FormPage
from repro.core.hubs import (
    build_hub_clusters,
    group_by_hub,
    homogeneity_rate,
)
from repro.vsm.vector import SparseVector


def page(url, backlinks, label="job", pc=None, fc=None):
    return FormPage(
        url=url,
        pc=SparseVector(pc or {"t": 1.0}),
        fc=SparseVector(fc or {"f": 1.0}),
        backlinks=frozenset(backlinks),
        label=label,
    )


HUB_A = "http://hub-a.org/list.html"
HUB_B = "http://hub-b.org/list.html"


class TestGroupByHub:
    def test_co_citation_grouping(self):
        pages = [
            page("http://s1.com/f", [HUB_A]),
            page("http://s2.com/f", [HUB_A, HUB_B]),
            page("http://s3.com/f", [HUB_B]),
        ]
        grouped = group_by_hub(pages)
        assert grouped[HUB_A] == frozenset({0, 1})
        assert grouped[HUB_B] == frozenset({1, 2})

    def test_intra_site_backlinks_dropped(self):
        pages = [page("http://s1.com/f", ["http://www.s1.com/index.html", HUB_A])]
        grouped = group_by_hub(pages)
        assert list(grouped) == [HUB_A]

    def test_intra_site_kept_when_disabled(self):
        pages = [page("http://s1.com/f", ["http://s1.com/index.html"])]
        grouped = group_by_hub(pages, drop_intra_site=False)
        assert len(grouped) == 1

    def test_no_backlinks(self):
        assert group_by_hub([page("http://s1.com/f", [])]) == {}


class TestBuildHubClusters:
    def _pages(self):
        return [
            page("http://s1.com/f", [HUB_A], label="job"),
            page("http://s2.com/f", [HUB_A], label="job"),
            page("http://s3.com/f", [HUB_A, HUB_B], label="job"),
            page("http://s4.com/f", [HUB_B], label="hotel"),
        ]

    def test_clusters_built(self):
        clusters = build_hub_clusters(self._pages())
        assert {c.hub_url for c in clusters} == {HUB_A, HUB_B}

    def test_min_cardinality_prunes(self):
        clusters = build_hub_clusters(self._pages(), min_cardinality=3)
        assert [c.hub_url for c in clusters] == [HUB_A]

    def test_sorted_largest_first(self):
        clusters = build_hub_clusters(self._pages())
        assert clusters[0].cardinality >= clusters[-1].cardinality

    def test_centroid_is_member_mean(self):
        pages = [
            page("http://s1.com/f", [HUB_A], pc={"x": 2.0}),
            page("http://s2.com/f", [HUB_A], pc={"x": 4.0}),
        ]
        cluster = build_hub_clusters(pages)[0]
        assert cluster.centroid.pc["x"] == pytest.approx(3.0)

    def test_deduplication_of_identical_member_sets(self):
        hub_c = "http://hub-c.org/mirror.html"
        pages = [
            page("http://s1.com/f", [HUB_A, hub_c]),
            page("http://s2.com/f", [HUB_A, hub_c]),
        ]
        clusters = build_hub_clusters(pages)
        assert len(clusters) == 1  # same co-cited set -> one cluster

    def test_deduplication_disabled(self):
        hub_c = "http://hub-c.org/mirror.html"
        pages = [
            page("http://s1.com/f", [HUB_A, hub_c]),
            page("http://s2.com/f", [HUB_A, hub_c]),
        ]
        clusters = build_hub_clusters(pages, deduplicate=False)
        assert len(clusters) == 2

    def test_deterministic_output(self):
        first = build_hub_clusters(self._pages())
        second = build_hub_clusters(self._pages())
        assert [c.hub_url for c in first] == [c.hub_url for c in second]
        assert [c.members for c in first] == [c.members for c in second]

    def test_members_sorted(self):
        for cluster in build_hub_clusters(self._pages()):
            assert cluster.members == sorted(cluster.members)


class TestHomogeneity:
    def test_homogeneous_cluster(self):
        pages = self_pages = [
            page("http://s1.com/f", [HUB_A], label="job"),
            page("http://s2.com/f", [HUB_A], label="job"),
        ]
        clusters = build_hub_clusters(pages)
        assert clusters[0].is_homogeneous(pages)
        assert homogeneity_rate(clusters, pages) == 1.0

    def test_heterogeneous_cluster(self):
        pages = [
            page("http://s1.com/f", [HUB_A], label="job"),
            page("http://s2.com/f", [HUB_A], label="hotel"),
        ]
        clusters = build_hub_clusters(pages)
        assert not clusters[0].is_homogeneous(pages)
        assert homogeneity_rate(clusters, pages) == 0.0

    def test_empty_cluster_list(self):
        assert homogeneity_rate([], []) == 0.0

    def test_member_labels(self):
        pages = [
            page("http://s1.com/f", [HUB_A], label="job"),
            page("http://s2.com/f", [HUB_A], label="hotel"),
        ]
        clusters = build_hub_clusters(pages)
        assert sorted(clusters[0].member_labels(pages)) == ["hotel", "job"]
