"""Tests for corpus statistics and Equation-1 weighting."""

import math
from collections import Counter

import pytest

from repro.html.text_extract import TextLocation
from repro.vsm.corpus import CorpusStats
from repro.vsm.weights import (
    LocationWeights,
    located_term_frequencies,
    tf_idf_vector,
)


class TestCorpusStats:
    def test_counts(self):
        corpus = CorpusStats()
        corpus.add_document(["a", "b", "a"])
        corpus.add_document(["b", "c"])
        assert corpus.document_count == 2
        assert corpus.document_frequency("a") == 1
        assert corpus.document_frequency("b") == 2
        assert corpus.document_frequency("missing") == 0

    def test_repeated_terms_count_once_per_document(self):
        corpus = CorpusStats()
        corpus.add_document(["x", "x", "x"])
        assert corpus.document_frequency("x") == 1

    def test_idf_formula(self):
        corpus = CorpusStats()
        corpus.add_document(["rare"])
        corpus.add_document(["common"])
        corpus.add_document(["common"])
        corpus.add_document(["common"])
        assert corpus.idf("rare") == pytest.approx(math.log(4 / 1))
        assert corpus.idf("common") == pytest.approx(math.log(4 / 3))

    def test_idf_ubiquitous_term_is_zero(self):
        corpus = CorpusStats()
        corpus.add_document(["everywhere"])
        corpus.add_document(["everywhere"])
        assert corpus.idf("everywhere") == 0.0

    def test_idf_unknown_term_is_zero(self):
        corpus = CorpusStats()
        corpus.add_document(["a"])
        assert corpus.idf("unknown") == 0.0

    def test_idf_empty_corpus(self):
        assert CorpusStats().idf("anything") == 0.0

    def test_idf_map_matches_idf(self):
        corpus = CorpusStats()
        corpus.add_document(["a", "b"])
        corpus.add_document(["a"])
        mapping = corpus.idf_map()
        for term in ("a", "b"):
            assert mapping[term] == pytest.approx(corpus.idf(term))

    def test_vocabulary_size(self):
        corpus = CorpusStats()
        corpus.add_document(["a", "b"])
        corpus.add_document(["b", "c"])
        assert corpus.vocabulary_size == 3


class TestLocationWeights:
    def test_default_ordering(self):
        weights = LocationWeights()
        assert weights.factor(TextLocation.TITLE) > weights.factor(TextLocation.BODY)
        assert weights.factor(TextLocation.OPTION) < weights.factor(TextLocation.BODY)
        assert weights.factor(TextLocation.ANCHOR) >= weights.factor(TextLocation.BODY)

    def test_uniform(self):
        uniform = LocationWeights.uniform()
        for location in TextLocation:
            assert uniform.factor(location) == 1.0

    def test_located_term_frequencies_accumulate(self):
        weights = LocationWeights(title=3, anchor=2, body=1, option=0.5)
        counts = located_term_frequencies(
            [
                ("job", TextLocation.BODY),
                ("job", TextLocation.BODY),
                ("job", TextLocation.TITLE),
                ("sales", TextLocation.OPTION),
            ],
            weights,
        )
        assert counts["job"] == pytest.approx(5.0)   # 1 + 1 + 3
        assert counts["sales"] == pytest.approx(0.5)

    def test_empty_input(self):
        assert located_term_frequencies([], LocationWeights()) == Counter()


class TestTfIdfVector:
    def _corpus(self):
        corpus = CorpusStats()
        corpus.add_document(["flight", "cheap"])
        corpus.add_document(["flight", "hotel"])
        corpus.add_document(["hotel", "room"])
        corpus.add_document(["job", "career"])
        return corpus

    def test_equation_one(self):
        corpus = self._corpus()
        vector = tf_idf_vector(Counter({"flight": 2.0}), corpus)
        expected = 2.0 * math.log(4 / 2)
        assert vector["flight"] == pytest.approx(expected)

    def test_zero_idf_terms_dropped(self):
        corpus = CorpusStats()
        corpus.add_document(["everywhere", "rare"])
        corpus.add_document(["everywhere"])
        vector = tf_idf_vector(Counter({"everywhere": 5.0, "rare": 1.0}), corpus)
        assert "everywhere" not in vector
        assert "rare" in vector

    def test_unknown_terms_dropped(self):
        vector = tf_idf_vector(Counter({"unknown": 3.0}), self._corpus())
        assert len(vector) == 0

    def test_location_weight_scales_linearly(self):
        corpus = self._corpus()
        light = tf_idf_vector(Counter({"room": 1.0}), corpus)
        heavy = tf_idf_vector(Counter({"room": 3.0}), corpus)
        assert heavy["room"] == pytest.approx(3.0 * light["room"])
