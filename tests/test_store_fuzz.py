"""Fuzz tests for the JSON loaders: arbitrary structured garbage must
raise a clean ValueError (or json error), never crash oddly or return
corrupt objects."""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import load_dataset, load_result

json_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=10), inner, max_size=4),
    ),
    max_leaves=12,
)


def _write_payload(payload) -> str:
    handle = tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False, encoding="utf-8"
    )
    with handle:
        json.dump(payload, handle)
    return handle.name


class TestLoaderFuzz:
    @settings(max_examples=40, deadline=None)
    @given(json_values)
    def test_load_dataset_rejects_garbage_cleanly(self, payload):
        path = _write_payload(payload)
        try:
            try:
                pages = load_dataset(path)
            except ValueError:
                return  # clean rejection
            # Acceptance is only possible for a well-formed payload.
            assert isinstance(pages, list)
            for page in pages:
                assert isinstance(page.url, str)
                assert isinstance(page.html, str)
        finally:
            os.unlink(path)

    @settings(max_examples=40, deadline=None)
    @given(json_values)
    def test_load_result_rejects_garbage_cleanly(self, payload):
        path = _write_payload(payload)
        try:
            try:
                result = load_result(path)
            except ValueError:
                return
            assert result.n_clusters >= 0
        finally:
            os.unlink(path)

    def test_non_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_dataset(path)
