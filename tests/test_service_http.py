"""End-to-end HTTP API tests over a real socket.

A :class:`DirectoryHTTPServer` is bound to an ephemeral port and driven
with ``urllib`` — the same path a real client takes: JSON bodies,
Content-Length limits, status codes, and the Prometheus /metrics text.
"""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.service.directory import FormDirectory
from repro.service.http import serve_directory
from repro.service.snapshot import build_snapshot


SMALL_CONFIG = CAFCConfig(k=8, min_hub_cardinality=3)


@pytest.fixture(scope="module")
def small_snapshot(small_raw_pages):
    pipeline = CAFCPipeline(SMALL_CONFIG)
    result = pipeline.organize(small_raw_pages)
    return build_snapshot(result, pipeline.vectorizer, SMALL_CONFIG)


@pytest.fixture()
def server(small_snapshot):
    directory = FormDirectory.from_snapshot(
        small_snapshot, batch_window_ms=2.0, auto_recluster=False
    )
    srv = serve_directory(directory, port=0, max_request_bytes=256 * 1024)
    srv.serve_in_thread()
    try:
        yield srv
    finally:
        srv.shut_down()


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30.0) as response:
        body = response.read()
        content_type = response.headers.get("Content-Type", "")
        return response.status, content_type, body


def get_json(base, path):
    status, _, body = get(base, path)
    return status, json.loads(body)


def post_json(base, path, payload):
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def raw_page_payload(raw):
    return {
        "url": raw.url,
        "html": raw.html,
        "backlinks": list(raw.backlinks),
        "anchor_texts": list(raw.anchor_texts),
    }


class TestReadEndpoints:
    def test_healthz(self, server):
        status, body = get_json(server.base_url, "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["pages"] > 0
        assert body["clusters"] > 0
        assert body["engine"]["backend"]

    def test_clusters(self, server):
        status, body = get_json(server.base_url, "/clusters?max_urls=2")
        assert status == 200
        assert len(body["clusters"]) == SMALL_CONFIG.k
        for entry in body["clusters"]:
            assert len(entry["urls"]) <= 2
            assert entry["top_terms"]

    def test_search(self, server):
        status, body = get_json(server.base_url, "/search?q=flight+airfare")
        assert status == 200
        assert body["hits"]
        assert body["hits"][0]["score"] > 0

    def test_search_requires_query(self, server):
        status, _, body = _get_allowing_error(server.base_url, "/search")
        assert status == 400
        error = json.loads(body)["error"]
        assert error["code"] == "bad_request"

    def test_unknown_endpoint_404(self, server):
        status, _, body = _get_allowing_error(server.base_url, "/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not_found"

    def test_metrics_exposition_format(self, server, small_raw_pages):
        # Generate some traffic first so counters exist.
        post_json(server.base_url, "/classify",
                  raw_page_payload(small_raw_pages[0]))
        status, content_type, body = get(server.base_url, "/metrics")
        assert status == 200
        assert "text/plain" in content_type
        text = body.decode("utf-8")
        assert "# TYPE repro_classify_requests_total counter" in text
        assert "# TYPE repro_directory_pages gauge" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        match = re.search(
            r"^repro_classify_requests_total (\d+)", text, re.MULTILINE
        )
        assert match and int(match.group(1)) >= 1
        # Histogram buckets must be cumulative and end with +Inf == count.
        buckets = re.findall(
            r'repro_classify_batch_size_bucket\{le="([^"]+)"\} (\d+)', text
        )
        assert buckets
        counts = [int(count) for _, count in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][0] == "+Inf"


def _get_allowing_error(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=30.0) as response:
            return response.status, response.headers, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.headers, error.read()


class TestClassifyEndpoint:
    def test_classify_roundtrip(self, server, small_snapshot,
                                small_raw_pages):
        raw = small_raw_pages[0]
        status, body = post_json(
            server.base_url, "/classify", raw_page_payload(raw)
        )
        assert status == 200
        assert body["ok"] is True
        assert body["url"] == raw.url
        assert body["top_terms"]
        # The served answer matches an offline organizer cold-started
        # from the very same snapshot.
        offline = small_snapshot.to_organizer()
        page = offline.vectorizer.transform_new(raw)
        want_cluster, want_similarity = offline.classify_vectorized(page)
        assert body["cluster"] == want_cluster
        assert body["similarity"] == pytest.approx(want_similarity, abs=1e-9)

    def test_classify_caches(self, server, small_raw_pages):
        payload = raw_page_payload(small_raw_pages[1])
        post_json(server.base_url, "/classify", payload)
        status, body = post_json(server.base_url, "/classify", payload)
        assert status == 200
        assert body["cached"] is True

    def test_classify_validates_body(self, server):
        status, body = post_json(server.base_url, "/classify", {"url": "x"})
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "html" in body["error"]["message"]

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.base_url + "/classify", data=b"{nope",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400

    def test_oversized_body_is_413(self, server):
        payload = {"url": "http://x.example/", "html": "x" * (300 * 1024)}
        status, body = post_json(server.base_url, "/classify", payload)
        assert status == 413
        assert body["error"]["code"] == "payload_too_large"


class TestMutatingEndpoints:
    def test_add_then_remove(self, server, small_raw_pages):
        raw = small_raw_pages[2]
        post_json(server.base_url, "/remove", {"url": raw.url})
        _, before = get_json(server.base_url, "/healthz")
        status, body = post_json(
            server.base_url, "/add", raw_page_payload(raw)
        )
        assert status == 200
        assert body["cluster_size"] >= 1
        _, after = get_json(server.base_url, "/healthz")
        assert after["pages"] == before["pages"] + 1
        status, body = post_json(server.base_url, "/remove", {"url": raw.url})
        assert status == 200 and body["removed"] is True
        status, body = post_json(
            server.base_url, "/remove", {"url": "http://missing.example/"}
        )
        assert status == 200 and body["removed"] is False

    def test_remove_validates_body(self, server):
        status, body = post_json(server.base_url, "/remove", {})
        assert status == 400
        assert body["error"]["code"] == "bad_request"


class TestConcurrentClients:
    def test_sixteen_clients_coalesce(self, small_snapshot, small_raw_pages):
        """The ISSUE acceptance criterion, over the wire: 16 concurrent
        clients produce measurably fewer engine batch calls than
        requests (visible in /metrics), with no divergence from the
        unbatched reference."""
        n_clients = 16
        probes = small_raw_pages[:n_clients]

        with FormDirectory.from_snapshot(
            small_snapshot, batch_window_ms=None, cache_size=0,
            auto_recluster=False,
        ) as reference:
            expected = {
                raw.url: reference.classify(raw).cluster for raw in probes
            }

        directory = FormDirectory.from_snapshot(
            small_snapshot, batch_window_ms=25.0, cache_size=0,
            auto_recluster=False,
        )
        server = serve_directory(directory, port=0)
        server.serve_in_thread()
        try:
            base = server.base_url
            barrier = threading.Barrier(n_clients)
            results = {}
            errors = []
            lock = threading.Lock()

            def client(raw):
                try:
                    barrier.wait(timeout=30.0)
                    status, body = post_json(
                        base, "/classify", raw_page_payload(raw)
                    )
                    with lock:
                        results[raw.url] = (status, body)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(raw,)) for raw in probes
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not errors, errors
            assert len(results) == n_clients

            for url, (status, body) in results.items():
                assert status == 200, body
                assert body["cluster"] == expected[url], url

            _, _, metrics = get(base, "/metrics")
            text = metrics.decode("utf-8")
            requests = int(re.search(
                r"^repro_classify_requests_total (\d+)", text, re.MULTILINE
            ).group(1))
            batches = int(re.search(
                r"^repro_classify_batches_total (\d+)", text, re.MULTILINE
            ).group(1))
            assert requests == n_clients
            assert batches < requests, (
                f"no coalescing over HTTP: {batches} batches "
                f"for {requests} requests"
            )
        finally:
            server.shut_down()
