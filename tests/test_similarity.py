"""Tests for Equation-3 similarity (repro.core.similarity)."""

import pytest

from repro.core.config import ContentMode
from repro.core.form_page import FormPage, VectorPair
from repro.core.similarity import FormPageSimilarity
from repro.vsm.vector import SparseVector


def page(pc=None, fc=None, url="http://x.com/"):
    return FormPage(
        url=url,
        pc=SparseVector(pc or {}),
        fc=SparseVector(fc or {}),
    )


class TestCombinedSimilarity:
    def test_equal_weights_average(self):
        similarity = FormPageSimilarity(ContentMode.FC_PC, 1.0, 1.0)
        a = page(pc={"x": 1.0}, fc={"y": 1.0})
        b = page(pc={"x": 1.0}, fc={"z": 1.0})
        # PC cosine 1.0, FC cosine 0.0 -> (1 + 0) / 2.
        assert similarity(a, b) == pytest.approx(0.5)

    def test_weighted_combination(self):
        similarity = FormPageSimilarity(ContentMode.FC_PC, page_weight=3.0, form_weight=1.0)
        a = page(pc={"x": 1.0}, fc={"y": 1.0})
        b = page(pc={"x": 1.0}, fc={"z": 1.0})
        assert similarity(a, b) == pytest.approx(0.75)

    def test_identical_pages_score_one(self):
        similarity = FormPageSimilarity()
        a = page(pc={"x": 2.0}, fc={"y": 3.0})
        assert similarity(a, a) == pytest.approx(1.0)

    def test_pc_only_mode(self):
        similarity = FormPageSimilarity(ContentMode.PC)
        a = page(pc={"x": 1.0}, fc={"y": 1.0})
        b = page(pc={"x": 1.0}, fc={"y": 1.0})
        c = page(pc={"q": 1.0}, fc={"y": 1.0})
        assert similarity(a, b) == pytest.approx(1.0)
        assert similarity(a, c) == 0.0

    def test_fc_only_mode(self):
        similarity = FormPageSimilarity(ContentMode.FC)
        a = page(pc={"x": 1.0}, fc={"y": 1.0})
        b = page(pc={"z": 1.0}, fc={"y": 1.0})
        assert similarity(a, b) == pytest.approx(1.0)

    def test_empty_feature_space_contributes_zero(self):
        similarity = FormPageSimilarity()
        keyword_page = page(pc={"x": 1.0}, fc={})
        other = page(pc={"x": 1.0}, fc={"y": 1.0})
        assert similarity(keyword_page, other) == pytest.approx(0.5)

    def test_distance_complements_similarity(self):
        similarity = FormPageSimilarity()
        a = page(pc={"x": 1.0}, fc={"y": 1.0})
        b = page(pc={"x": 1.0}, fc={"y": 1.0})
        assert similarity.distance(a, b) == pytest.approx(0.0)
        c = page(pc={"q": 1.0}, fc={"r": 1.0})
        assert similarity.distance(a, c) == pytest.approx(1.0)

    def test_works_on_vector_pairs(self):
        similarity = FormPageSimilarity()
        pair = VectorPair(pc=SparseVector({"x": 1.0}), fc=SparseVector({"y": 1.0}))
        a = page(pc={"x": 1.0}, fc={"y": 1.0})
        assert similarity(a, pair) == pytest.approx(1.0)

    def test_symmetry(self):
        similarity = FormPageSimilarity()
        a = page(pc={"x": 1.0, "y": 2.0}, fc={"q": 1.0})
        b = page(pc={"x": 2.0}, fc={"q": 3.0, "r": 1.0})
        assert similarity(a, b) == pytest.approx(similarity(b, a))

    def test_range_zero_to_one(self):
        similarity = FormPageSimilarity()
        a = page(pc={"x": 1.0}, fc={"y": 1.0})
        b = page(pc={"x": 0.5, "z": 1.0}, fc={})
        assert 0.0 <= similarity(a, b) <= 1.0
