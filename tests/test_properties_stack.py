"""Cross-cutting property-based tests over the full stack.

These generate random page content / corpora with hypothesis and check
invariants that must hold regardless of input: extraction containment,
vectorizer consistency, similarity bounds, clustering partition
properties, metric agreement.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cafc_c import cafc_c
from repro.core.config import CAFCConfig
from repro.core.form_page import RawFormPage
from repro.core.similarity import FormPageSimilarity
from repro.core.vectorizer import FormPageVectorizer
from repro.eval.entropy import total_entropy
from repro.eval.extra import purity
from repro.eval.fmeasure import overall_f_measure
from repro.html.text_extract import form_text, page_text

# Vocabulary pools for random page synthesis.
_WORDS = [
    "flight", "hotel", "job", "book", "music", "movie", "car", "rental",
    "search", "find", "cheap", "online", "best", "category", "location",
    "privacy", "copyright", "contact", "help", "home",
]

words = st.lists(st.sampled_from(_WORDS), min_size=1, max_size=25)


def build_page_html(prose, form_terms, title):
    options = "".join(f"<option>{term}</option>" for term in form_terms)
    return (
        f"<html><head><title>{title}</title></head><body>"
        f"<p>{' '.join(prose)}</p>"
        f"<form action='/s'><select name='f'>{options}</select>"
        "<input type='submit' value='Search'></form>"
        "</body></html>"
    )


page_strategy = st.builds(
    build_page_html,
    prose=words,
    form_terms=st.lists(st.sampled_from(_WORDS), min_size=0, max_size=8),
    title=st.sampled_from(_WORDS),
)


class TestExtractionProperties:
    @settings(max_examples=40, deadline=None)
    @given(page_strategy)
    def test_form_text_contained_in_page_text(self, html):
        inside = form_text(html).split()
        everything = page_text(html)
        for token in inside:
            assert token in everything

    @settings(max_examples=40, deadline=None)
    @given(page_strategy)
    def test_vectorizer_fc_terms_subset_of_pc(self, html):
        pages = FormPageVectorizer().fit_transform(
            [
                RawFormPage("http://a.com/", html),
                # A second page so IDF is not degenerate.
                RawFormPage("http://b.com/", "<p>pad filler</p><form>"
                                             "<input type=text name=q></form>"),
            ]
        )
        page = pages[0]
        for term in page.fc.terms():
            assert term in page.pc

    @settings(max_examples=40, deadline=None)
    @given(page_strategy)
    def test_term_counts_consistent(self, html):
        pages = FormPageVectorizer().fit_transform(
            [RawFormPage("http://a.com/", html)]
        )
        page = pages[0]
        assert 0 <= page.form_term_count <= page.page_term_count
        assert page.terms_outside_form == (
            page.page_term_count - page.form_term_count
        )


corpus_strategy = st.lists(
    st.tuples(page_strategy, st.sampled_from(["a", "b", "c"])),
    min_size=4,
    max_size=12,
)


class TestPipelineProperties:
    @settings(max_examples=15, deadline=None)
    @given(corpus_strategy, st.integers(min_value=0, max_value=5))
    def test_cafc_c_partitions_any_corpus(self, corpus, seed):
        raw = [
            RawFormPage(f"http://site{i}.com/", html, label=label)
            for i, (html, label) in enumerate(corpus)
        ]
        pages = FormPageVectorizer().fit_transform(raw)
        k = min(3, len(pages))
        result = cafc_c(pages, CAFCConfig(k=k, seed=seed))
        assigned = sorted(
            i for members in result.clustering.clusters for i in members
        )
        assert assigned == list(range(len(pages)))

    @settings(max_examples=15, deadline=None)
    @given(corpus_strategy)
    def test_similarity_bounds_on_real_vectors(self, corpus):
        raw = [
            RawFormPage(f"http://site{i}.com/", html)
            for i, (html, _) in enumerate(corpus)
        ]
        pages = FormPageVectorizer().fit_transform(raw)
        similarity = FormPageSimilarity()
        rng = random.Random(0)
        for _ in range(10):
            a = rng.choice(pages)
            b = rng.choice(pages)
            score = similarity(a, b)
            assert -1e-9 <= score <= 1.0 + 1e-9
            assert abs(score - similarity(b, a)) < 1e-12

    @settings(max_examples=15, deadline=None)
    @given(corpus_strategy, st.integers(min_value=0, max_value=3))
    def test_metrics_agree_on_ordering_extremes(self, corpus, seed):
        """A gold-perfect partition dominates any other partition on all
        three quality metrics simultaneously."""
        raw = [
            RawFormPage(f"http://site{i}.com/", html, label=label)
            for i, (html, label) in enumerate(corpus)
        ]
        pages = FormPageVectorizer().fit_transform(raw)
        gold = [page.label for page in pages]

        from repro.clustering.types import Clustering

        by_label = {}
        for index, label in enumerate(gold):
            by_label.setdefault(label, []).append(index)
        perfect = Clustering(list(by_label.values()))

        result = cafc_c(pages, CAFCConfig(k=min(3, len(pages)), seed=seed))
        candidate = result.clustering

        assert total_entropy(perfect, gold) <= total_entropy(candidate, gold) + 1e-9
        assert overall_f_measure(perfect, gold) >= overall_f_measure(candidate, gold) - 1e-9
        assert purity(perfect, gold) >= purity(candidate, gold) - 1e-9
