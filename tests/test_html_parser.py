"""Tests for the DOM and the tolerant HTML parser."""

from hypothesis import given
from hypothesis import strategies as st

from repro.html.dom import Element, Text
from repro.html.parser import parse_html


class TestBasicParsing:
    def test_single_element(self):
        root = parse_html("<p>hello</p>")
        paragraph = root.find("p")
        assert paragraph is not None
        assert paragraph.text_content() == "hello"

    def test_nesting(self):
        root = parse_html("<div><span>inner</span></div>")
        assert root.find("div").find("span").text_content() == "inner"

    def test_attributes_lowercased(self):
        root = parse_html('<input TYPE="TEXT" Name="q">')
        element = root.find("input")
        assert element.get("type") == "TEXT"
        assert element.get("name") == "q"

    def test_missing_attribute_default(self):
        root = parse_html("<input>")
        assert root.find("input").get("missing") == ""
        assert root.find("input").get("missing", "x") == "x"

    def test_void_elements_do_not_nest(self):
        root = parse_html("<input><p>after</p>")
        # <p> must be a sibling of <input>, not its child.
        assert root.find("input").children == []
        assert root.find("p").text_content() == "after"

    def test_self_closing_syntax(self):
        root = parse_html("<br/><div>x</div>")
        assert root.find("br") is not None
        assert root.find("div").text_content() == "x"

    def test_whitespace_only_text_skipped(self):
        root = parse_html("<div>   \n   </div>")
        assert root.find("div").children == []

    def test_entity_decoding(self):
        root = parse_html("<p>fish &amp; chips</p>")
        assert root.find("p").text_content() == "fish & chips"


class TestTolerance:
    def test_unclosed_tags(self):
        root = parse_html("<div><p>one<p>two")
        paragraphs = root.find_all("p")
        assert [p.text_content() for p in paragraphs] == ["one", "two"]

    def test_stray_end_tag_ignored(self):
        root = parse_html("</div><p>ok</p>")
        assert root.find("p").text_content() == "ok"

    def test_implicit_option_closing(self):
        root = parse_html("<select><option>a<option>b<option>c</select>")
        options = root.find("select").find_all("option")
        assert [o.text_content() for o in options] == ["a", "b", "c"]

    def test_implicit_li_closing(self):
        root = parse_html("<ul><li>one<li>two</ul>")
        assert len(root.find("ul").find_all("li")) == 2

    def test_mismatched_close_pops_through(self):
        root = parse_html("<div><b>bold</div>after")
        # The </div> closes through the unclosed <b>.
        assert root.find("b").text_content() == "bold"

    def test_html_tag_merges_into_root(self):
        root = parse_html('<html lang="en"><body>x</body></html>')
        assert root.get("lang") == "en"
        assert root.find("body").text_content() == "x"

    @given(st.text(max_size=400))
    def test_never_raises_on_arbitrary_input(self, text):
        root = parse_html(text)
        assert isinstance(root, Element)

    @given(st.lists(
        st.sampled_from(["<div>", "</div>", "<p>", "text", "<input>", "</span>", "<form>", "</form>"]),
        max_size=40,
    ))
    def test_never_raises_on_tag_soup(self, chunks):
        root = parse_html("".join(chunks))
        # Traversal must also be safe.
        assert sum(1 for _ in root.iter()) >= 1


class TestDomNavigation:
    def test_iter_preorder(self):
        root = parse_html("<a><b></b><c></c></a>")
        tags = [el.tag for el in root.iter()]
        assert tags == ["html", "a", "b", "c"]

    def test_ancestors(self):
        root = parse_html("<form><table><tr><td><input></td></tr></table></form>")
        element = root.find("input")
        tags = [anc.tag for anc in element.ancestors()]
        assert tags == ["td", "tr", "table", "form", "html"]

    def test_has_ancestor(self):
        root = parse_html("<form><input></form>")
        assert root.find("input").has_ancestor("form")
        assert not root.find("form").has_ancestor("form")

    def test_find_all_includes_self(self):
        root = parse_html("<div><div></div></div>")
        outer = root.find("div")
        assert len(outer.find_all("div")) == 2

    def test_text_nodes_iteration(self):
        root = parse_html("<p>one <b>two</b> three</p>")
        texts = [t.data.strip() for t in root.iter_text_nodes()]
        assert texts == ["one", "two", "three"]

    def test_text_node_repr(self):
        assert "hi" in repr(Text("hi"))

    def test_element_repr(self):
        assert "div" in repr(Element("div"))
