"""Run the executable examples embedded in module docstrings.

Keeps the ``>>>`` snippets in API docstrings honest — they are the first
thing a reader tries.
"""

import doctest
import importlib

import pytest

# Modules that carry ``>>>`` examples.  Imported by name (not attribute
# access) because package __init__ re-exports can shadow submodules.
MODULE_NAMES = [
    "repro.text.tokenize",
    "repro.html.parser",
    "repro.html.text_extract",
    "repro.html.forms",
    "repro.webgraph.urls",
    "repro.webgen.domains",
    "repro.experiments.reporting",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0, f"{module_name} has no doctests"
