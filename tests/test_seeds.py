"""Tests for Algorithm 3 — greedy farthest-first hub-cluster selection."""

import numpy as np
import pytest

from repro.core.form_page import VectorPair
from repro.core.hubs import HubCluster
from repro.core.seeds import hub_distance_matrix, select_hub_clusters
from repro.core.similarity import FormPageSimilarity, NaiveBackend
from repro.vsm.vector import SparseVector


def cluster(hub_url, pc_terms, members=(0,)):
    return HubCluster(
        hub_url=hub_url,
        members=list(members),
        centroid=VectorPair(
            pc=SparseVector(pc_terms),
            fc=SparseVector(pc_terms),
        ),
    )


SIM = NaiveBackend(FormPageSimilarity())


def make_clusters():
    """Four clusters: two 'job'-flavored near-duplicates, one 'hotel', one
    'auto' — all mutually orthogonal except the two job ones."""
    return [
        cluster("hub-job-1", {"job": 1.0, "career": 1.0}),
        cluster("hub-job-2", {"job": 1.0, "career": 0.9}),
        cluster("hub-hotel", {"hotel": 1.0}),
        cluster("hub-auto", {"auto": 1.0}),
    ]


class TestDistanceMatrix:
    def test_symmetric_zero_diagonal(self):
        clusters = make_clusters()
        matrix = hub_distance_matrix(clusters, backend=SIM)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_orthogonal_centroids_distance_one(self):
        clusters = make_clusters()
        matrix = hub_distance_matrix(clusters, backend=SIM)
        assert matrix[2, 3] == pytest.approx(1.0)

    def test_similar_centroids_small_distance(self):
        clusters = make_clusters()
        matrix = hub_distance_matrix(clusters, backend=SIM)
        assert matrix[0, 1] < 0.05


class TestSelection:
    def test_selects_diverse_clusters(self):
        clusters = make_clusters()
        selected = select_hub_clusters(clusters, 3, backend=SIM)
        urls = {c.hub_url for c in selected}
        # One of each flavor; never both near-duplicate job hubs.
        assert not {"hub-job-1", "hub-job-2"} <= urls
        assert "hub-hotel" in urls
        assert "hub-auto" in urls

    def test_k_equals_available(self):
        clusters = make_clusters()
        selected = select_hub_clusters(clusters, 4, backend=SIM)
        assert len(selected) == 4

    def test_k_one(self):
        clusters = make_clusters()
        assert len(select_hub_clusters(clusters, 1, backend=SIM)) == 1

    def test_two_most_distant_first(self):
        clusters = make_clusters()
        selected = select_hub_clusters(clusters, 2, backend=SIM)
        matrix = hub_distance_matrix(clusters, backend=SIM)
        best = matrix.max()
        indices = [clusters.index(c) for c in selected]
        assert matrix[indices[0], indices[1]] == pytest.approx(best)

    def test_too_few_clusters_raises(self):
        with pytest.raises(ValueError):
            select_hub_clusters(make_clusters()[:2], 3, backend=SIM)

    def test_k_zero_raises(self):
        with pytest.raises(ValueError):
            select_hub_clusters(make_clusters(), 0, backend=SIM)

    def test_deterministic(self):
        clusters = make_clusters()
        first = [c.hub_url for c in select_hub_clusters(clusters, 3, backend=SIM)]
        second = [c.hub_url for c in select_hub_clusters(clusters, 3, backend=SIM)]
        assert first == second

    def test_no_duplicates_in_selection(self):
        clusters = make_clusters()
        selected = select_hub_clusters(clusters, 4, backend=SIM)
        assert len({id(c) for c in selected}) == 4
