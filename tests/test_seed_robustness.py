"""Seed robustness: the headline shape claims must hold on corpora other
than the default seed-42 benchmark.

Every generator seed produces a different web (different sites, hubs,
noise draws).  If the reproduction only worked on one lucky seed it
would be curve-fitting, not reproduction — so the core orderings are
checked on fresh small corpora across several seeds.
"""

import statistics

import pytest

from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig, ContentMode
from repro.core.hubs import build_hub_clusters, homogeneity_rate
from repro.core.vectorizer import FormPageVectorizer
from repro.eval.entropy import total_entropy
from repro.webgen.corpus import generate_benchmark

from tests.conftest import small_config


@pytest.fixture(scope="module", params=[101, 202, 303])
def corpus(request):
    web = generate_benchmark(config=small_config(seed=request.param))
    pages = FormPageVectorizer().fit_transform(web.raw_pages())
    gold = [page.label for page in pages]
    return web, pages, gold


class TestSeedRobustness:
    def test_cafc_ch_beats_cafc_c(self, corpus):
        _, pages, gold = corpus
        ch = cafc_ch(pages, CAFCConfig(k=8, min_hub_cardinality=3))
        c_mean = statistics.mean(
            total_entropy(
                cafc_c(pages, CAFCConfig(k=8, seed=seed)).clustering, gold
            )
            for seed in range(6)
        )
        assert total_entropy(ch.clustering, gold) <= c_mean

    def test_fc_alone_is_weakest(self, corpus):
        _, pages, gold = corpus
        entropies = {}
        for mode in (ContentMode.FC, ContentMode.PC, ContentMode.FC_PC):
            runs = [
                total_entropy(
                    cafc_c(
                        pages, CAFCConfig(k=8, content_mode=mode, seed=seed)
                    ).clustering,
                    gold,
                )
                for seed in range(6)
            ]
            entropies[mode] = statistics.mean(runs)
        assert entropies[ContentMode.FC] >= entropies[ContentMode.PC]
        assert entropies[ContentMode.FC] >= entropies[ContentMode.FC_PC]

    def test_hub_homogeneity_in_band(self, corpus):
        _, pages, _ = corpus
        clusters = build_hub_clusters(pages, min_cardinality=1)
        assert 0.5 <= homogeneity_rate(clusters, pages) <= 0.9

    def test_corpus_profile_stable(self, corpus):
        web, pages, gold = corpus
        assert len(pages) == web.config.total_pages
        assert len(set(gold)) == 8
