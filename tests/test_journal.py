"""Write-ahead journal crash safety.

Three layers of kill-testing:

* the frame codec, fuzzed at **every byte prefix** of a multi-record
  log — decoding never raises and always yields a prefix of the
  records that were written;
* :class:`DirectoryJournal` recovery — torn tails are truncated in
  place and appends extend a valid log afterwards;
* the directory itself — ≥50 randomized add/remove/recluster
  interleavings with simulated crashes (torn bytes appended to the
  log), each restarted from ``snapshot + journal`` and compared
  **bit-identically** to the live directory: same assignments, same
  generation counter, same classify outputs down to the float.
"""

import random

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.resilience import (
    STATS,
    DirectoryJournal,
    FaultPlan,
    FaultSpec,
    JournalError,
    TransientFault,
    active_plan,
    decode_records,
    encode_record,
    open_journal,
)
from repro.resilience.journal import _HEADER
from repro.service.directory import FormDirectory
from repro.service.snapshot import Snapshot, build_snapshot


SMALL_CONFIG = CAFCConfig(k=8, min_hub_cardinality=3)

#: How many held-out pages feed the mutation property tests.
N_HELD_OUT = 10


@pytest.fixture(scope="module")
def seed_corpus(small_raw_pages):
    """(snapshot over most of the corpus, held-out pages for adds)."""
    managed = small_raw_pages[:-N_HELD_OUT]
    pool = small_raw_pages[-N_HELD_OUT:]
    pipeline = CAFCPipeline(SMALL_CONFIG)
    result = pipeline.organize(managed)
    snapshot = build_snapshot(result, pipeline.vectorizer, SMALL_CONFIG)
    return snapshot, pool


def make_directory(snapshot, **kwargs):
    kwargs.setdefault("auto_recluster", False)
    kwargs.setdefault("batch_window_ms", None)
    kwargs.setdefault("cache_size", 0)
    return FormDirectory.from_snapshot(snapshot, **kwargs)


def directory_state(directory):
    """Everything the bit-identity criterion compares (except classify)."""
    organizer = directory.organizer
    return {
        "by_url": dict(organizer._by_url),
        "clusters": [
            [page.url for page in cluster.pages]
            for cluster in organizer.clusters
        ],
        "generation": directory.generation,
    }


RECORDS = [
    {"op": "add", "page": {"url": "http://a.example/", "w": 0.25}},
    {"op": "remove", "url": "http://b.example/q?x=1&y=2"},
    {"op": "recluster"},
    {"op": "add", "page": {"url": "http://c.example/été", "n": 3}},
    {"op": "remove", "url": ""},
    {"op": "add", "page": {"deep": {"nest": [1, 2.5, None, True]}}},
]


# ---------------------------------------------------------------------
# The frame codec.
# ---------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        data = b"".join(encode_record(r) for r in RECORDS)
        records, valid = decode_records(data)
        assert records == RECORDS
        assert valid == len(data)

    def test_every_byte_prefix_is_safe(self):
        """Kill the writer at any byte: decoding never raises, yields a
        record prefix, and reports a cut exactly on a frame boundary."""
        frames = [encode_record(r) for r in RECORDS]
        data = b"".join(frames)
        boundaries = [0]
        for frame in frames:
            boundaries.append(boundaries[-1] + len(frame))
        for cut in range(len(data) + 1):
            records, valid = decode_records(data[:cut])
            assert valid <= cut
            assert valid in boundaries
            assert records == RECORDS[: len(records)]
            # valid bytes account exactly for the records returned
            assert valid == boundaries[len(records)]

    def test_corrupt_byte_stops_before_the_record(self):
        frames = [encode_record(r) for r in RECORDS]
        data = bytearray(b"".join(frames))
        # Flip a payload byte inside the third record.
        offset = len(frames[0]) + len(frames[1]) + _HEADER.size + 2
        data[offset] ^= 0xFF
        records, valid = decode_records(bytes(data))
        assert records == RECORDS[:2]
        assert valid == len(frames[0]) + len(frames[1])

    def test_absurd_length_field_rejected(self):
        garbage = _HEADER.pack(2**31, 0) + b"x" * 64
        records, valid = decode_records(garbage)
        assert records == [] and valid == 0

    def test_non_dict_payload_rejected(self):
        import binascii

        payload = b"[1,2,3]"
        frame = _HEADER.pack(len(payload), binascii.crc32(payload)) + payload
        records, valid = decode_records(encode_record(RECORDS[0]) + frame)
        assert records == [RECORDS[0]]
        assert valid == len(encode_record(RECORDS[0]))


# ---------------------------------------------------------------------
# DirectoryJournal recovery.
# ---------------------------------------------------------------------


class TestDirectoryJournal:
    def test_append_reopen_replay(self, tmp_path):
        path = tmp_path / "dir.wal"
        with DirectoryJournal(path) as journal:
            for record in RECORDS:
                journal.append(record)
            assert journal.n_records == len(RECORDS)
            assert journal.n_bytes == path.stat().st_size
        reopened = DirectoryJournal(path)
        assert reopened.replay() == RECORDS
        assert reopened.n_records == len(RECORDS)
        assert reopened.torn_bytes_dropped == 0
        reopened.close()

    def test_torn_tail_truncated_in_place(self, tmp_path):
        path = tmp_path / "dir.wal"
        with DirectoryJournal(path) as journal:
            for record in RECORDS[:3]:
                journal.append(record)
            valid_size = journal.n_bytes
        torn = encode_record({"op": "recluster"})[:7]
        with open(path, "ab") as handle:
            handle.write(torn)
        recovered = DirectoryJournal(path)
        assert recovered.torn_bytes_dropped == len(torn)
        assert recovered.n_records == 3
        assert path.stat().st_size == valid_size
        assert recovered.replay() == RECORDS[:3]
        # Appends after recovery extend a valid log.
        recovered.append({"op": "recluster"})
        recovered.close()
        assert DirectoryJournal(path).replay() == RECORDS[:3] + [
            {"op": "recluster"}
        ]

    def test_recovery_at_every_byte_boundary(self, tmp_path):
        """A crash may leave the file cut at *any* byte; recovery always
        lands on a record prefix and the journal stays usable."""
        frames = [encode_record(r) for r in RECORDS[:4]]
        data = b"".join(frames)
        boundaries = [0]
        for frame in frames:
            boundaries.append(boundaries[-1] + len(frame))
        path = tmp_path / "cut.wal"
        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            journal = DirectoryJournal(path, fsync=False)
            # the boundary count gives how many whole frames fit the cut
            expected = [b for b in boundaries if b <= cut]
            assert journal.n_records == len(expected) - 1
            assert journal.replay() == RECORDS[: journal.n_records]
            assert path.stat().st_size == expected[-1]
            journal.append({"op": "recluster"})
            journal.close()
            assert DirectoryJournal(path, fsync=False).replay() == (
                RECORDS[: len(expected) - 1] + [{"op": "recluster"}]
            )

    def test_truncate_empties_and_stays_usable(self, tmp_path):
        path = tmp_path / "dir.wal"
        journal = DirectoryJournal(path)
        for record in RECORDS[:2]:
            journal.append(record)
        journal.truncate()
        assert journal.n_records == 0
        assert path.stat().st_size == 0
        journal.append(RECORDS[0])
        journal.close()
        assert DirectoryJournal(path).replay() == [RECORDS[0]]

    def test_open_journal_plumbing(self, tmp_path):
        assert open_journal(None) is None
        journal = DirectoryJournal(tmp_path / "a.wal")
        assert open_journal(journal) is journal
        built = open_journal(tmp_path / "b.wal")
        assert isinstance(built, DirectoryJournal)
        journal.close()
        built.close()


# ---------------------------------------------------------------------
# The directory's WAL discipline.
# ---------------------------------------------------------------------


class TestDirectoryWAL:
    def test_restart_is_bit_identical(self, seed_corpus, tmp_path):
        snapshot, pool = seed_corpus
        path = tmp_path / "dir.wal"
        live = make_directory(snapshot, journal=str(path))
        for raw in pool[:4]:
            live.add(raw)
        live.remove(pool[1].url)
        live.recluster()
        live.add(pool[4])
        probe = pool[5]
        live_outcome = live.classify(probe)
        live_state = directory_state(live)
        live.close()

        replays_before = STATS.get("journal_replays")
        restarted = make_directory(snapshot, journal=str(path))
        assert directory_state(restarted) == live_state
        assert restarted.n_replayed == 7  # 5 adds + 1 remove + 1 recluster
        assert STATS.get("journal_replays") == replays_before + 1
        outcome = restarted.classify(probe)
        assert outcome.cluster == live_outcome.cluster
        assert outcome.similarity == live_outcome.similarity
        assert outcome.top_terms == live_outcome.top_terms
        restarted.close()

    def test_unmanaged_remove_is_journaled_but_noop(
        self, seed_corpus, tmp_path
    ):
        snapshot, _ = seed_corpus
        path = tmp_path / "dir.wal"
        live = make_directory(snapshot, journal=str(path))
        generation = live.generation
        assert not live.remove("http://never.example/managed")
        assert live.generation == generation
        state = directory_state(live)
        live.close()
        assert DirectoryJournal(path).replay() == [
            {"op": "remove", "url": "http://never.example/managed"}
        ]
        restarted = make_directory(snapshot, journal=str(path))
        assert directory_state(restarted) == state
        restarted.close()

    def test_unknown_op_raises_journal_error(self, seed_corpus, tmp_path):
        snapshot, _ = seed_corpus
        path = tmp_path / "dir.wal"
        journal = DirectoryJournal(path)
        journal.append({"op": "explode"})
        journal.close()
        with pytest.raises(JournalError, match="explode"):
            make_directory(snapshot, journal=str(path))

    def test_failed_append_aborts_the_mutation(self, seed_corpus, tmp_path):
        snapshot, pool = seed_corpus
        path = tmp_path / "dir.wal"
        live = make_directory(snapshot, journal=str(path))
        state = directory_state(live)
        plan = FaultPlan([FaultSpec("journal.append", "transient")], seed=0)
        with active_plan(plan):
            with pytest.raises(TransientFault):
                live.add(pool[0])
        # State never got ahead of the log.
        assert directory_state(live) == state
        assert live._journal.n_records == 0
        # The seam disarmed, the same mutation lands.
        live.add(pool[0])
        assert pool[0].url in live.organizer._by_url
        assert live._journal.n_records == 1
        live.close()

    def test_stats_surface_the_journal(self, seed_corpus, tmp_path):
        snapshot, pool = seed_corpus
        path = tmp_path / "dir.wal"
        live = make_directory(snapshot, journal=str(path))
        live.add(pool[0])
        resilience = live.stats()["resilience"]
        assert resilience["journaled"] is True
        assert resilience["journal_records"] == 1
        assert resilience["journal_bytes"] == path.stat().st_size
        live.close()


class TestCrashRestartProperty:
    """≥50 randomized interleavings, each killed and recovered."""

    N_SEEDS = 50

    def test_randomized_interleavings_recover_bit_identically(
        self, seed_corpus, tmp_path
    ):
        snapshot, pool = seed_corpus
        probe = pool[-1]
        for seed in range(self.N_SEEDS):
            rng = random.Random(seed)
            path = tmp_path / f"crash-{seed}.wal"
            journal = DirectoryJournal(path, fsync=False)
            live = make_directory(snapshot, journal=journal)
            for _ in range(rng.randint(3, 7)):
                roll = rng.random()
                managed = list(live.organizer._by_url)
                if roll < 0.5:
                    live.add(rng.choice(pool[:-1]))
                elif roll < 0.85 and managed:
                    live.remove(rng.choice(managed))
                else:
                    live.recluster()
            live_state = directory_state(live)
            live_outcome = live.classify(probe)
            live.close()

            # The crash: a torn frame of a mutation that never applied.
            if rng.random() < 0.8:
                frame = encode_record({"op": "recluster"})
                torn = frame[: rng.randrange(1, len(frame))]
                with open(path, "ab") as handle:
                    handle.write(torn)

            restarted = make_directory(
                snapshot, journal=DirectoryJournal(path, fsync=False)
            )
            assert directory_state(restarted) == live_state, f"seed {seed}"
            outcome = restarted.classify(probe)
            assert outcome.cluster == live_outcome.cluster, f"seed {seed}"
            assert outcome.similarity == live_outcome.similarity, (
                f"seed {seed}"
            )
            restarted.close()


# ---------------------------------------------------------------------
# Checkpointing: folding the journal into a snapshot.
# ---------------------------------------------------------------------


class TestCheckpoint:
    def test_checkpoint_truncates_and_restarts_clean(
        self, seed_corpus, tmp_path
    ):
        snapshot, pool = seed_corpus
        wal = tmp_path / "dir.wal"
        live = make_directory(snapshot, journal=str(wal))
        for raw in pool[:3]:
            live.add(raw)
        live.remove(pool[0].url)
        checkpoint_path = tmp_path / "checkpoint.json.gz"
        live.checkpoint(checkpoint_path)
        assert live._journal.n_records == 0
        assert wal.stat().st_size == 0

        # Restart from the checkpoint + (empty) journal: same state.
        live_state = directory_state(live)
        probe = pool[4]
        live_outcome = live.classify(probe)
        restarted = make_directory(str(checkpoint_path), journal=str(wal))
        assert directory_state(restarted) == {
            **live_state,
            # The generation counter restarts with the snapshot era.
            "generation": 0,
        }
        outcome = restarted.classify(probe)
        assert outcome.cluster == live_outcome.cluster
        assert outcome.similarity == live_outcome.similarity

        # Mutations after the checkpoint journal again.
        restarted.add(pool[0])
        assert restarted._journal.n_records == 1
        live.close()
        restarted.close()

    def test_crash_between_save_and_truncate_converges(
        self, seed_corpus, tmp_path
    ):
        snapshot, pool = seed_corpus
        wal = tmp_path / "dir.wal"
        live = make_directory(snapshot, journal=str(wal))
        for raw in pool[:3]:
            live.add(raw)
        live.remove(pool[1].url)
        # The crash window: snapshot durably saved, journal NOT truncated.
        mid_path = tmp_path / "mid.json.gz"
        Snapshot.from_organizer(live.organizer).save(mid_path)
        live_urls = sorted(live.organizer._by_url)
        live.close()

        restarted = make_directory(str(mid_path), journal=str(wal))
        # Replaying already-folded mutations re-inserts the same pages
        # and no-ops the removes: the same page set, still consistent.
        assert sorted(restarted.organizer._by_url) == live_urls
        assert restarted.classify(pool[4]).cluster is not None
        restarted.close()

    def test_injected_save_fault_leaves_journal_intact(
        self, seed_corpus, tmp_path
    ):
        snapshot, pool = seed_corpus
        wal = tmp_path / "dir.wal"
        live = make_directory(snapshot, journal=str(wal))
        live.add(pool[0])
        plan = FaultPlan([FaultSpec("snapshot.save", "transient")], seed=0)
        with active_plan(plan):
            with pytest.raises(TransientFault):
                live.checkpoint(tmp_path / "never.json.gz")
        # Truncation is ordered after the durable save: the failed save
        # must leave every journal record in place.
        assert live._journal.n_records == 1
        assert not (tmp_path / "never.json.gz").exists()
        live.close()

    def test_truncated_snapshot_fails_cleanly(self, seed_corpus, tmp_path):
        snapshot, _ = seed_corpus
        path = tmp_path / "snap.json"
        snapshot.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            Snapshot.load(path)


# ---------------------------------------------------------------------
# Segment rotation: the WAL as a shippable series of sealed files.
# ---------------------------------------------------------------------


class TestSegmentRotation:
    def test_rollover_by_record_count(self, tmp_path):
        path = tmp_path / "dir.wal"
        journal = DirectoryJournal(path, max_segment_records=2)
        for record in RECORDS[:5]:
            journal.append(record)
        # 5 appends at 2/segment: two sealed segments + 1 active record.
        assert journal.n_segments == 2
        assert journal.n_records == 5
        assert journal.next_record == 5
        assert [s.n_records for s in journal.segments()] == [2, 2]
        assert [s.base_record for s in journal.segments()] == [0, 2]
        assert journal.replay() == RECORDS[:5]
        journal.close()
        # Totals and order survive reopen.
        reopened = DirectoryJournal(path, max_segment_records=2)
        assert reopened.n_segments == 2
        assert reopened.replay() == RECORDS[:5]
        reopened.close()

    def test_rollover_by_bytes(self, tmp_path):
        frame = len(encode_record(RECORDS[0]))
        journal = DirectoryJournal(
            tmp_path / "dir.wal", max_segment_bytes=frame
        )
        for _ in range(3):
            journal.append(RECORDS[0])
        assert journal.n_segments == 3  # each append fills a segment
        assert journal.replay() == [RECORDS[0]] * 3
        journal.close()

    def test_segment_bytes_round_trip(self, tmp_path):
        journal = DirectoryJournal(
            tmp_path / "dir.wal", max_segment_records=3
        )
        for record in RECORDS:
            journal.append(record)
        for info in journal.segments():
            records, valid = decode_records(journal.segment_bytes(info.seq))
            assert records == RECORDS[
                info.base_record: info.base_record + info.n_records
            ]
            assert valid == info.n_bytes
        journal.close()

    def test_drop_sealed_preserves_global_positions(self, tmp_path):
        path = tmp_path / "dir.wal"
        journal = DirectoryJournal(path, max_segment_records=2)
        for record in RECORDS[:5]:
            journal.append(record)
        assert journal.drop_sealed() == 4  # records, not segments
        assert journal.n_segments == 0
        assert journal.base_record == 4
        assert journal.next_record == 5  # global position unchanged
        assert journal.replay() == [RECORDS[4]]  # only the active tail
        with pytest.raises(JournalError):
            journal.segment_bytes(1)  # folded away
        journal.close()
        reopened = DirectoryJournal(path, max_segment_records=2)
        assert reopened.base_record == 4
        assert reopened.next_record == 5
        reopened.close()

    def test_torn_sealed_segment_raises(self, tmp_path):
        path = tmp_path / "dir.wal"
        journal = DirectoryJournal(path, max_segment_records=2)
        for record in RECORDS[:4]:
            journal.append(record)
        seg = journal.segments()[0].path
        journal.close()
        data = seg.read_bytes()
        seg.write_bytes(data[:-3])  # sealed files are immutable: corrupt
        with pytest.raises(JournalError, match="sealed"):
            DirectoryJournal(path, max_segment_records=2)

    def test_manifest_is_advisory_segments_authoritative(self, tmp_path):
        """Crash windows around a roll can leave the manifest stale in
        either direction; recovery always reconciles from the files."""
        path = tmp_path / "dir.wal"
        journal = DirectoryJournal(path, max_segment_records=2)
        for record in RECORDS[:5]:
            journal.append(record)
        manifest_path = journal.manifest_path
        journal.close()

        # Stale: manifest deleted outright.
        manifest_path.unlink()
        recovered = DirectoryJournal(path, max_segment_records=2)
        assert recovered.n_segments == 2
        assert recovered.replay() == RECORDS[:5]
        recovered.close()

        # Stale: manifest garbage.
        manifest_path.write_text("{not json")
        recovered = DirectoryJournal(path, max_segment_records=2)
        assert recovered.replay() == RECORDS[:5]
        recovered.close()

    def test_crash_at_every_active_byte_with_sealed_history(self, tmp_path):
        """The segment-boundary extension of the byte-boundary fuzz: two
        sealed segments stay intact, the active tail is cut at every
        byte, and recovery = sealed records + a prefix of the tail."""
        sealed = RECORDS[:4]
        tail_frames = [encode_record(r) for r in RECORDS[4:]]
        tail = b"".join(tail_frames)
        boundaries = [0]
        for frame in tail_frames:
            boundaries.append(boundaries[-1] + len(frame))
        for cut in range(len(tail) + 1):
            path = tmp_path / f"cut-{cut}.wal"
            journal = DirectoryJournal(
                path, fsync=False, max_segment_records=2
            )
            for record in sealed:
                journal.append(record)
            journal.close()
            path.write_bytes(tail[:cut])
            recovered = DirectoryJournal(
                path, fsync=False, max_segment_records=2
            )
            whole = [b for b in boundaries if b <= cut]
            n_tail = len(whole) - 1
            assert recovered.n_segments == 2
            assert recovered.n_records == 4 + n_tail
            assert recovered.replay() == sealed + RECORDS[4: 4 + n_tail]
            # The log stays appendable — and can still roll.
            recovered.append({"op": "recluster"})
            recovered.append({"op": "recluster"})
            recovered.close()
            reread = DirectoryJournal(
                path, fsync=False, max_segment_records=2
            )
            assert reread.replay() == (
                sealed + RECORDS[4: 4 + n_tail]
                + [{"op": "recluster"}] * 2
            )
            reread.close()

    def test_randomized_rotation_crash_fuzz(self, seed_corpus, tmp_path):
        """The directory-level crash property, now with rotation armed:
        random mutations roll segments mid-stream, a torn frame lands on
        the active tail, and the restart is still bit-identical."""
        snapshot, pool = seed_corpus
        probe = pool[-1]
        for seed in range(25):
            rng = random.Random(1000 + seed)
            path = tmp_path / f"rot-{seed}.wal"
            journal = DirectoryJournal(
                path, fsync=False,
                max_segment_records=rng.randint(1, 4),
            )
            live = make_directory(snapshot, journal=journal)
            for _ in range(rng.randint(3, 8)):
                roll = rng.random()
                managed = list(live.organizer._by_url)
                if roll < 0.5:
                    live.add(rng.choice(pool[:-1]))
                elif roll < 0.85 and managed:
                    live.remove(rng.choice(managed))
                else:
                    live.recluster()
            live_state = directory_state(live)
            live_outcome = live.classify(probe)
            n_segments = journal.n_segments
            live.close()

            if rng.random() < 0.8:
                frame = encode_record({"op": "recluster"})
                with open(path, "ab") as handle:
                    handle.write(frame[: rng.randrange(1, len(frame))])

            restarted = make_directory(
                snapshot,
                journal=DirectoryJournal(
                    path, fsync=False, max_segment_records=4
                ),
            )
            assert restarted._journal.n_segments == n_segments, f"seed {seed}"
            assert directory_state(restarted) == live_state, f"seed {seed}"
            outcome = restarted.classify(probe)
            assert outcome.cluster == live_outcome.cluster, f"seed {seed}"
            assert outcome.similarity == live_outcome.similarity, (
                f"seed {seed}"
            )
            restarted.close()


class TestSealedCheckpoint:
    """checkpoint(scope="sealed"): fold the shipped history, keep the
    active tail — the replication-friendly variant."""

    def test_sealed_scope_keeps_the_active_tail(self, seed_corpus, tmp_path):
        snapshot, pool = seed_corpus
        wal = tmp_path / "dir.wal"
        journal = DirectoryJournal(wal, max_segment_records=2)
        live = make_directory(snapshot, journal=journal)
        for raw in pool[:5]:
            live.add(raw)
        assert journal.n_segments == 2
        active_before = journal.n_records - sum(
            s.n_records for s in journal.segments()
        )
        checkpoint_path = tmp_path / "sealed.json.gz"
        saved = live.checkpoint(checkpoint_path, scope="sealed")
        # Sealed history folded, active tail untouched.
        assert journal.n_segments == 0
        assert journal.n_records == active_before
        assert saved.meta["journal_position"] == 5

        # Restart from checkpoint + remaining journal: replaying the
        # tail over the (already-inclusive) snapshot converges.
        live_urls = sorted(live.organizer._by_url)
        live_outcome = live.classify(pool[5])
        live.close()
        restarted = make_directory(
            str(checkpoint_path),
            journal=DirectoryJournal(wal, max_segment_records=2),
        )
        assert sorted(restarted.organizer._by_url) == live_urls
        outcome = restarted.classify(pool[5])
        assert outcome.cluster == live_outcome.cluster
        assert outcome.similarity == live_outcome.similarity
        restarted.close()

    def test_all_scope_still_truncates(self, seed_corpus, tmp_path):
        snapshot, pool = seed_corpus
        wal = tmp_path / "dir.wal"
        live = make_directory(
            snapshot,
            journal=DirectoryJournal(wal, max_segment_records=2),
        )
        for raw in pool[:5]:
            live.add(raw)
        live.checkpoint(tmp_path / "all.json.gz", scope="all")
        assert live._journal.n_records == 0
        assert live._journal.n_segments == 0
        assert live._journal.next_record == 5  # global position kept
        live.close()

    def test_bad_scope_rejected(self, seed_corpus, tmp_path):
        snapshot, _ = seed_corpus
        live = make_directory(snapshot, journal=str(tmp_path / "w.wal"))
        with pytest.raises(ValueError, match="scope"):
            live.checkpoint(tmp_path / "x.json.gz", scope="sideways")
        live.close()
