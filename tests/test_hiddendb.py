"""Tests for the hidden-database substrate and the probing baseline."""

import pytest

from repro.baselines.probing import ProbeSet, ProbingClassifier, train_probes
from repro.hiddendb import (
    HiddenDatabase,
    build_hidden_databases,
    generate_records,
)
from repro.hiddendb.records import generate_mixed_records
from repro.webgen.domains import domain_by_name


class TestRecordGeneration:
    def test_count_and_fields(self):
        records = generate_records(domain_by_name("job"), 20, seed="x")
        assert len(records) == 20
        assert all("description" in record for record in records)

    def test_deterministic_per_seed(self):
        first = generate_records(domain_by_name("job"), 5, seed="brand1")
        second = generate_records(domain_by_name("job"), 5, seed="brand1")
        assert first == second

    def test_seed_changes_contents(self):
        first = generate_records(domain_by_name("job"), 5, seed="brand1")
        second = generate_records(domain_by_name("job"), 5, seed="brand2")
        assert first != second

    def test_select_attributes_draw_from_pools(self):
        records = generate_records(domain_by_name("job"), 30, seed="x")
        categories = {
            record["category"] for record in records if "category" in record
        }
        pool = set(
            next(
                a for a in domain_by_name("job").attributes
                if a.concept == "category"
            ).value_pool
        )
        assert categories <= pool

    def test_mixed_records_split(self):
        records = generate_mixed_records(
            domain_by_name("music"), domain_by_name("movie"), 20, seed="x"
        )
        assert len(records) == 20


class TestHiddenDatabase:
    def _db(self):
        return HiddenDatabase(
            [
                {"title": "Senior Engineer", "description": "great salary and career"},
                {"title": "Sales Manager", "description": "career opportunity"},
                {"title": "Quiet Room", "description": "hotel amenities"},
            ]
        )

    def test_keyword_search_and(self):
        result = self._db().keyword_search("career salary")
        assert result.count == 1

    def test_keyword_search_or(self):
        result = self._db().keyword_search("career salary", mode="or")
        assert result.count == 2

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            self._db().keyword_search("x", mode="xor")

    def test_count_primitive(self):
        assert self._db().count("career") == 2
        assert self._db().count("zzz") == 0

    def test_stemming_in_index(self):
        # 'salaries' stems to the same term as 'salary'.
        assert self._db().count("salaries") == 1

    def test_empty_query(self):
        assert self._db().keyword_search("the of").count == 0

    def test_fielded_search(self):
        database = HiddenDatabase(
            [
                {"category": "Engineering", "state": "Texas"},
                {"category": "Engineering", "state": "Ohio"},
                {"category": "Sales", "state": "Texas"},
            ]
        )
        assert database.fielded_search({"category": "engineering"}).count == 2
        assert database.fielded_search(
            {"category": "Engineering", "state": "Texas"}
        ).count == 1

    def test_fielded_search_ignores_empty_filters(self):
        database = HiddenDatabase([{"category": "Sales"}])
        assert database.fielded_search({"category": "", "x": "  "}).count == 1

    def test_len_and_vocabulary(self):
        database = self._db()
        assert len(database) == 3
        assert database.vocabulary_size() > 0


class TestRegistry:
    def test_one_database_per_site(self, small_web):
        registry = build_hidden_databases(small_web, records_per_database=30)
        assert len(registry) == len(small_web.sites)

    def test_keyword_accessibility_split(self, small_web):
        registry = build_hidden_databases(small_web, records_per_database=30)
        accessible = registry.keyword_accessible()
        # All single-attribute forms are accessible; most multi are not.
        n_single = sum(1 for s in small_web.sites if s.is_single_attribute)
        assert len(accessible) >= n_single
        assert len(accessible) < len(registry)

    def test_lookup(self, small_web):
        registry = build_hidden_databases(small_web, records_per_database=30)
        url = small_web.sites[0].form_page_url
        assert url in registry
        assert registry.get(url).site.form_page_url == url
        assert registry.get("http://nowhere.example/") is None


class TestProbing:
    @pytest.fixture(scope="class")
    def registry(self, small_web):
        return build_hidden_databases(small_web, records_per_database=60)

    @pytest.fixture(scope="class")
    def probe_set(self, registry):
        by_domain = {}
        for entry in registry.entries():
            by_domain.setdefault(entry.site.domain_name, []).append(entry)
        training = [
            (domain, entry.database)
            for domain, entries in by_domain.items()
            for entry in entries[:2]
        ]
        return train_probes(training, n_terms=6)

    def test_probes_are_domain_flavoured(self, probe_set):
        assert "job" in probe_set.probes["job"] or "career" in probe_set.probes["job"]
        assert probe_set.n_probes > 0

    def test_classification_accuracy_on_accessible(self, registry, probe_set):
        classifier = ProbingClassifier(probe_set)
        correct = accessible = 0
        for entry in registry.entries():
            outcome = classifier.probe(
                entry.site.form_page_url, entry.database, entry.keyword_accessible
            )
            if not outcome.accessible:
                continue
            accessible += 1
            correct += outcome.category == entry.site.domain_name
        assert accessible > 0
        assert correct / accessible >= 0.8

    def test_structured_interfaces_unreachable(self, registry, probe_set):
        classifier = ProbingClassifier(probe_set)
        outcome = classifier.probe("http://x.com/", None, keyword_accessible=False)
        assert not outcome.accessible
        assert outcome.category is None
        assert outcome.n_queries == 0

    def test_query_budget_tracked(self, registry, probe_set):
        classifier = ProbingClassifier(probe_set)
        entry = registry.keyword_accessible()[0]
        outcome = classifier.probe(
            entry.site.form_page_url, entry.database, True
        )
        assert outcome.n_queries == probe_set.n_probes

    def test_empty_probe_set_rejected(self):
        with pytest.raises(ValueError):
            ProbingClassifier(ProbeSet(probes={}))

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            train_probes([])
