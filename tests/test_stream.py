"""Tests for the streaming ingestion path (repro.stream and friends).

The load-bearing claims, each pinned here:

* the synthetic page stream is a pure function of (seed, index) —
  restartable and chunkable with identical output;
* streamed Equation-1 weights respect the documented error bound
  ``|w_emitted - w_exact| <= LOC*TF*drift_threshold`` for every
  in-vocabulary term, across many seeded streams, and converge to the
  exact weights as the threshold goes to zero;
* a terminal re-weight plus re-emission reproduces batch
  ``fit_transform`` weights bit-identically (no pruning);
* the spill-to-disk index returns the same ids and (to 1e-9) scores as
  an all-resident index, and rejects corrupt segments;
* the bounded term table and DF pruning actually bound memory without
  moving surviving IDFs.
"""

import math

import pytest

from repro.clustering.minibatch import MiniBatchKMeans, ReservoirSample
from repro.core.vectorizer import FormPageVectorizer
from repro.datasets.store import (
    FramedRecordError,
    iter_framed_records,
    write_framed_records,
)
from repro.parallel.config import ParallelConfig
from repro.stream import (
    StreamConfig,
    StreamingIngestor,
    StreamOrganizer,
    run_stream,
)
from repro.vsm.corpus import CorpusStats
from repro.vsm.interning import BoundedTermTable, TermTable
from repro.vsm.vector import SparseVector
from repro.webgen.stream import page_at, stream_chunks, stream_pages


def _serial_vectorizer():
    return FormPageVectorizer(parallel=ParallelConfig(use_cache=False))


# ----------------------------------------------------------------
# The streaming page emitter.
# ----------------------------------------------------------------


class TestStreamEmitter:
    def test_pure_function_of_seed_and_index(self):
        a = page_at(137, seed=5)
        b = page_at(137, seed=5)
        assert a.url == b.url and a.html == b.html and a.label == b.label

    def test_different_indices_differ(self):
        urls = {page_at(i, seed=5).url for i in range(50)}
        assert len(urls) == 50

    def test_restartable_mid_stream(self):
        full = [p.url for p in stream_pages(20, seed=9)]
        tail = [p.url for p in stream_pages(12, seed=9, start=8)]
        assert full[8:] == tail

    def test_chunks_cover_stream_exactly(self):
        chunks = list(stream_chunks(100, chunk_size=32, seed=3))
        assert [c.count for c in chunks] == [32, 32, 32, 4]
        chunked = [p.url for c in chunks for p in c.pages()]
        direct = [p.url for p in stream_pages(100, seed=3)]
        assert chunked == direct

    def test_labels_are_gold_domains(self):
        labels = {p.label for p in stream_pages(200, seed=1)}
        assert labels <= {
            "airfare", "auto", "book", "hotel",
            "job", "movie", "music", "rental",
        }
        assert len(labels) >= 6  # the mix covers most domains quickly

    def test_lazy_generation(self):
        # Taking 3 pages from a "1M-page" stream must not build 1M pages.
        stream = stream_pages(1_000_000, seed=4)
        taken = [next(stream) for _ in range(3)]
        assert len(taken) == 3


# ----------------------------------------------------------------
# Vocabulary control: bounded interning + DF pruning.
# ----------------------------------------------------------------


class TestTermTableStats:
    def test_len_and_bytes_estimate(self):
        table = TermTable()
        for term in ("alpha", "beta", "gamma"):
            table.intern(term)
        stats = table.stats()
        assert stats["terms"] == len(table) == 3
        assert stats["bytes_estimate"] > 0
        before = stats["bytes_estimate"]
        table.intern("a-much-longer-term-string")
        assert table.stats()["bytes_estimate"] > before


class TestBoundedTermTable:
    def test_compaction_keeps_frequent_terms(self):
        table = BoundedTermTable(max_terms=8)
        # "hot" recurs between every cold burst, so it keeps earning its
        # slot across compaction epochs (survivor counts reset to 1).
        for i in range(20):
            table.intern("hot")
            table.intern("hot")
            table.intern(f"cold{i}")
        assert len(table) <= 8
        assert table.n_compactions >= 1
        assert table.n_dropped > 0
        assert "hot" in [table.term(tid) for tid in range(len(table))]

    def test_remap_is_consistent(self):
        table = BoundedTermTable(max_terms=100)
        ids = {t: table.intern(t) for t in ("aa", "bb", "cc")}
        for _ in range(3):
            table.intern("aa")
        remap = table.compact(min_count=2)
        assert ids["aa"] in remap
        assert table.term(remap[ids["aa"]]) == "aa"


class TestPruneRare:
    def test_surviving_idfs_unchanged(self):
        stats = CorpusStats()
        for _ in range(6):
            stats.add_document(["common", "shared"])
        stats.add_document(["common", "hapax"])
        idf_before = stats.idf("common")
        dropped = stats.prune_rare(2)
        assert dropped == 1
        assert stats.document_frequency("hapax") == 0
        assert stats.idf("common") == idf_before
        assert stats.document_count == 7  # N untouched

    def test_min_df_one_is_noop(self):
        stats = CorpusStats()
        stats.add_document(["only"])
        assert stats.prune_rare(1) == 0
        assert stats.document_frequency("only") == 1


# ----------------------------------------------------------------
# The drift-bounded weight relaxation (satellite c).
# ----------------------------------------------------------------


class TestDriftBound:
    def _check_stream_bound(self, seed, threshold, n_pages=30):
        """Every emitted in-vocabulary weight obeys LOC*TF*threshold."""
        config = StreamConfig(
            batch_size=4, drift_threshold=threshold, min_df=1
        )
        ingestor = StreamingIngestor(config, vectorizer=_serial_vectorizer())
        worst = 0.0
        for batch in ingestor.ingest(stream_pages(n_pages, seed=seed)):
            vec = ingestor.vectorizer
            for entry in batch:
                for space, tf in (("pc", entry.pc_tf), ("fc", entry.fc_tf)):
                    emitted = getattr(entry.page, space)
                    corpus = (
                        vec.pc_corpus if space == "pc" else vec.fc_corpus
                    )
                    n_docs = corpus.document_count
                    for term, weight in emitted.items():
                        df = corpus.document_frequency(term)
                        exact = tf[term] * math.log(n_docs / df)
                        bound = tf[term] * threshold + 1e-9
                        error = abs(weight - exact)
                        assert error <= bound, (
                            f"seed={seed} term={term!r}: error {error} "
                            f"exceeds bound {bound}"
                        )
                        worst = max(worst, error / tf[term] if tf[term] else 0)
        return worst

    def test_bound_holds_across_25_seeded_streams(self):
        for seed in range(25):
            self._check_stream_bound(seed, threshold=0.3, n_pages=20)

    def test_error_shrinks_as_threshold_vanishes(self):
        errors = [
            self._check_stream_bound(1234, threshold=t, n_pages=30)
            for t in (0.5, 0.2, 0.05, 0.0)
        ]
        assert all(e <= t for e, t in zip(errors, (0.5, 0.2, 0.05, 1e-12)))
        assert errors[-1] <= 1e-12  # threshold 0 = exact prefix statistics

    def test_threshold_zero_batchsize_one_is_exact(self):
        config = StreamConfig(batch_size=1, drift_threshold=0.0, min_df=1)
        ingestor = StreamingIngestor(config, vectorizer=_serial_vectorizer())
        for batch in ingestor.ingest(stream_pages(12, seed=77)):
            (entry,) = batch
            vec = ingestor.vectorizer
            for term, weight in entry.page.pc.items():
                exact = entry.pc_tf[term] * vec.pc_corpus.idf(term)
                assert weight == pytest.approx(exact, abs=0.0)

    def test_final_reemit_matches_batch_bitwise(self):
        """Terminal re-weight + re-emit == batch fit_transform, exactly."""
        raw = list(stream_pages(60, seed=31))
        batch_pages = _serial_vectorizer().fit_transform(raw)

        config = StreamConfig(batch_size=16, drift_threshold=0.2, min_df=1)
        ingestor = StreamingIngestor(config, vectorizer=_serial_vectorizer())
        entries = [e for b in ingestor.ingest(iter(raw)) for e in b]
        ingestor.reweight()  # terminal: contexts now cover the whole stream
        for entry, batch_page in zip(entries, batch_pages):
            pc, fc = ingestor.vectorizer.emit_vectors(entry.pc_tf, entry.fc_tf)
            assert dict(pc.items()) == dict(batch_page.pc.items())
            assert dict(fc.items()) == dict(batch_page.fc.items())


# ----------------------------------------------------------------
# Mini-batch k-means and the reservoir.
# ----------------------------------------------------------------


class _Pair:
    def __init__(self, pc, fc):
        self.pc = SparseVector(pc)
        self.fc = SparseVector(fc)


class TestMiniBatchKMeans:
    def _points(self):
        hot = [_Pair({"fire": 2.0, "heat": 1.0}, {"fire": 1.0})
               for _ in range(6)]
        cold = [_Pair({"ice": 2.0, "snow": 1.0}, {"ice": 1.0})
                for _ in range(6)]
        return hot, cold

    def test_separates_obvious_clusters(self):
        hot, cold = self._points()
        learner = MiniBatchKMeans([hot[0], cold[0]])
        learner.partial_fit(hot[1:] + cold[1:])
        assert learner.assign(hot[2])[0] == 0
        assert learner.assign(cold[2])[0] == 1

    def test_centroid_converges_to_running_mean(self):
        seed = _Pair({"x": 1.0}, {"x": 1.0})
        learner = MiniBatchKMeans([seed])
        for _ in range(50):
            learner.partial_fit([_Pair({"x": 3.0}, {"x": 3.0})])
        (pair,) = learner.centroid_pairs()
        weight = dict(pair.pc.items())["x"]
        assert weight == pytest.approx(3.0, rel=0.05)

    def test_assignment_deterministic_on_ties(self):
        point = _Pair({"x": 1.0}, {"x": 1.0})
        learner = MiniBatchKMeans([point, point])  # identical centroids
        assert learner.assign(point)[0] == 0

    def test_reseed_preserves_k(self):
        hot, cold = self._points()
        learner = MiniBatchKMeans([hot[0], cold[0]])
        with pytest.raises(ValueError):
            learner.reseed([hot[0]])


class TestReservoir:
    def test_deterministic_membership(self):
        def fill():
            r = ReservoirSample(16, seed=3)
            for i in range(500):
                r.offer(i)
            return r.items

        assert fill() == fill()

    def test_bounded(self):
        r = ReservoirSample(8, seed=0)
        for i in range(1000):
            r.offer(i)
        assert len(r) == 8 and r.n_seen == 1000

    def test_replace_all_preserves_size(self):
        r = ReservoirSample(4, seed=0)
        for i in range(4):
            r.offer(i)
        r.replace_all([10, 11, 12, 13])
        assert r.items == [10, 11, 12, 13]
        with pytest.raises(ValueError):
            r.replace_all([1])


# ----------------------------------------------------------------
# Streaming organizer end to end.
# ----------------------------------------------------------------


class TestStreamOrganizer:
    def test_run_stream_clusters_by_domain(self):
        run = run_stream(
            stream_pages(600, seed=21),
            n_clusters=8,
            config=StreamConfig(batch_size=64, reservoir_size=128),
        )
        assert run.stats.pages == 600
        assert run.stats.reweights >= 1
        assert run.organizer.ready
        # Majority-label purity over a fresh sample of the same stream:
        # streamed pages from one domain should mostly agree on a cluster.
        from collections import Counter

        by_label = {}
        vec = run.ingestor.vectorizer
        for raw in stream_pages(100, seed=22):
            page = vec.transform_new(raw)
            cluster, _ = run.organizer.assign(page)
            by_label.setdefault(raw.label, Counter())[cluster] += 1
        agreements = [
            counts.most_common(1)[0][1] / sum(counts.values())
            for counts in by_label.values()
            if sum(counts.values()) >= 5
        ]
        assert agreements and sum(agreements) / len(agreements) > 0.5

    def test_short_stream_bootstraps_at_end(self):
        run = run_stream(
            stream_pages(30, seed=2),
            n_clusters=4,
            config=StreamConfig(batch_size=8, reservoir_size=64),
        )
        assert run.organizer.ready
        assert len(run.organizer.centroid_pairs()) <= 4

    def test_reweight_rebuilds_reservoir_vectors(self):
        config = StreamConfig(
            batch_size=16, drift_threshold=0.05, reservoir_size=32, min_df=1
        )
        ingestor = StreamingIngestor(config, vectorizer=_serial_vectorizer())
        organizer = StreamOrganizer(
            4, reservoir_size=32, bootstrap_pages=32
        ).attach(ingestor)
        for batch in ingestor.ingest(stream_pages(200, seed=13)):
            organizer.observe_batch(batch)
        assert organizer.n_reweight_rebuilds >= 1
        # Reservoir members carry vectors from the *current* contexts:
        # re-emitting one must be a no-op.
        entry = organizer.reservoir.items[0]
        pc, _ = ingestor.vectorizer.emit_vectors(entry.pc_tf, entry.fc_tf)
        assert dict(pc.items()) == dict(entry.page.pc.items())


# ----------------------------------------------------------------
# Spill-to-disk postings.
# ----------------------------------------------------------------


class TestFramedRecords:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "records.seg"
        records = [{"i": i, "data": "x" * i} for i in range(5)]
        offsets = write_framed_records(records, path)
        assert len(offsets) == 5 and offsets[0] == 0
        read = [record for _, record in iter_framed_records(path)]
        assert read == records

    def test_corruption_detected(self, tmp_path):
        path = tmp_path / "records.seg"
        write_framed_records([{"payload": "intact"}], path)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(blob))
        with pytest.raises(FramedRecordError):
            list(iter_framed_records(path))

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "records.seg"
        write_framed_records([{"payload": "intact"}], path)
        path.write_bytes(path.read_bytes()[:-2])
        with pytest.raises(FramedRecordError):
            list(iter_framed_records(path))


class TestSpillIndex:
    def _vectors(self, n=120, seed=5):
        import random

        rng = random.Random(seed)
        terms = [f"term{i}" for i in range(30)]
        out = {}
        for i in range(n):
            out[i] = SparseVector({
                rng.choice(terms): rng.uniform(0.2, 4.0)
                for _ in range(rng.randint(3, 9))
            })
        return out

    def test_search_matches_all_resident(self, tmp_path):
        from repro.index import (
            SpaceIndex,
            SpillingSpaceIndex,
            combined_query_channel,
            top_k_exact,
        )

        vectors = self._vectors()
        spill = SpillingSpaceIndex(tmp_path / "seg", segment_rows=32)
        full = SpaceIndex()
        for row, vector in vectors.items():
            spill.add_row(row, vector, meta=f"url-{row}")
            full.add_row(row, vector)
        assert spill.n_spilled > 0 and len(spill) == len(vectors)

        query = self._vectors(n=1, seed=99)[0]
        norm = query.norm()
        reference = top_k_exact(
            [combined_query_channel(full, query)],
            10,
            lambda r: full.vector(r).dot(query) / (full.norm(r) * norm),
        )
        hits = spill.search(query, 10)
        assert [h[0] for h in hits] == [r for r, _ in reference]
        for (row, score, meta), (_, ref_score) in zip(hits, reference):
            assert score == pytest.approx(ref_score, abs=1e-9)
            assert meta == f"url-{row}"

    def test_reopen_keeps_sealed_history(self, tmp_path):
        from repro.index import SpillingSpaceIndex

        vectors = self._vectors(n=64)
        first = SpillingSpaceIndex(tmp_path / "seg", segment_rows=16)
        for row, vector in vectors.items():
            first.add_row(row, vector)
        first.flush()
        reopened = SpillingSpaceIndex(tmp_path / "seg", segment_rows=16)
        assert reopened.n_spilled == len(vectors)
        query = self._vectors(n=1, seed=7)[0]
        assert [h[:2] for h in reopened.search(query, 5)] == [
            h[:2] for h in first.search(query, 5)
        ]

    def test_corrupt_segment_refused(self, tmp_path):
        from repro.index import SpillingSpaceIndex

        spill = SpillingSpaceIndex(tmp_path / "seg", segment_rows=8)
        for row, vector in self._vectors(n=8).items():
            spill.add_row(row, vector)
        (segment,) = spill.segments
        blob = bytearray(segment.path.read_bytes())
        blob[12] ^= 0xFF
        segment.path.write_bytes(bytes(blob))
        with pytest.raises(FramedRecordError):
            SpillingSpaceIndex(tmp_path / "seg", segment_rows=8)


# ----------------------------------------------------------------
# Incremental organizer: mini-batch recluster mode.
# ----------------------------------------------------------------


class TestReclusterMinibatch:
    def test_moves_pages_and_keeps_membership_total(self, small_raw_pages):
        from repro.core.cafc_ch import cafc_ch
        from repro.core.config import CAFCConfig
        from repro.core.incremental import IncrementalOrganizer

        vectorizer = FormPageVectorizer()
        pages = vectorizer.fit_transform(small_raw_pages)
        result = cafc_ch(pages, CAFCConfig(k=8, min_hub_cardinality=3))
        initial = [
            [pages[i] for i in members]
            for members in result.clustering.compact().clusters
        ]
        organizer = IncrementalOrganizer(
            [list(cluster) for cluster in initial], vectorizer
        )
        total_before = len(organizer)
        moved = organizer.recluster_minibatch(
            reservoir_size=64, batch_size=16, epochs=2, seed=1
        )
        assert moved >= 0
        assert len(organizer) == total_before
        assert organizer.cohesion > 0.0


# ----------------------------------------------------------------
# Config plumbing.
# ----------------------------------------------------------------


class TestStreamConfig:
    def test_roundtrip_through_cafc_config(self):
        from repro.core.config import CAFCConfig

        config = CAFCConfig()
        config.stream.drift_threshold = 0.25
        restored = CAFCConfig.from_dict(config.to_dict())
        assert restored.stream.drift_threshold == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(batch_size=0)
        with pytest.raises(ValueError):
            StreamConfig(drift_threshold=-0.1)
        with pytest.raises(ValueError):
            StreamConfig(reservoir_size=0)
