"""Tests for the config-sweep tool."""

import pytest

from repro.core.config import CAFCConfig
from repro.core.tuning import sweep_configs


class TestSweep:
    def test_grid_product_evaluated(self, small_pages):
        result = sweep_configs(
            small_pages,
            {"min_hub_cardinality": [3, 5], "page_weight": [1.0, 2.0]},
        )
        assert len(result.cells) == 4
        labels = {cell.label() for cell in result.cells}
        assert "min_hub_cardinality=3, page_weight=1.0" in labels

    def test_best_is_min_entropy(self, small_pages):
        result = sweep_configs(small_pages, {"min_hub_cardinality": [3, 50]})
        best = result.best()
        assert all(best.entropy <= cell.entropy for cell in result.cells)

    def test_fallback_flagged(self, small_pages):
        result = sweep_configs(small_pages, {"min_hub_cardinality": [1000]})
        assert result.cells[0].fell_back

    def test_cafc_c_mode_with_runs(self, small_pages):
        result = sweep_configs(
            small_pages, {"page_weight": [1.0]},
            algorithm="cafc-c", n_runs=2,
        )
        assert len(result.cells) == 1
        assert not result.cells[0].fell_back

    def test_unknown_field_rejected(self, small_pages):
        with pytest.raises(ValueError, match="no field"):
            sweep_configs(small_pages, {"bogus_knob": [1]})

    def test_empty_grid_rejected(self, small_pages):
        with pytest.raises(ValueError, match="empty grid"):
            sweep_configs(small_pages, {})

    def test_bad_algorithm_rejected(self, small_pages):
        with pytest.raises(ValueError, match="unknown algorithm"):
            sweep_configs(small_pages, {"k": [8]}, algorithm="dbscan")

    def test_unlabelled_pages_rejected(self, small_pages):
        import dataclasses

        stripped = [dataclasses.replace(page, label=None) for page in small_pages]
        with pytest.raises(ValueError, match="gold labels"):
            sweep_configs(stripped, {"k": [8]})

    def test_base_config_respected(self, small_pages):
        base = CAFCConfig(k=4, min_hub_cardinality=3)
        result = sweep_configs(small_pages, {"page_weight": [1.0]}, base=base)
        assert len(result.cells) == 1

    def test_rows_render(self, small_pages):
        result = sweep_configs(small_pages, {"min_hub_cardinality": [3]})
        rows = result.as_rows()
        assert rows[0][0] == "min_hub_cardinality=3"

    def test_empty_sweep_best_raises(self):
        from repro.core.tuning import SweepResult

        with pytest.raises(ValueError):
            SweepResult().best()
