"""End-to-end integration tests: crawl -> filter -> harvest -> cluster.

These exercise the full stack the way a downstream user would, on the
small fixture corpus (fast) plus paper-profile audits on the full
benchmark corpus.
"""

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.core.form_page import RawFormPage
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.webgraph.crawler import Crawler


class TestCrawlThenCluster:
    """The full production path: a crawler discovers form pages on the
    synthetic web, the classifier filters them, backlinks are harvested
    from the simulated engine, and CAFC organizes the result."""

    @pytest.fixture(scope="class")
    def crawl_result(self, small_web):
        roots = [site.root_url for site in small_web.sites]
        return Crawler(small_web.graph).crawl(roots)

    def test_crawler_recovers_searchable_forms(self, crawl_result, small_web):
        found = {page.url for page in crawl_result.form_pages}
        expected = set(small_web.form_page_urls())
        recall = len(expected & found) / len(expected)
        assert recall >= 0.95

    def test_login_forms_filtered_out(self, crawl_result, small_web):
        rejected = {page.url for page in crawl_result.rejected_form_pages}
        login_urls = {
            page.url
            for site in small_web.sites
            for page in site.pages
            if page.kind == "login"
        }
        assert login_urls <= rejected

    def test_crawl_filter_harvest_cluster(self, crawl_result, small_web):
        engine = small_web.search_engine()
        labels_by_url = {
            site.form_page_url: site.domain_name for site in small_web.sites
        }
        roots_by_url = {site.form_page_url: site.root_url for site in small_web.sites}

        raw_pages = []
        for page in crawl_result.form_pages:
            if page.url not in labels_by_url:
                continue  # hub pages can also contain forms in principle
            backlinks = sorted(
                set(engine.link_query(page.url))
                | set(engine.link_query(roots_by_url[page.url]))
            )
            raw_pages.append(
                RawFormPage(
                    url=page.url,
                    html=page.html,
                    backlinks=backlinks,
                    label=labels_by_url[page.url],
                )
            )

        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        result = pipeline.organize(raw_pages)
        pages = [p for cluster in result.clusters for p in cluster.pages]
        gold = [p.label for p in pages]
        clustering_labels = []
        for index, cluster in enumerate(result.clusters):
            clustering_labels.extend([index] * cluster.size)
        from repro.clustering.types import Clustering

        clustering = Clustering.from_labels(clustering_labels)
        assert overall_f_measure(clustering, gold) > 0.7


class TestBenchmarkReproduction:
    """Headline paper claims on the real 454-page corpus."""

    def test_cafc_ch_reaches_high_quality(self, benchmark_pages, benchmark_gold):
        from repro.core.cafc_ch import cafc_ch

        result = cafc_ch(benchmark_pages, CAFCConfig(k=8))
        entropy = total_entropy(result.clustering, benchmark_gold)
        f_measure = overall_f_measure(result.clustering, benchmark_gold)
        assert entropy < 0.25          # paper: 0.15
        assert f_measure > 0.90        # paper: 0.96

    def test_cafc_ch_beats_cafc_c(self, benchmark_pages, benchmark_gold):
        import statistics

        from repro.core.cafc_c import cafc_c
        from repro.core.cafc_ch import cafc_ch

        ch = cafc_ch(benchmark_pages, CAFCConfig(k=8))
        ch_entropy = total_entropy(ch.clustering, benchmark_gold)
        c_entropies = [
            total_entropy(
                cafc_c(benchmark_pages, CAFCConfig(k=8, seed=seed)).clustering,
                benchmark_gold,
            )
            for seed in range(5)
        ]
        assert ch_entropy < statistics.mean(c_entropies)

    def test_hub_homogeneity_near_paper(self, benchmark_pages):
        from repro.core.hubs import build_hub_clusters, homogeneity_rate

        clusters = build_hub_clusters(benchmark_pages, min_cardinality=1)
        assert 0.55 <= homogeneity_rate(clusters, benchmark_pages) <= 0.85

    def test_backlinkless_fraction_near_paper(self, benchmark_raw_pages):
        from repro.webgraph.urls import same_site

        missing = sum(
            1
            for page in benchmark_raw_pages
            if not any(not same_site(b, page.url) for b in page.backlinks)
        )
        fraction = missing / len(benchmark_raw_pages)
        assert 0.10 <= fraction <= 0.25   # paper: >15%

    def test_single_attribute_pages_clustered_well(
        self, benchmark_pages, benchmark_gold
    ):
        from repro.core.cafc_ch import cafc_ch
        from repro.eval.confusion import ConfusionAnalysis

        result = cafc_ch(benchmark_pages, CAFCConfig(k=8))
        analysis = ConfusionAnalysis.analyze(result.clustering, benchmark_pages)
        # Paper: only 1 of 17 errors is a single-attribute form.
        assert analysis.n_single_attribute_errors <= 3


class TestClassifyNewSources:
    """Section 5: using built clusters to classify new sources."""

    def test_new_pages_from_fresh_seed_classified(self, small_raw_pages):
        from tests.conftest import small_config
        from repro.webgen.corpus import generate_benchmark

        pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
        result = pipeline.organize(small_raw_pages)

        fresh = generate_benchmark(config=small_config(seed=99))
        correct = 0
        total = 0
        for raw in fresh.raw_pages()[:40]:
            cluster_index = pipeline.classify(raw, result)
            cluster = result.clusters[cluster_index]
            labels = [p.label for p in cluster.pages]
            majority = max(set(labels), key=labels.count)
            total += 1
            if majority == raw.label:
                correct += 1
        assert correct / total > 0.6
