"""Shared fixtures.

Two corpora are available:

* ``small_web`` / ``small_pages`` — a reduced synthetic web (~64 form
  pages) for fast unit/integration tests;
* ``benchmark_web`` / ``benchmark_pages`` — the full 454-page benchmark,
  built once per session, for tests that audit the paper-profile
  properties.
"""

import pytest

from repro.core.vectorizer import FormPageVectorizer
from repro.webgen.config import GeneratorConfig
from repro.webgen.corpus import generate_benchmark


def small_config(seed: int = 7) -> GeneratorConfig:
    """A scaled-down generator config for fast tests."""
    return GeneratorConfig(
        pages_per_domain={
            "airfare": 9, "auto": 8, "book": 8, "hotel": 9,
            "job": 8, "movie": 8, "music": 8, "rental": 6,
        },
        single_attribute_per_domain=2,
        mixed_entertainment_pages=2,
        small_hubs_per_domain=6,
        medium_hubs_per_domain=3,
        n_directories=15,
        n_travel_portals=2,
        seed=seed,
    )


@pytest.fixture(scope="session")
def small_web():
    return generate_benchmark(config=small_config())


@pytest.fixture(scope="session")
def small_raw_pages(small_web):
    return small_web.raw_pages()


@pytest.fixture(scope="session")
def small_pages(small_raw_pages):
    return FormPageVectorizer().fit_transform(small_raw_pages)


@pytest.fixture(scope="session")
def small_gold(small_pages):
    return [page.label for page in small_pages]


@pytest.fixture(scope="session")
def benchmark_web():
    return generate_benchmark(seed=42)


@pytest.fixture(scope="session")
def benchmark_raw_pages(benchmark_web):
    return benchmark_web.raw_pages()


@pytest.fixture(scope="session")
def benchmark_pages(benchmark_raw_pages):
    return FormPageVectorizer().fit_transform(benchmark_raw_pages)


@pytest.fixture(scope="session")
def benchmark_gold(benchmark_pages):
    return [page.label for page in benchmark_pages]
