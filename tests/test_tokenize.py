"""Tests for repro.text.tokenize."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import (
    MAX_TOKEN_LEN,
    MIN_TOKEN_LEN,
    iter_tokens,
    split_identifier,
    tokenize,
)


class TestTokenize:
    def test_simple_sentence(self):
        assert tokenize("Find Cheap Flights") == ["find", "cheap", "flights"]

    def test_punctuation_is_dropped(self):
        assert tokenize("Hello, world! (really)") == ["hello", "world", "really"]

    def test_numbers_are_dropped(self):
        assert tokenize("Under $5,000 in 2006") == ["under", "in"]

    def test_apostrophes_are_collapsed(self):
        assert tokenize("don't") == ["dont"]

    def test_single_letters_are_dropped(self):
        assert tokenize("a b c word") == ["word"]

    def test_overlong_tokens_are_dropped(self):
        giant = "x" * (MAX_TOKEN_LEN + 1)
        assert tokenize(f"{giant} ok") == ["ok"]

    def test_boundary_lengths_kept(self):
        lower = "a" * MIN_TOKEN_LEN
        upper = "b" * MAX_TOKEN_LEN
        assert tokenize(f"{lower} {upper}") == [lower, upper]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \n\t ") == []

    def test_mixed_case_lowercased(self):
        assert tokenize("JoB CaTegory") == ["job", "category"]

    def test_iter_tokens_matches_tokenize(self):
        text = "Search for hotels in New York"
        assert list(iter_tokens(text)) == tokenize(text)

    def test_html_entity_residue(self):
        # Tokenizer operates on already-unescaped text; raw fragments
        # still produce reasonable words.
        assert "amp" in tokenize("fish &amp; chips")


class TestSplitIdentifier:
    def test_camel_case(self):
        assert split_identifier("jobCategory") == ["job", "category"]

    def test_snake_case(self):
        assert split_identifier("pick_up_location") == ["pick", "up", "location"]

    def test_kebab_case(self):
        assert split_identifier("car-make") == ["car", "make"]

    def test_plain_word(self):
        assert split_identifier("keyword") == ["keyword"]

    def test_numbers_stripped(self):
        assert split_identifier("field2name") == ["field", "name"]


class TestTokenizeProperties:
    @given(st.text(max_size=300))
    def test_tokens_are_lowercase_alpha(self, text):
        for token in tokenize(text):
            assert token.isalpha()
            assert token == token.lower()

    @given(st.text(max_size=300))
    def test_token_lengths_bounded(self, text):
        for token in tokenize(text):
            assert MIN_TOKEN_LEN <= len(token) <= MAX_TOKEN_LEN

    @given(st.text(max_size=200))
    def test_tokenize_is_idempotent_on_joined_output(self, text):
        tokens = tokenize(text)
        assert tokenize(" ".join(tokens)) == tokens
