"""FormDirectory tests — locking, caching, batching, concurrency.

The hammer tests drive real threads against one directory: classifiers
race against a mutator, and the assertions check the invariants the
service guarantees (no lost updates, no stale cache hits, batched and
unbatched classification agreeing).
"""

import threading

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.service.directory import (
    ClassifyOutcome,
    FormDirectory,
    RWLock,
    content_hash,
)
from repro.service.snapshot import build_snapshot


SMALL_CONFIG = CAFCConfig(k=8, min_hub_cardinality=3)


@pytest.fixture(scope="module")
def small_snapshot(small_raw_pages):
    pipeline = CAFCPipeline(SMALL_CONFIG)
    result = pipeline.organize(small_raw_pages)
    return build_snapshot(result, pipeline.vectorizer, SMALL_CONFIG)


def make_directory(snapshot, **kwargs):
    kwargs.setdefault("auto_recluster", False)
    return FormDirectory.from_snapshot(snapshot, **kwargs)


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        lock.acquire_read()
        acquired = threading.Event()

        def second_reader():
            lock.acquire_read()
            acquired.set()
            lock.release_read()

        thread = threading.Thread(target=second_reader)
        thread.start()
        assert acquired.wait(2.0), "second reader should not block"
        lock.release_read()
        thread.join()

    def test_writer_excludes_readers(self):
        lock = RWLock()
        lock.acquire_write()
        progressed = threading.Event()

        def reader():
            lock.acquire_read()
            progressed.set()
            lock.release_read()

        thread = threading.Thread(target=reader)
        thread.start()
        assert not progressed.wait(0.1), "reader entered during write"
        lock.release_write()
        assert progressed.wait(2.0)
        thread.join()

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_in = threading.Event()
        reader_in = threading.Event()

        def writer():
            lock.acquire_write()
            writer_in.set()
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            reader_in.set()
            lock.release_read()

        wt = threading.Thread(target=writer)
        wt.start()
        # Give the writer time to queue up, then start a late reader:
        # writer preference means it must wait behind the writer.
        while not lock._writers_waiting:
            pass
        rt = threading.Thread(target=late_reader)
        rt.start()
        assert not reader_in.wait(0.1), "late reader jumped the writer queue"
        lock.release_read()
        assert writer_in.wait(2.0)
        assert reader_in.wait(2.0)
        wt.join()
        rt.join()


class TestClassify:
    def test_basic_outcome(self, small_snapshot, small_raw_pages):
        with make_directory(small_snapshot) as directory:
            outcome = directory.classify(small_raw_pages[0])
            assert isinstance(outcome, ClassifyOutcome)
            assert 0 <= outcome.cluster < len(directory.organizer.clusters)
            assert outcome.similarity > 0.0
            assert outcome.top_terms
            assert not outcome.cached

    def test_repeat_is_cached(self, small_snapshot, small_raw_pages):
        with make_directory(small_snapshot) as directory:
            first = directory.classify(small_raw_pages[1])
            second = directory.classify(small_raw_pages[1])
            assert second.cached
            assert second.cluster == first.cluster
            assert second.similarity == first.similarity

    def test_batched_matches_unbatched(self, small_snapshot, small_raw_pages):
        with make_directory(small_snapshot, batch_window_ms=None) as plain, \
                make_directory(small_snapshot, batch_window_ms=2.0) as batched:
            for raw in small_raw_pages:
                want = plain.classify(raw)
                got = batched.classify(raw)
                assert got.cluster == want.cluster, raw.url
                assert got.similarity == pytest.approx(
                    want.similarity, abs=1e-9
                )

    def test_mutation_invalidates_cache(self, small_snapshot, small_raw_pages):
        with make_directory(small_snapshot) as directory:
            probe = small_raw_pages[2]
            directory.classify(probe)
            assert directory.classify(probe).cached
            generation = directory.generation
            directory.add(small_raw_pages[3])
            assert directory.generation == generation + 1
            refreshed = directory.classify(probe)
            assert not refreshed.cached, "cache served a pre-mutation answer"

    def test_classify_after_close_raises(self, small_snapshot, small_raw_pages):
        directory = make_directory(small_snapshot, batch_window_ms=1.0)
        directory.close()
        with pytest.raises(RuntimeError, match="closed"):
            directory.classify(small_raw_pages[0])

    def test_cache_disabled(self, small_snapshot, small_raw_pages):
        with make_directory(small_snapshot, cache_size=0) as directory:
            directory.classify(small_raw_pages[0])
            assert not directory.classify(small_raw_pages[0]).cached


class TestMutations:
    def test_add_and_remove(self, small_snapshot, small_raw_pages):
        with make_directory(small_snapshot) as directory:
            before = len(directory.organizer)
            raw = small_raw_pages[4]
            directory.remove(raw.url)  # make room in case it's managed
            base = len(directory.organizer)
            index, size = directory.add(raw)
            assert len(directory.organizer) == base + 1
            assert directory.organizer.clusters[index].size == size
            assert directory.remove(raw.url)
            assert not directory.remove("http://nowhere.example/missing")
            del before

    def test_recluster_bumps_generation(self, small_snapshot):
        with make_directory(small_snapshot) as directory:
            generation = directory.generation
            moved = directory.recluster()
            assert moved >= 0
            assert directory.generation == generation + 1
            assert directory.n_reclusters == 1


class TestViews:
    def test_search_finds_flight_cluster(self, small_snapshot):
        with make_directory(small_snapshot) as directory:
            hits = directory.search("flight airfare", n=3)
            assert hits
            assert hits[0]["score"] > 0
            assert "flight" in hits[0]["matched_terms"] or (
                "airfar" in hits[0]["matched_terms"]
            )

    def test_clusters_summary_shape(self, small_snapshot):
        with make_directory(small_snapshot) as directory:
            summary = directory.clusters_summary(max_urls=2)
            assert len(summary) == len(directory.organizer.clusters)
            for entry in summary:
                assert len(entry["urls"]) <= 2
                assert entry["size"] >= len(entry["urls"])

    def test_stats_shape(self, small_snapshot):
        with make_directory(small_snapshot) as directory:
            stats = directory.stats()
            assert stats["pages"] == len(directory.organizer)
            assert stats["clusters"] == len(directory.organizer.clusters)
            assert stats["generation"] == 0
            assert stats["engine"]["backend"]

    def test_content_hash_sensitivity(self, small_raw_pages):
        base = small_raw_pages[0]
        assert content_hash(base) == content_hash(base)
        tweaked = type(base)(
            url=base.url,
            html=base.html + " ",
            backlinks=list(base.backlinks),
            label=base.label,
            anchor_texts=list(base.anchor_texts),
        )
        assert content_hash(base) != content_hash(tweaked)


class TestConcurrencyHammer:
    """Classify from many threads while one thread adds and removes."""

    N_CLASSIFIERS = 8
    ROUNDS = 6

    def test_hammer(self, small_snapshot, small_raw_pages):
        with make_directory(
            small_snapshot, batch_window_ms=1.0, cache_size=64
        ) as directory:
            stop = threading.Event()
            errors = []
            served = []
            served_lock = threading.Lock()

            probes = small_raw_pages[: self.N_CLASSIFIERS]
            churn = small_raw_pages[self.N_CLASSIFIERS:
                                    self.N_CLASSIFIERS + 4]

            def classifier(raw):
                while not stop.is_set():
                    try:
                        outcome = directory.classify(raw, timeout=30.0)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return
                    with served_lock:
                        served.append(outcome)

            def mutator():
                try:
                    for _ in range(self.ROUNDS):
                        for raw in churn:
                            directory.remove(raw.url)
                        for raw in churn:
                            directory.add(raw)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                finally:
                    stop.set()

            threads = [
                threading.Thread(target=classifier, args=(raw,))
                for raw in probes
            ]
            threads.append(threading.Thread(target=mutator))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
                assert not thread.is_alive(), "hammer thread hung"

            assert not errors, errors
            assert served, "classifiers never got a response"
            n_clusters = len(directory.organizer.clusters)
            for outcome in served:
                assert 0 <= outcome.cluster < n_clusters

            # No lost updates: every churn page must be managed exactly
            # once after the final add round.
            for raw in churn:
                assert raw.url in directory.organizer

            # Cache coherence: whatever the cache now returns must equal
            # a fresh scoring of the final state.
            for raw in probes:
                cached = directory.classify(raw)
                page = directory.vectorizer.transform_new(raw)
                want_cluster, want_similarity = (
                    directory.organizer.classify_vectorized(page)
                )
                assert cached.cluster == want_cluster, raw.url
                assert cached.similarity == pytest.approx(
                    want_similarity, abs=1e-9
                )

    def test_coalescing_under_concurrency(
        self, small_snapshot, small_raw_pages
    ):
        """16 concurrent clients: strictly fewer engine batches than
        requests, with every answer matching the unbatched reference."""
        n_clients = 16
        probes = small_raw_pages[:n_clients]
        with make_directory(small_snapshot, batch_window_ms=None,
                            cache_size=0) as reference:
            expected = {
                raw.url: reference.classify(raw).cluster for raw in probes
            }

        with make_directory(
            small_snapshot, batch_window_ms=25.0, cache_size=0
        ) as directory:
            barrier = threading.Barrier(n_clients)
            outcomes = {}
            errors = []
            lock = threading.Lock()

            def client(raw):
                try:
                    barrier.wait(timeout=30.0)
                    outcome = directory.classify(raw, timeout=60.0)
                    with lock:
                        outcomes[raw.url] = outcome
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(raw,)) for raw in probes
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not errors, errors
            assert len(outcomes) == n_clients

            requests = directory._m_requests.value
            batches = directory._m_batches.value
            assert requests == n_clients
            assert batches < requests, (
                f"no coalescing: {batches} batches for {requests} requests"
            )
            assert max(o.batch_size for o in outcomes.values()) > 1

            for url, outcome in outcomes.items():
                assert outcome.cluster == expected[url], url


class TestIngestMetrics:
    def test_ingest_workers_label_tracks_live_executor(self, small_snapshot):
        # Regression: the executor label was bound once at metrics
        # registration, so a later ingest under a different executor
        # misreported forever.  Each executor kind now has its own
        # child, resolved against the live stats at scrape time.
        with make_directory(small_snapshot, cache_size=0) as directory:
            ingest = directory.vectorizer.ingest_stats
            text = directory.metrics.render()
            assert 'repro_ingest_workers{executor="serial"} 1' in text
            assert 'repro_ingest_workers{executor="process"} 0' in text

            ingest.executor = "process"
            ingest.workers = 4
            text = directory.metrics.render()
            assert 'repro_ingest_workers{executor="process"} 4' in text
            assert 'repro_ingest_workers{executor="serial"} 0' in text
