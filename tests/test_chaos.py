"""Chaos soaks: seeded fault plans over a real corpus.

Two invariants, both from docs/RESILIENCE.md:

* **No-fault parity** — running corpus assembly through the resilient
  wrapper with nothing armed yields *identical* raw pages (hence
  identical vectors, entropy and F-measure downstream): the hardening
  adds no reordering, caching, or loss.
* **Faults never crash the pipeline** — under `FaultPlan.default_chaos`
  (and even a permanently dead backlink API) CAFC-CH completes or
  degrades to CAFC-C with a warning, the directory keeps serving, and
  the health/metrics endpoints keep rendering.
"""

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.resilience import (
    FaultError,
    FaultPlan,
    FaultSpec,
    FlakySearchEngine,
    ResilientSearchEngine,
    RetryError,
    active_plan,
)
from repro.service.directory import FormDirectory
from repro.service.snapshot import build_snapshot


SMALL_CONFIG = CAFCConfig(k=8, min_hub_cardinality=3)

CHAOS_SEEDS = (3, 7, 11)


def no_sleep(_delay: float) -> None:
    """Backoff without wall-clock time."""


def resilient_over(engine, plan):
    return ResilientSearchEngine(FlakySearchEngine(engine, plan), sleep=no_sleep)


# ---------------------------------------------------------------------
# Corpus assembly through the wrappers.
# ---------------------------------------------------------------------


class TestNoFaultParity:
    def test_resilient_raw_pages_identical_to_plain(self, small_web):
        plain = small_web.raw_pages()
        wrapped = small_web.raw_pages(
            engine=ResilientSearchEngine(
                small_web.search_engine(), sleep=no_sleep
            )
        )
        assert wrapped == plain

    def test_unfired_plan_identical_to_plain(self, small_web):
        plain = small_web.raw_pages()
        wrapped = small_web.raw_pages(
            engine=resilient_over(small_web.search_engine(), FaultPlan(seed=0))
        )
        assert wrapped == plain

    def test_parity_implies_identical_clustering(self, small_web):
        plain = CAFCPipeline(SMALL_CONFIG).organize(small_web.raw_pages())
        wrapped_raw = small_web.raw_pages(
            engine=ResilientSearchEngine(
                small_web.search_engine(), sleep=no_sleep
            )
        )
        wrapped = CAFCPipeline(SMALL_CONFIG).organize(wrapped_raw)
        assert [c.urls for c in wrapped.clusters] == (
            [c.urls for c in plain.clusters]
        )
        assert not wrapped.degraded


class TestChaosPipeline:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_default_chaos_never_crashes_the_pipeline(self, small_web, seed):
        plan = FaultPlan.default_chaos(seed)
        raw = small_web.raw_pages(
            engine=resilient_over(small_web.search_engine(), plan)
        )
        assert len(raw) == len(small_web.raw_pages())
        result = CAFCPipeline(SMALL_CONFIG).organize(raw)
        assert result.n_clusters == SMALL_CONFIG.k
        assert result.n_pages == len(raw)

    def test_dead_backlink_api_degrades_gracefully(self, small_web):
        plan = FaultPlan(
            [FaultSpec("search.link_query", "permanent")], seed=0
        )
        raw = small_web.raw_pages(
            engine=resilient_over(small_web.search_engine(), plan)
        )
        assert all(page.backlinks == [] for page in raw)
        result = CAFCPipeline(SMALL_CONFIG).organize(raw)
        # Every hub vanished: the pipeline must fall back, not fail.
        assert result.degraded
        assert result.n_clusters == SMALL_CONFIG.k
        assert "fallback" in result.algorithm

    def test_same_seed_same_degradation(self, small_web):
        def harvest(seed):
            engine = resilient_over(
                small_web.search_engine(), FaultPlan.default_chaos(seed)
            )
            pages = small_web.raw_pages(engine=engine)
            return [page.backlinks for page in pages], engine.report.as_dict()

        first_links, first_report = harvest(7)
        second_links, second_report = harvest(7)
        assert first_links == second_links
        assert first_report == second_report


# ---------------------------------------------------------------------
# The directory under an ambient plan.
# ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_snapshot(small_raw_pages):
    pipeline = CAFCPipeline(SMALL_CONFIG)
    result = pipeline.organize(small_raw_pages)
    return build_snapshot(result, pipeline.vectorizer, SMALL_CONFIG)


class TestChaosDirectory:
    def test_directory_serves_through_default_chaos(
        self, small_snapshot, small_raw_pages, tmp_path
    ):
        directory = FormDirectory.from_snapshot(
            small_snapshot,
            auto_recluster=False,
            batch_window_ms=None,
            cache_size=0,
            journal=str(tmp_path / "chaos.wal"),
        )
        probes = small_raw_pages[:20]
        served = failed = 0
        with active_plan(FaultPlan.default_chaos(11)):
            for raw in probes:
                try:
                    outcome = directory.classify(raw)
                    assert 0 <= outcome.cluster < SMALL_CONFIG.k
                    served += 1
                except (RetryError, FaultError):
                    # A request may die in the resilience layer (503 at
                    # the HTTP face) — the directory must not corrupt.
                    failed += 1
            for raw in probes[:3]:
                try:
                    directory.add(raw)
                except (RetryError, FaultError):
                    pass
        assert served + failed == len(probes)
        assert served > 0

        # Disarmed, everything works and the state graded sanely.
        outcome = directory.classify(small_raw_pages[21])
        assert 0 <= outcome.cluster < SMALL_CONFIG.k
        stats = directory.stats()
        assert stats["state"] in ("ok", "degraded")
        assert stats["resilience"]["journaled"] is True

        rendered = directory.metrics.render()
        assert "faults_injected_total" in rendered
        assert "circuit_state" in rendered
        assert "degraded_mode" in rendered
        directory.close()

    def test_snapshot_save_faults_surface_cleanly(
        self, small_snapshot, tmp_path
    ):
        directory = FormDirectory.from_snapshot(
            small_snapshot, auto_recluster=False, batch_window_ms=None
        )
        plan = FaultPlan([FaultSpec("snapshot.save", "transient")], seed=0)
        target = tmp_path / "never.json.gz"
        with active_plan(plan):
            with pytest.raises(FaultError):
                directory.checkpoint(target)
        assert not target.exists()
        # The failure left the directory serving.
        assert directory.health_state() == "ok"
        directory.checkpoint(target)
        assert target.exists()
        directory.close()
