"""Tests for hierarchical agglomerative clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.hac import (
    Linkage,
    hac,
    hac_from_groups,
    hac_points,
    similarity_matrix,
)


def block_matrix():
    """Two obvious blocks: {0,1,2} similar, {3,4} similar, cross ~0."""
    matrix = np.full((5, 5), 0.05)
    for group in ([0, 1, 2], [3, 4]):
        for i in group:
            for j in group:
                matrix[i, j] = 0.9
    np.fill_diagonal(matrix, 1.0)
    return matrix


class TestBasicAgglomeration:
    @pytest.mark.parametrize("linkage", list(Linkage))
    def test_two_blocks_found(self, linkage):
        result = hac(block_matrix(), n_clusters=2, linkage=linkage)
        clusters = sorted(sorted(m) for m in result.clustering.clusters)
        assert clusters == [[0, 1, 2], [3, 4]]

    def test_merge_history_length(self):
        result = hac(block_matrix(), n_clusters=2)
        assert len(result.merges) == 3  # 5 -> 2 clusters

    def test_merges_monotone_similarity_average(self):
        # With clean block structure, within-block merges precede the
        # cross-block merge.
        result = hac(block_matrix(), n_clusters=1)
        assert result.merges[-1].similarity < result.merges[0].similarity

    def test_cut_at_n(self):
        result = hac(block_matrix(), n_clusters=5)
        assert result.clustering.n_clusters == 5
        assert not result.merges

    def test_cut_at_one(self):
        result = hac(block_matrix(), n_clusters=1)
        assert result.clustering.n_clusters == 1
        assert result.clustering.clusters[0] == [0, 1, 2, 3, 4]


class TestValidation:
    def test_non_square_matrix_rejected(self):
        with pytest.raises(ValueError):
            hac(np.zeros((2, 3)), 1)

    def test_bad_n_clusters_rejected(self):
        with pytest.raises(ValueError):
            hac(block_matrix(), 0)
        with pytest.raises(ValueError):
            hac(block_matrix(), 6)

    def test_empty_matrix(self):
        result = hac(np.zeros((0, 0)), 1)
        assert result.clustering.n_clusters == 0


class TestLinkageSemantics:
    def test_single_linkage_chains(self):
        # A chain 0-1-2 with decreasing sims; single linkage merges the
        # chain before the isolated point 3 joins.
        matrix = np.array(
            [
                [1.0, 0.9, 0.1, 0.0],
                [0.9, 1.0, 0.8, 0.0],
                [0.1, 0.8, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        result = hac(matrix, n_clusters=2, linkage=Linkage.SINGLE)
        clusters = sorted(sorted(m) for m in result.clustering.clusters)
        assert clusters == [[0, 1, 2], [3]]

    def test_complete_linkage_resists_chaining(self):
        matrix = np.array(
            [
                [1.0, 0.9, 0.1, 0.05],
                [0.9, 1.0, 0.8, 0.05],
                [0.1, 0.8, 1.0, 0.6],
                [0.05, 0.05, 0.6, 1.0],
            ]
        )
        result = hac(matrix, n_clusters=2, linkage=Linkage.COMPLETE)
        clusters = sorted(sorted(m) for m in result.clustering.clusters)
        assert [0, 1] in clusters

    def test_average_is_exact_mean_pairwise(self):
        # After merging {0,1}, average-linkage sim to 2 must equal the
        # mean of sim(0,2) and sim(1,2); verify via the merge order it
        # induces.
        matrix = np.array(
            [
                [1.0, 0.9, 0.5, 0.0],
                [0.9, 1.0, 0.1, 0.0],
                [0.5, 0.1, 1.0, 0.35],
                [0.0, 0.0, 0.35, 1.0],
            ]
        )
        # mean({0,1},2) = 0.3 < sim(2,3)=0.35 so 2 joins 3 first.
        result = hac(matrix, n_clusters=2, linkage=Linkage.AVERAGE)
        clusters = sorted(sorted(m) for m in result.clustering.clusters)
        assert clusters == [[0, 1], [2, 3]]


class TestSimilarityMatrix:
    def test_symmetric_with_unit_diagonal(self):
        points = [1.0, 2.0, 5.0]
        matrix = similarity_matrix(points, lambda a, b: -abs(a - b))
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_hac_points_wrapper(self):
        points = [0.0, 0.1, 10.0, 10.1]
        result = hac_points(
            points, 2, lambda a, b: 1.0 / (1.0 + abs(a - b))
        )
        clusters = sorted(sorted(m) for m in result.clustering.clusters)
        assert clusters == [[0, 1], [2, 3]]


class TestHacFromGroups:
    def test_groups_respected(self):
        result = hac_from_groups(block_matrix(), [[0, 1, 2], [3, 4]], 2)
        clusters = sorted(sorted(m) for m in result.clustering.clusters)
        assert clusters == [[0, 1, 2], [3, 4]]

    def test_uncovered_points_become_singletons(self):
        result = hac_from_groups(block_matrix(), [[0, 1]], 3)
        sizes = sorted(result.clustering.sizes(), reverse=True)
        assert sum(sizes) == 5

    def test_groups_can_merge(self):
        result = hac_from_groups(block_matrix(), [[0, 1], [2], [3, 4]], 2)
        clusters = sorted(sorted(m) for m in result.clustering.clusters)
        assert clusters == [[0, 1, 2], [3, 4]]

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError):
            hac_from_groups(block_matrix(), [[0, 1], [1, 2]], 2)

    def test_bad_cut_rejected(self):
        with pytest.raises(ValueError):
            hac_from_groups(block_matrix(), [[0, 1, 2, 3, 4]], 2)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=1000))
    def test_partition_invariant(self, n, seed):
        rng = np.random.default_rng(seed)
        raw = rng.random((n, n))
        matrix = (raw + raw.T) / 2
        np.fill_diagonal(matrix, 1.0)
        k = int(rng.integers(1, n + 1))
        result = hac(matrix, k)
        members = sorted(i for cluster in result.clustering.clusters for i in cluster)
        assert members == list(range(n))
        assert result.clustering.n_clusters == k
