"""Tests for the C1/C2 weight-ratio ablation experiment."""

import pytest

from repro.core.config import CAFCConfig
from repro.core.hubs import build_hub_clusters
from repro.experiments import weight_ratio
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="module")
def small_context(small_web, small_raw_pages, small_pages, small_gold):
    return ExperimentContext(
        web=small_web,
        raw_pages=small_raw_pages,
        pages=small_pages,
        gold_labels=small_gold,
        raw_hub_clusters=build_hub_clusters(small_pages, min_cardinality=1),
        config=CAFCConfig(k=8, min_hub_cardinality=3),
    )


class TestWeightRatio:
    def test_sweep_covers_requested_ratios(self, small_context):
        result = weight_ratio.run_weight_ratio(
            small_context, ratios=((2.0, 1.0), (1.0, 1.0), (1.0, 2.0))
        )
        assert [point.label for point in result.points] == ["2:1", "1:1", "1:2"]

    def test_balanced_lookup(self, small_context):
        result = weight_ratio.run_weight_ratio(
            small_context, ratios=((1.0, 1.0), (1.0, 3.0))
        )
        assert result.balanced().label == "1:1"

    def test_balanced_missing_raises(self, small_context):
        result = weight_ratio.run_weight_ratio(
            small_context, ratios=((2.0, 1.0),)
        )
        with pytest.raises(ValueError):
            result.balanced()

    def test_best_is_minimum_entropy(self, small_context):
        result = weight_ratio.run_weight_ratio(small_context)
        best = result.best()
        assert all(best.entropy <= point.entropy for point in result.points)

    def test_shape_holds_on_small_corpus(self, small_context):
        result = weight_ratio.run_weight_ratio(small_context)
        assert weight_ratio.check_shape(result, tolerance=0.15) == []

    def test_format(self, small_context):
        result = weight_ratio.run_weight_ratio(
            small_context, ratios=((1.0, 1.0),)
        )
        assert "C1:C2" in weight_ratio.format_weight_ratio(result)
