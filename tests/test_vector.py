"""Tests for sparse vectors (repro.vsm.vector) — including property-based
algebra checks."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vsm.vector import (
    SparseVector,
    accumulate,
    cosine_similarity,
    mean_vector,
)

weights_strategy = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c", "d", "e", "f"]),
    values=st.floats(min_value=-100, max_value=100, allow_nan=False),
    max_size=6,
)
vectors = weights_strategy.map(SparseVector)
nonneg_weights = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c", "d", "e", "f"]),
    values=st.floats(min_value=0.001, max_value=100, allow_nan=False),
    max_size=6,
)
nonneg_vectors = nonneg_weights.map(SparseVector)


class TestBasics:
    def test_zero_weights_dropped(self):
        vector = SparseVector({"a": 1.0, "b": 0.0})
        assert len(vector) == 1
        assert "b" not in vector

    def test_getitem_default_zero(self):
        vector = SparseVector({"a": 2.0})
        assert vector["a"] == 2.0
        assert vector["missing"] == 0.0

    def test_bool(self):
        assert not SparseVector()
        assert SparseVector({"a": 1.0})

    def test_equality(self):
        assert SparseVector({"a": 1.0}) == SparseVector({"a": 1.0})
        assert SparseVector({"a": 1.0}) != SparseVector({"a": 2.0})
        assert SparseVector({"a": 1.0}) != "not a vector"

    def test_iteration_and_items(self):
        vector = SparseVector({"a": 1.0, "b": 2.0})
        assert set(vector) == {"a", "b"}
        assert dict(vector.items()) == {"a": 1.0, "b": 2.0}

    def test_repr_mentions_nnz(self):
        assert "nnz=2" in repr(SparseVector({"a": 1.0, "b": 2.0}))


class TestAlgebra:
    def test_norm(self):
        assert SparseVector({"a": 3.0, "b": 4.0}).norm() == pytest.approx(5.0)

    def test_norm_empty(self):
        assert SparseVector().norm() == 0.0

    def test_dot_disjoint(self):
        assert SparseVector({"a": 1.0}).dot(SparseVector({"b": 1.0})) == 0.0

    def test_dot_overlapping(self):
        a = SparseVector({"x": 2.0, "y": 3.0})
        b = SparseVector({"y": 4.0, "z": 5.0})
        assert a.dot(b) == pytest.approx(12.0)

    def test_scale(self):
        scaled = SparseVector({"a": 2.0}).scale(2.5)
        assert scaled["a"] == pytest.approx(5.0)

    def test_scale_by_zero_gives_empty(self):
        assert len(SparseVector({"a": 2.0}).scale(0.0)) == 0

    def test_add(self):
        total = SparseVector({"a": 1.0}).add(SparseVector({"a": 2.0, "b": 3.0}))
        assert total["a"] == pytest.approx(3.0)
        assert total["b"] == pytest.approx(3.0)

    def test_add_cancellation_drops_term(self):
        total = SparseVector({"a": 1.0}).add(SparseVector({"a": -1.0}))
        assert "a" not in total

    def test_normalized(self):
        unit = SparseVector({"a": 3.0, "b": 4.0}).normalized()
        assert unit.norm() == pytest.approx(1.0)

    def test_normalized_empty(self):
        assert SparseVector().normalized() == SparseVector()

    def test_top_terms(self):
        vector = SparseVector({"a": 1.0, "b": 3.0, "c": 2.0})
        assert [t for t, _ in vector.top_terms(2)] == ["b", "c"]

    def test_top_terms_tiebreak_alphabetical(self):
        vector = SparseVector({"z": 1.0, "a": 1.0})
        assert [t for t, _ in vector.top_terms(2)] == ["a", "z"]


class TestCosine:
    def test_identical_vectors(self):
        vector = SparseVector({"a": 1.0, "b": 2.0})
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(
            SparseVector({"a": 1.0}), SparseVector({"b": 1.0})
        ) == 0.0

    def test_empty_vector_zero(self):
        assert cosine_similarity(SparseVector(), SparseVector({"a": 1.0})) == 0.0
        assert cosine_similarity(SparseVector(), SparseVector()) == 0.0

    def test_scale_invariance(self):
        a = SparseVector({"x": 1.0, "y": 2.0})
        b = SparseVector({"x": 3.0, "y": 1.0})
        assert cosine_similarity(a, b) == pytest.approx(
            cosine_similarity(a.scale(7.0), b.scale(0.5))
        )


class TestAggregation:
    def test_accumulate(self):
        total = accumulate([SparseVector({"a": 1.0}), SparseVector({"a": 1.0, "b": 2.0})])
        assert total["a"] == pytest.approx(2.0)
        assert total["b"] == pytest.approx(2.0)

    def test_accumulate_empty(self):
        assert accumulate([]) == SparseVector()

    def test_mean_vector(self):
        mean = mean_vector([SparseVector({"a": 2.0}), SparseVector({"a": 4.0})])
        assert mean["a"] == pytest.approx(3.0)

    def test_mean_vector_empty(self):
        assert mean_vector([]) == SparseVector()

    def test_mean_of_one_is_identity(self):
        vector = SparseVector({"a": 1.5, "b": 2.5})
        assert mean_vector([vector]) == vector


class TestProperties:
    @given(vectors, vectors)
    def test_dot_commutative(self, a, b):
        assert a.dot(b) == pytest.approx(b.dot(a))

    @given(vectors)
    def test_norm_nonnegative(self, vector):
        assert vector.norm() >= 0.0

    @given(vectors)
    def test_cauchy_schwarz(self, vector):
        other = vector.scale(2.0)
        assert abs(vector.dot(other)) <= vector.norm() * other.norm() + 1e-6

    @given(nonneg_vectors, nonneg_vectors)
    def test_cosine_bounds_nonnegative_vectors(self, a, b):
        similarity = cosine_similarity(a, b)
        assert -1e-9 <= similarity <= 1.0 + 1e-9

    @given(vectors, vectors)
    def test_cosine_symmetric(self, a, b):
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(b, a))

    @given(vectors)
    def test_self_similarity_is_one(self, vector):
        if vector.norm() > 1e-6:
            assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    @given(vectors, vectors)
    def test_add_matches_manual_sum(self, a, b):
        total = a.add(b)
        for term in set(a) | set(b):
            assert total[term] == pytest.approx(a[term] + b[term])

    @given(st.lists(nonneg_vectors, min_size=1, max_size=5))
    def test_mean_norm_bounded_by_max(self, vector_list):
        mean = mean_vector(vector_list)
        assert mean.norm() <= max(v.norm() for v in vector_list) + 1e-6
