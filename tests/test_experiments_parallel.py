"""The dependency-aware experiment executor, and run_all under it."""

import threading
import time

import pytest

from repro.experiments.parallel import ExperimentSpec, run_specs
from repro.experiments.run_all import run_all


class TestRunSpecs:
    def test_serial_respects_dependencies(self):
        order = []

        def make(name):
            def runner(*deps):
                order.append(name)
                return name
            return runner

        results = run_specs([
            ExperimentSpec("c", make("c"), deps=("a", "b")),
            ExperimentSpec("a", make("a")),
            ExperimentSpec("b", make("b"), deps=("a",)),
        ])
        assert results == {"a": "a", "b": "b", "c": "c"}
        assert order == ["a", "b", "c"]

    def test_dependency_results_passed_positionally(self):
        results = run_specs([
            ExperimentSpec("x", lambda: 2),
            ExperimentSpec("y", lambda: 3),
            ExperimentSpec("sum", lambda x, y: x + y, deps=("x", "y")),
        ])
        assert results["sum"] == 5

    def test_parallel_matches_serial(self):
        specs = [
            ExperimentSpec("base", lambda: 10),
            ExperimentSpec("double", lambda b: b * 2, deps=("base",)),
            ExperimentSpec("triple", lambda b: b * 3, deps=("base",)),
            ExperimentSpec(
                "total", lambda d, t: d + t, deps=("double", "triple")
            ),
        ]
        assert run_specs(specs, workers=4) == run_specs(specs, workers=1)

    def test_independent_nodes_overlap_under_workers(self):
        """Two dependency-free nodes actually run concurrently: each waits
        for the other to start before finishing."""
        barrier = threading.Barrier(2, timeout=5)

        def rendezvous():
            barrier.wait()
            return True

        started = time.perf_counter()
        results = run_specs(
            [ExperimentSpec("left", rendezvous),
             ExperimentSpec("right", rendezvous)],
            workers=2,
        )
        assert results == {"left": True, "right": True}
        assert time.perf_counter() - started < 5

    def test_graph_validation(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_specs([
                ExperimentSpec("a", lambda: 1),
                ExperimentSpec("a", lambda: 2),
            ])
        with pytest.raises(ValueError, match="unknown"):
            run_specs([ExperimentSpec("a", lambda: 1, deps=("ghost",))])
        with pytest.raises(ValueError, match="cycle"):
            run_specs([
                ExperimentSpec("a", lambda b: b, deps=("b",)),
                ExperimentSpec("b", lambda a: a, deps=("a",)),
            ])

    @pytest.mark.parametrize("workers", [1, 3])
    def test_runner_exception_propagates(self, workers):
        def boom(ok):
            raise RuntimeError("experiment failed")

        with pytest.raises(RuntimeError, match="experiment failed"):
            run_specs(
                [ExperimentSpec("ok", lambda: 1),
                 ExperimentSpec("bad", boom, deps=("ok",))],
                workers=workers,
            )


class TestRunAllParallel:
    def test_parallel_report_matches_serial(self):
        """The whole point of canonical-order assembly: the report text is
        byte-identical at any worker count."""
        serial = run_all(only="table1", n_runs=1, workers=1)
        threaded = run_all(only="table1", n_runs=1, workers=4)
        assert threaded == serial

    def test_header_names_executors(self):
        report = run_all(only="corpus_profile", n_runs=1, workers=2,
                         report_header=True)
        first_line = report.splitlines()[0]
        assert first_line.startswith("run: 1 experiment(s); executor: thread x2")
        assert "ingest:" in first_line
        # Without the flag, no header.
        assert "executor:" not in run_all(only="corpus_profile", n_runs=1)
