"""Deterministic k-way merge: the property the router's parity rests on.

The pinned property: for random scored collections with *forced score
ties*, merging ANY partition of the collection into sorted runs equals
sorting the whole collection — bit for bit, independent of how many
shards, which hits they got, and what order the runs arrive in.
"""

import random

import pytest

from repro.index import (
    assert_sorted,
    cluster_hit_key,
    merge_ranked,
    page_hit_key,
)

N_SEEDS = 50


def random_cluster_hits(rng, n):
    """Scored cluster hits with globally unique ids and many ties —
    scores drawn from a tiny grid so equal scores are the norm."""
    ids = rng.sample(range(n * 4), n)
    return [
        {"cluster": cid, "score": rng.choice([0.0, 0.25, 0.5, 0.5, 1.0]),
         "label": f"c{cid}"}
        for cid in ids
    ]


def random_page_hits(rng, n):
    urls = rng.sample(range(n * 4), n)
    return [
        {"url": f"http://site-{u}.example/form",
         "score": rng.choice([0.1, 0.1, 0.3, 0.9]),
         "cluster": rng.randrange(8)}
        for u in urls
    ]


def partition(rng, items, n_parts):
    """Random disjoint partition (some parts may be empty — a shard can
    legitimately hold nothing matching the query)."""
    parts = [[] for _ in range(n_parts)]
    for item in items:
        parts[rng.randrange(n_parts)].append(item)
    return parts


class TestMergeProperty:
    @pytest.mark.parametrize("scope,maker,key", [
        ("clusters", random_cluster_hits, cluster_hit_key),
        ("pages", random_page_hits, page_hit_key),
    ])
    def test_any_partition_merges_to_the_global_sort(
        self, scope, maker, key
    ):
        for seed in range(N_SEEDS):
            rng = random.Random(seed)
            collection = maker(rng, rng.randint(1, 40))
            reference = sorted(collection, key=key)
            for n_parts in (1, 2, 3, 5):
                runs = [
                    sorted(part, key=key)
                    for part in partition(rng, collection, n_parts)
                ]
                # Arrival order must not matter: shuffle the runs.
                rng.shuffle(runs)
                for n in (1, 3, len(collection), len(collection) + 5):
                    merged = merge_ranked(runs, n, key)
                    assert merged == reference[:n], (
                        f"seed {seed}, scope {scope}, parts {n_parts}, "
                        f"n {n}"
                    )

    def test_merge_is_bytewise_stable_across_repeats(self):
        """Same inputs → same *bytes* (float scores compared exactly)."""
        import json

        rng = random.Random(7)
        collection = random_page_hits(rng, 30)
        runs = [sorted(p, key=page_hit_key)
                for p in partition(rng, collection, 3)]
        first = json.dumps(merge_ranked(runs, 10, page_hit_key))
        for _ in range(5):
            shuffled = list(runs)
            rng.shuffle(shuffled)
            assert json.dumps(
                merge_ranked(shuffled, 10, page_hit_key)
            ) == first


class TestMergeEdges:
    def test_n_zero_and_negative(self):
        run = [{"cluster": 1, "score": 1.0}]
        assert merge_ranked([run], 0, cluster_hit_key) == []
        assert merge_ranked([run], -3, cluster_hit_key) == []

    def test_empty_runs(self):
        assert merge_ranked([], 5, cluster_hit_key) == []
        assert merge_ranked([[], []], 5, cluster_hit_key) == []

    def test_single_run_passthrough(self):
        run = sorted(
            random_cluster_hits(random.Random(1), 10), key=cluster_hit_key
        )
        assert merge_ranked([run], 4, cluster_hit_key) == run[:4]

    def test_key_is_score_desc_then_id_asc(self):
        hits = [
            {"cluster": 3, "score": 0.5},
            {"cluster": 1, "score": 0.5},
            {"cluster": 2, "score": 0.9},
        ]
        merged = merge_ranked(
            [sorted(hits, key=cluster_hit_key)], 3, cluster_hit_key
        )
        assert [h["cluster"] for h in merged] == [2, 1, 3]

    def test_assert_sorted_accepts_and_rejects(self):
        good = sorted(
            random_page_hits(random.Random(2), 8), key=page_hit_key
        )
        assert_sorted(good, page_hit_key)
        bad = list(reversed(good))
        with pytest.raises(ValueError, match="not sorted"):
            assert_sorted(bad, page_hit_key)
