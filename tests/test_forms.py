"""Tests for form extraction (repro.html.forms)."""

from repro.html.forms import extract_forms
from repro.html.parser import parse_html

JOB_FORM = """
<html><body>
<form action="/search" method="GET">
  <label for="cat">Job Category</label>
  <select name="cat" id="cat">
    <option value="eng">Engineering</option>
    <option value="sales">Sales</option>
  </select>
  <input type="text" name="kw">
  <input type="hidden" name="sid" value="abc">
  <input type="submit" value="Search Jobs">
</form>
</body></html>
"""

LOGIN_FORM = """
<form action="/login" method="post">
  <input type="text" name="user">
  <input type="password" name="pw">
  <input type="submit" value="Sign In">
</form>
"""


class TestExtraction:
    def test_form_found(self):
        forms = extract_forms(JOB_FORM)
        assert len(forms) == 1

    def test_action_and_method(self):
        form = extract_forms(JOB_FORM)[0]
        assert form.action == "/search"
        assert form.method == "get"

    def test_fields_enumerated(self):
        form = extract_forms(JOB_FORM)[0]
        tags = [f.tag for f in form.fields]
        assert tags == ["select", "input", "input", "input"]

    def test_select_options(self):
        form = extract_forms(JOB_FORM)[0]
        select = form.selects[0]
        assert [o.text for o in select.options] == ["Engineering", "Sales"]
        assert [o.value for o in select.options] == ["eng", "sales"]

    def test_label_association_by_for(self):
        form = extract_forms(JOB_FORM)[0]
        assert form.selects[0].label == "Job Category"

    def test_wrapping_label(self):
        html = "<form><label>Title <input type=text name=t></label></form>"
        form = extract_forms(html)[0]
        assert form.text_inputs[0].label.startswith("Title")

    def test_multiple_forms(self):
        forms = extract_forms(JOB_FORM + LOGIN_FORM)
        assert len(forms) == 2

    def test_no_forms(self):
        assert extract_forms("<p>nothing here</p>") == []

    def test_accepts_parsed_root(self):
        root = parse_html(JOB_FORM)
        assert len(extract_forms(root)) == 1


class TestFieldProperties:
    def test_hidden_field_detection(self):
        form = extract_forms(JOB_FORM)[0]
        hidden = [f for f in form.fields if f.is_hidden]
        assert len(hidden) == 1
        assert hidden[0].name == "sid"

    def test_visible_fields_exclude_hidden(self):
        form = extract_forms(JOB_FORM)[0]
        assert all(not f.is_hidden for f in form.visible_fields)

    def test_text_input_detection(self):
        form = extract_forms(JOB_FORM)[0]
        assert [f.name for f in form.text_inputs] == ["kw"]

    def test_textarea_is_text_input(self):
        form = extract_forms("<form><textarea name=c></textarea></form>")[0]
        assert form.text_inputs[0].tag == "textarea"

    def test_password_detection(self):
        form = extract_forms(LOGIN_FORM)[0]
        assert form.has_password_field

    def test_submit_detection(self):
        form = extract_forms(JOB_FORM)[0]
        submits = [f for f in form.fields if f.is_submit]
        assert len(submits) == 1

    def test_button_element_submit(self):
        form = extract_forms("<form><button>Go</button></form>")[0]
        assert form.fields[0].is_submit


class TestAttributeCount:
    def test_multi_attribute_count(self):
        form = extract_forms(JOB_FORM)[0]
        # select + text input; hidden and submit do not count.
        assert form.attribute_count == 2
        assert not form.is_single_attribute

    def test_single_attribute_keyword_form(self):
        html = '<form><input type=text name=q><input type=submit value=Go></form>'
        form = extract_forms(html)[0]
        assert form.attribute_count == 1
        assert form.is_single_attribute

    def test_hidden_fields_never_counted(self):
        html = (
            '<form><input type=text name=q>'
            '<input type=hidden name=a><input type=hidden name=b></form>'
        )
        assert extract_forms(html)[0].attribute_count == 1


class TestVisibleText:
    def test_form_visible_text_includes_labels_and_options(self):
        form = extract_forms(JOB_FORM)[0]
        assert "Job Category" in form.visible_text
        assert "Engineering" in form.visible_text

    def test_submit_caption_included(self):
        form = extract_forms(JOB_FORM)[0]
        assert "Search Jobs" in form.visible_text

    def test_hidden_value_excluded(self):
        form = extract_forms(JOB_FORM)[0]
        assert "abc" not in form.visible_text

    def test_option_text_collected_separately(self):
        form = extract_forms(JOB_FORM)[0]
        assert "Engineering" in form.option_text
        assert "Job Category" not in form.option_text

    def test_script_content_excluded(self):
        html = "<form><script>var x=1;</script><input type=text name=q></form>"
        form = extract_forms(html)[0]
        assert "var" not in form.visible_text

    def test_image_alt_included(self):
        html = '<form><img alt="search icon"><input type=text name=q></form>'
        form = extract_forms(html)[0]
        assert "search icon" in form.visible_text
