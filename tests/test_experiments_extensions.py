"""Tests for the extension experiments (robustness, vocabulary)."""

import pytest

from repro.core.config import CAFCConfig
from repro.core.hubs import build_hub_clusters
from repro.experiments import robustness, vocabulary
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="module")
def small_context(small_web, small_raw_pages, small_pages, small_gold):
    return ExperimentContext(
        web=small_web,
        raw_pages=small_raw_pages,
        pages=small_pages,
        gold_labels=small_gold,
        raw_hub_clusters=build_hub_clusters(small_pages, min_cardinality=1),
        config=CAFCConfig(k=8, min_hub_cardinality=3),
    )


class TestRobustness:
    def test_sweep_runs(self, small_context):
        result = robustness.run_robustness(
            small_context, coverages=(1.0, 0.5, 0.0), min_hub_cardinality=3
        )
        assert len(result.points) == 3

    def test_zero_coverage_falls_back(self, small_context):
        result = robustness.run_robustness(
            small_context, coverages=(0.0,), min_hub_cardinality=3
        )
        point = result.points[0]
        assert point.fell_back
        assert point.n_hub_clusters == 0

    def test_full_coverage_uses_hubs(self, small_context):
        result = robustness.run_robustness(
            small_context, coverages=(1.0,), min_hub_cardinality=3
        )
        assert not result.points[0].fell_back

    def test_hub_count_monotone(self, small_context):
        result = robustness.run_robustness(
            small_context, coverages=(1.0, 0.6, 0.2), min_hub_cardinality=3
        )
        counts = [p.n_hub_clusters for p in result.points]
        assert counts == sorted(counts, reverse=True)

    def test_format(self, small_context):
        result = robustness.run_robustness(
            small_context, coverages=(1.0, 0.0), min_hub_cardinality=3
        )
        assert "coverage" in robustness.format_robustness(result)

    def test_check_shape_clean(self, small_context):
        result = robustness.run_robustness(
            small_context, coverages=(1.0, 0.5, 0.0), min_hub_cardinality=3
        )
        assert robustness.check_shape(result) == []


class TestVocabulary:
    def test_study_runs(self, small_context):
        result = vocabulary.run_vocabulary(small_context, pages_per_domain=6)
        assert result.n_domains == 8
        assert result.anchors

    def test_paper_generic_stems_have_low_idf(self, small_context):
        result = vocabulary.run_vocabulary(small_context, pages_per_domain=6)
        for stem, idf in result.generic_idf.items():
            assert idf < 1.0, stem

    def test_every_domain_has_anchors(self, small_context):
        result = vocabulary.run_vocabulary(small_context, pages_per_domain=6)
        for domain_anchors in result.anchors:
            assert domain_anchors.anchors

    def test_airfare_anchor_is_flighty(self, small_context):
        result = vocabulary.run_vocabulary(small_context, pages_per_domain=6)
        airfare = next(a for a in result.anchors if a.domain == "airfare")
        top_terms = {term for term, _ in airfare.anchors}
        assert top_terms & {"flight", "airfar", "airlin", "fare"}

    def test_format(self, small_context):
        result = vocabulary.run_vocabulary(small_context, pages_per_domain=6)
        text = vocabulary.format_vocabulary(result)
        assert "generic stem" in text
        assert "anchor terms" in text

    def test_deterministic(self, small_context):
        first = vocabulary.run_vocabulary(small_context, pages_per_domain=6, seed=3)
        second = vocabulary.run_vocabulary(small_context, pages_per_domain=6, seed=3)
        assert first.generic_terms == second.generic_terms
