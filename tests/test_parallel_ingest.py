"""The parallel ingestion layer: planning, caching, parity, failure modes.

The load-bearing test here is the parity suite: whatever executor runs
the map phase — serial, thread pool, process pool, or a warm analysis
cache — the vectorizer must emit *bit-identical* output on the full
454-page benchmark corpus: same vocabulary insertion order, same
document frequencies, same float weights.  Everything downstream
(similarity, clustering, the paper's tables) inherits determinism from
this contract.
"""

import concurrent.futures
import pickle
import threading

import pytest

from repro.core.form_page import RawFormPage
from repro.core.vectorizer import FormPageVectorizer
from repro.parallel import (
    AnalysisCache,
    IngestError,
    PageAnalysis,
    ParallelConfig,
    analyze_form_page,
    analyze_pages,
    page_analysis_key,
    parallel_map,
)
from repro.parallel.cache import (
    analysis_from_json,
    analysis_to_json,
    analyzer_fingerprint,
)
from repro.parallel.config import MIN_AUTO_PARALLEL_PAGES
from repro.text.analyzer import TextAnalyzer


def _fingerprint_corpus(vectorizer, pages):
    """Everything that must match bit-for-bit between two ingestion runs:
    vocabulary *insertion order*, DF counts, N, and every vector item."""
    return (
        list(vectorizer.pc_corpus._document_frequency.items()),
        list(vectorizer.fc_corpus._document_frequency.items()),
        vectorizer.pc_corpus.document_count,
        [
            (
                page.url,
                sorted(page.pc.items()),
                sorted(page.fc.items()),
                page.pc_norm,
                page.fc_norm,
                page.attribute_count,
                page.form_term_count,
                page.page_term_count,
            )
            for page in pages
        ],
    )


def _fit(raw_pages, **parallel_kwargs):
    vectorizer = FormPageVectorizer(
        parallel=ParallelConfig(**parallel_kwargs) if parallel_kwargs else None
    )
    pages = vectorizer.fit_transform(raw_pages)
    return vectorizer, pages


# ----------------------------------------------------------------------
# Parity: the non-negotiable invariant, on the full benchmark corpus.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def serial_reference(benchmark_raw_pages):
    vectorizer, pages = _fit(
        benchmark_raw_pages, workers=1, executor="serial", use_cache=False
    )
    assert vectorizer.ingest_stats.executor == "serial"
    assert vectorizer.ingest_stats.pages_analyzed == len(benchmark_raw_pages)
    return _fingerprint_corpus(vectorizer, pages)


def test_process_pool_parity(benchmark_raw_pages, serial_reference):
    vectorizer, pages = _fit(
        benchmark_raw_pages,
        workers=2, executor="process", chunk_size=16, use_cache=False,
    )
    assert vectorizer.ingest_stats.executor == "process"
    assert vectorizer.ingest_stats.workers == 2
    assert _fingerprint_corpus(vectorizer, pages) == serial_reference


def test_thread_pool_parity(benchmark_raw_pages, serial_reference):
    vectorizer, pages = _fit(
        benchmark_raw_pages, workers=4, executor="thread", use_cache=False
    )
    assert vectorizer.ingest_stats.executor == "thread"
    assert _fingerprint_corpus(vectorizer, pages) == serial_reference


def test_memory_cache_parity(benchmark_raw_pages, serial_reference):
    """A second fit on the same vectorizer replays every analysis from the
    in-memory cache — zero re-parses, identical output."""
    vectorizer = FormPageVectorizer(
        parallel=ParallelConfig(workers=1),
        analysis_cache_size=len(benchmark_raw_pages),
    )
    vectorizer.fit_transform(benchmark_raw_pages)
    analyzed_first = vectorizer.ingest_stats.pages_analyzed

    warm = FormPageVectorizer(parallel=ParallelConfig(workers=1))
    warm._analysis_cache = vectorizer._analysis_cache
    pages = warm.fit_transform(benchmark_raw_pages)

    assert analyzed_first == len(benchmark_raw_pages)
    assert warm.ingest_stats.pages_analyzed == 0
    assert warm.ingest_stats.memory_cache_hits == len(benchmark_raw_pages)
    assert _fingerprint_corpus(warm, pages) == serial_reference


def test_disk_cache_parity(benchmark_raw_pages, serial_reference, tmp_path):
    cache_dir = str(tmp_path / "analysis-cache")
    cold, _ = _fit(benchmark_raw_pages, workers=1, cache_dir=cache_dir)
    assert cold.ingest_stats.pages_analyzed == len(benchmark_raw_pages)

    warm, pages = _fit(benchmark_raw_pages, workers=1, cache_dir=cache_dir)
    assert warm.ingest_stats.pages_analyzed == 0
    assert warm.ingest_stats.disk_cache_hits == len(benchmark_raw_pages)
    assert _fingerprint_corpus(warm, pages) == serial_reference


def test_raw_pages_parallel_harvest_identical(benchmark_web):
    serial = benchmark_web.raw_pages()
    threaded = benchmark_web.raw_pages(
        parallel=ParallelConfig(workers=4, executor="thread")
    )
    assert [p.url for p in threaded] == [p.url for p in serial]
    assert [p.backlinks for p in threaded] == [p.backlinks for p in serial]
    assert [p.html for p in threaded] == [p.html for p in serial]


# ----------------------------------------------------------------------
# Planning (ParallelConfig.resolve).
# ----------------------------------------------------------------------


def test_workers_one_never_spawns_a_pool(monkeypatch, small_raw_pages):
    """The satellite contract: workers=1 runs inline even when a pool
    executor is requested explicitly."""

    def boom(*args, **kwargs):
        raise AssertionError("a pool was spawned for workers=1")

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", boom)
    monkeypatch.setattr(concurrent.futures, "ThreadPoolExecutor", boom)
    for executor in ("process", "thread", "auto"):
        vectorizer, pages = _fit(
            small_raw_pages[:6], workers=1, executor=executor, use_cache=False
        )
        assert vectorizer.ingest_stats.executor == "serial"
        assert len(pages) == 6


def test_resolve_policy():
    assert ParallelConfig(workers=1, executor="process").resolve(500).is_serial
    assert ParallelConfig(workers=4, executor="serial").resolve(500).is_serial
    # auto: serial below the amortization threshold, process at scale.
    auto = ParallelConfig(workers=4, executor="auto")
    assert auto.resolve(MIN_AUTO_PARALLEL_PAGES - 1).is_serial
    assert auto.resolve(MIN_AUTO_PARALLEL_PAGES).kind == "process"
    # Forced pools always honor the request.
    plan = ParallelConfig(workers=3, executor="thread").resolve(10)
    assert (plan.kind, plan.workers) == ("thread", 3)
    assert 1 <= plan.chunk_size <= 10
    # Explicit chunk size wins; zero items degrade to serial.
    assert ParallelConfig(
        workers=2, executor="process", chunk_size=5
    ).resolve(100).chunk_size == 5
    assert ParallelConfig(workers=8, executor="process").resolve(0).is_serial


def test_config_validation_and_roundtrip():
    with pytest.raises(ValueError):
        ParallelConfig(executor="fibers")
    with pytest.raises(ValueError):
        ParallelConfig(workers=-1)
    with pytest.raises(ValueError):
        ParallelConfig(chunk_size=-2)
    config = ParallelConfig(
        workers=4, chunk_size=8, executor="thread",
        use_cache=False, cache_dir="/tmp/x",
    )
    assert ParallelConfig.from_dict(config.to_dict()) == config
    assert ParallelConfig.from_dict({}) == ParallelConfig()


# ----------------------------------------------------------------------
# Failure modes.
# ----------------------------------------------------------------------


def test_empty_corpus():
    vectorizer, pages = _fit([], workers=4, executor="process")
    assert pages == []
    assert vectorizer.ingest_stats.pages_total == 0
    assert vectorizer.pc_corpus.document_count == 0


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_broken_page_raises_typed_error_naming_url(executor):
    good = RawFormPage(url="http://ok.example/", html="<html><body>fine")
    # html=None violates the type and blows up inside the parser — the
    # shape of a crawler handing the pipeline a failed fetch.
    bad = RawFormPage(url="http://broken.example/search", html=None)
    config = ParallelConfig(workers=2, executor=executor, use_cache=False)
    with pytest.raises(IngestError) as excinfo:
        analyze_pages([good, bad, good], TextAnalyzer(), config=config)
    assert excinfo.value.url == "http://broken.example/search"
    assert "http://broken.example/search" in str(excinfo.value)
    assert excinfo.value.cause


def test_keyboard_interrupt_shuts_pool_down(monkeypatch):
    """Ctrl-C inside a worker propagates (it must never be swallowed as a
    per-page error) and the pool is cancelled, not joined."""

    class InterruptingAnalyzer(TextAnalyzer):
        def analyze(self, text):
            raise KeyboardInterrupt

    shutdowns = []
    original = concurrent.futures.ThreadPoolExecutor.shutdown

    def spy(self, wait=True, cancel_futures=False):
        shutdowns.append((wait, cancel_futures))
        return original(self, wait=wait, cancel_futures=cancel_futures)

    monkeypatch.setattr(concurrent.futures.ThreadPoolExecutor, "shutdown", spy)
    pages = [
        RawFormPage(url=f"http://site{i}.example/", html="<p>text here</p>")
        for i in range(8)
    ]
    config = ParallelConfig(
        workers=2, executor="thread", chunk_size=1, use_cache=False
    )
    with pytest.raises(KeyboardInterrupt):
        analyze_pages(pages, InterruptingAnalyzer(), config=config)
    assert (False, True) in shutdowns, "pool was not cancelled on interrupt"


# ----------------------------------------------------------------------
# transform_new cache reuse (the service /classify retry path).
# ----------------------------------------------------------------------


def test_transform_new_reuses_fit_analysis(small_raw_pages):
    vectorizer, _ = _fit(list(small_raw_pages), workers=1)
    analyzed = vectorizer.ingest_stats.pages_analyzed
    first = vectorizer.transform_new(small_raw_pages[0])
    again = vectorizer.transform_new(small_raw_pages[0])
    # Same content hash -> the analysis from fit_transform is replayed.
    assert vectorizer.ingest_stats.pages_analyzed == analyzed
    assert vectorizer.ingest_stats.memory_cache_hits >= 2
    assert first.pc == again.pc and first.fc == again.fc

    edited = RawFormPage(
        url=small_raw_pages[0].url, html="<p>different content now</p>"
    )
    vectorizer.transform_new(edited)
    assert vectorizer.ingest_stats.pages_analyzed == analyzed + 1


def test_transform_new_wraps_parse_failures():
    vectorizer, _ = _fit(
        [RawFormPage(url="http://a.example/", html="<p>hi there</p>")]
    )
    with pytest.raises(IngestError) as excinfo:
        vectorizer.transform_new(RawFormPage(url="http://b.example/", html=None))
    assert excinfo.value.url == "http://b.example/"


# ----------------------------------------------------------------------
# Cache keys and stores.
# ----------------------------------------------------------------------


def test_page_key_tracks_analysis_inputs_only():
    analyzer_print = analyzer_fingerprint(TextAnalyzer())
    base = RawFormPage(url="http://x.example/", html="<p>a</p>",
                       backlinks=["http://hub.example/"])
    same_but_backlinks = RawFormPage(url="http://x.example/", html="<p>a</p>",
                                     backlinks=["http://other.example/"])
    other_html = RawFormPage(url="http://x.example/", html="<p>b</p>")
    other_anchor = RawFormPage(url="http://x.example/", html="<p>a</p>",
                               anchor_texts=["cheap flights"])
    key = page_analysis_key(base, analyzer_print)
    # Backlinks never enter text analysis, so they must not split keys...
    assert page_analysis_key(same_but_backlinks, analyzer_print) == key
    # ...but HTML, anchor text, and the analyzer configuration all do.
    assert page_analysis_key(other_html, analyzer_print) != key
    assert page_analysis_key(other_anchor, analyzer_print) != key
    ablated = analyzer_fingerprint(TextAnalyzer(stopwords=frozenset({"the"})))
    assert ablated != analyzer_print
    assert page_analysis_key(base, ablated) != key


def test_memory_cache_is_a_bounded_lru():
    cache = AnalysisCache(max_size=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refresh 'a'
    cache.put("c", 3)                   # evicts 'b', the LRU entry
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert len(cache) == 2
    disabled = AnalysisCache(max_size=0)
    disabled.put("a", 1)
    assert disabled.get("a") is None and len(disabled) == 0


def test_memory_cache_survives_concurrent_hammering():
    # Regression: the service's threaded HTTP server reaches this cache
    # from concurrent /classify and /add handlers outside every
    # directory lock; unsynchronized move_to_end/popitem raced into
    # KeyError and a corrupted LRU.
    cache = AnalysisCache(max_size=8)
    errors = []
    start = threading.Barrier(8)

    def hammer(seed):
        try:
            start.wait()
            for i in range(2000):
                key = f"k{(seed * 31 + i) % 32}"
                cache.put(key, i)
                cache.get(key)
                cache.get(f"k{i % 32}")
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert len(cache) <= 8


def test_analysis_json_roundtrip_and_version_gate(small_raw_pages):
    analysis = analyze_form_page(small_raw_pages[0], TextAnalyzer())
    restored = analysis_from_json(analysis_to_json(analysis))
    assert restored == analysis
    assert analysis_from_json({"v": 999, "pc": []}) is None
    assert analysis_from_json("garbage") is None
    assert analysis_from_json({"v": 1, "pc": [["a"]]}) is None


def test_page_analysis_pickles():
    analysis = PageAnalysis(pc_terms=[], fc_terms=[],
                            attribute_count=2, on_page_terms=0)
    assert pickle.loads(pickle.dumps(analysis)) == analysis


# ----------------------------------------------------------------------
# The generic order-preserving map.
# ----------------------------------------------------------------------


def test_parallel_map_preserves_order():
    items = list(range(50))
    serial = parallel_map(lambda x: x * x, items, ParallelConfig(workers=1))
    threaded = parallel_map(
        lambda x: x * x, items, ParallelConfig(workers=4, executor="thread")
    )
    degraded = parallel_map(  # process plans degrade to threads here
        lambda x: x * x, items,
        ParallelConfig(workers=4, executor="process", chunk_size=1),
    )
    assert serial == threaded == degraded == [x * x for x in items]
    assert parallel_map(lambda x: x, [], ParallelConfig(workers=8)) == []
