"""Tests for the synthetic-web generator (repro.webgen)."""

import random
from collections import Counter

import pytest

from repro.html.forms import extract_forms
from repro.webgen.config import GeneratorConfig
from repro.webgen.corpus import generate_benchmark
from repro.webgen.domains import DOMAINS, domain_by_name, domain_names
from repro.webgen.forms_gen import (
    keyword_form,
    login_form,
    mixed_entertainment_form,
    multi_attribute_form,
    newsletter_form,
)
from repro.webgen.pages_gen import build_form_page, table1_bucket
from repro.webgen.sites import build_site
from repro.webgen.vocab import brand_name, sample_distinct, zipf_sample
from repro.webgraph.form_classifier import classify_form

from tests.conftest import small_config


class TestVocab:
    def test_brand_name_shape(self):
        rng = random.Random(0)
        for _ in range(20):
            brand = brand_name(rng)
            assert brand.isalpha()
            assert 4 <= len(brand) <= 12

    def test_zipf_sample_skew(self):
        rng = random.Random(0)
        pool = [f"w{i}" for i in range(20)]
        sampled = zipf_sample(pool, 2000, rng)
        counts = Counter(sampled)
        assert counts["w0"] > counts["w10"]

    def test_zipf_sample_empty_pool(self):
        assert zipf_sample([], 5, random.Random(0)) == []

    def test_sample_distinct_caps_at_pool(self):
        assert len(sample_distinct(["a", "b"], 5, random.Random(0))) == 2


class TestDomains:
    def test_eight_domains(self):
        assert len(DOMAINS) == 8
        assert len(set(domain_names())) == 8

    def test_lookup(self):
        assert domain_by_name("airfare").display_name == "Airfare"
        with pytest.raises(KeyError):
            domain_by_name("nonexistent")

    def test_every_domain_has_required_attribute(self):
        for spec in DOMAINS:
            assert any(a.required for a in spec.attributes), spec.name

    def test_label_variants_plural(self):
        for spec in DOMAINS:
            for attribute in spec.attributes:
                assert len(attribute.label_variants) >= 1

    def test_select_attributes_have_pools(self):
        for spec in DOMAINS:
            for attribute in spec.attributes:
                if attribute.kind == "select":
                    assert attribute.value_pool, (spec.name, attribute.concept)

    def test_entertainment_domains_share_vocabulary(self):
        music = set(domain_by_name("music").shared_words)
        movie = set(domain_by_name("movie").shared_words)
        assert music & movie

    def test_topic_words_distinct_across_far_domains(self):
        job = set(domain_by_name("job").topic_words)
        hotel = set(domain_by_name("hotel").topic_words)
        assert not job & hotel


class TestFormsGen:
    def test_multi_attribute_form_parses(self):
        rng = random.Random(0)
        generated = multi_attribute_form(domain_by_name("job"), rng)
        forms = extract_forms(generated.html)
        assert len(forms) == 1
        assert forms[0].attribute_count == generated.n_attributes

    def test_size_classes_order_terms(self):
        rng = random.Random(0)
        small = [multi_attribute_form(domain_by_name("airfare"), random.Random(i), "small").approx_term_count for i in range(10)]
        large = [multi_attribute_form(domain_by_name("airfare"), random.Random(i), "large").approx_term_count for i in range(10)]
        assert sum(small) / 10 < sum(large) / 10

    def test_keyword_form_single_attribute(self):
        generated = keyword_form(domain_by_name("job"), random.Random(0))
        form = extract_forms(generated.html)[0]
        assert form.is_single_attribute

    def test_keyword_form_is_searchable(self):
        generated = keyword_form(domain_by_name("book"), random.Random(0))
        assert classify_form(extract_forms(generated.html)[0])

    def test_login_form_not_searchable(self):
        generated = login_form(random.Random(0))
        assert not classify_form(extract_forms(generated.html)[0])

    def test_newsletter_form_not_searchable(self):
        generated = newsletter_form(random.Random(0))
        assert not classify_form(extract_forms(generated.html)[0])

    def test_mixed_form_has_both_genre_pools(self):
        generated = mixed_entertainment_form(
            domain_by_name("music"), domain_by_name("movie"), random.Random(0)
        )
        assert "CD" in generated.html and "DVD" in generated.html


class TestPagesGen:
    def test_table1_bucket_mapping(self):
        assert table1_bucket(5) == 0
        assert table1_bucket(10) == 10
        assert table1_bucket(49) == 10
        assert table1_bucket(99) == 50
        assert table1_bucket(150) == 100
        assert table1_bucket(500) == 200

    def test_page_contains_form_and_title(self):
        config = GeneratorConfig()
        rng = random.Random(0)
        form = multi_attribute_form(domain_by_name("hotel"), rng)
        blueprint = build_form_page(domain_by_name("hotel"), "testbrand", form, config, rng)
        assert "<form" in blueprint.html
        assert "<title>" in blueprint.html
        assert extract_forms(blueprint.html)

    def test_keyword_hint_outside_form(self):
        config = GeneratorConfig()
        rng = random.Random(0)
        form = keyword_form(domain_by_name("job"), rng)
        blueprint = build_form_page(
            domain_by_name("job"), "testbrand", form, config, rng,
            keyword_hint="Search Jobs",
        )
        before_form = blueprint.html.split("<form")[0]
        assert "Search Jobs" in before_form


class TestSites:
    def test_site_structure(self):
        config = GeneratorConfig()
        site = build_site(domain_by_name("auto"), config, random.Random(0), set())
        urls = [page.url for page in site.pages]
        assert site.root_url in urls
        assert site.form_page_url in urls
        assert site.host.startswith("www.")

    def test_root_links_to_form_page(self):
        config = GeneratorConfig()
        site = build_site(domain_by_name("auto"), config, random.Random(0), set())
        root = next(p for p in site.pages if p.url == site.root_url)
        assert site.form_page_url in root.outlinks

    def test_unique_hosts(self):
        config = GeneratorConfig()
        used = set()
        hosts = {
            build_site(domain_by_name("book"), config, random.Random(i), used).host
            for i in range(20)
        }
        assert len(hosts) == 20

    def test_mixed_site_labelled_by_primary_domain(self):
        config = GeneratorConfig()
        site = build_site(
            domain_by_name("music"), config, random.Random(0), set(),
            form_kind="mixed", mixed_with=domain_by_name("movie"),
            label_override="music",
        )
        assert site.domain_name == "music"
        assert site.is_mixed_entertainment


class TestCorpus:
    def test_profile_matches_paper(self, benchmark_web):
        profile = benchmark_web.profile()
        assert profile["form_pages"] == 454
        assert profile["single_attribute"] == 56
        assert profile["multi_attribute"] == 398
        assert profile["domains"] == 8

    def test_determinism(self):
        config = small_config()
        first = generate_benchmark(config=config)
        second = generate_benchmark(config=small_config())
        assert first.form_page_urls() == second.form_page_urls()
        assert [p.html for p in first.raw_pages()] == [p.html for p in second.raw_pages()]

    def test_seed_changes_output(self):
        first = generate_benchmark(config=small_config(seed=1))
        second = generate_benchmark(config=small_config(seed=2))
        assert first.form_page_urls() != second.form_page_urls()

    def test_raw_pages_have_labels_and_html(self, small_raw_pages):
        for page in small_raw_pages:
            assert page.label in domain_names()
            assert "<form" in page.html

    def test_orphan_fraction_honoured(self, benchmark_web):
        profile = benchmark_web.profile()
        fraction = profile["orphans"] / profile["form_pages"]
        assert 0.10 <= fraction <= 0.20

    def test_orphans_receive_no_hub_backlinks(self, benchmark_web):
        engine = benchmark_web.search_engine()
        orphan_sites = [
            site for site in benchmark_web.sites
            if site.form_page_url in benchmark_web.orphan_urls
        ]
        from repro.webgraph.urls import same_site

        for site in orphan_sites[:10]:
            backlinks = engine.link_query(site.form_page_url)
            assert all(same_site(b, site.form_page_url) for b in backlinks)

    def test_labels_align_with_raw_pages(self, small_web, small_raw_pages):
        assert small_web.labels() == [p.label for p in small_raw_pages]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(orphan_fraction=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(mixed_entertainment_pages=3)
        with pytest.raises(ValueError):
            GeneratorConfig(
                pages_per_domain={"airfare": 2}, single_attribute_per_domain=7
            )
