"""The distributed directory against its ground truth: one process.

Acceptance criterion for repro.distrib: an N-shard deployment's merged
top-k is **bit-identical** to a single-process ``FormDirectory`` over
the full benchmark corpus — both scopes (clusters / pages), both fitted
weighting schemes (eq1 / bm25), 2 and 4 shards.  Not "close": the same
clusters, the same floats, the same order.

Plus the seams the parity rests on: placement assignment, snapshot
splitting, write routing, partial-result degradation, and the HTTP
faces.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.distrib import (
    AllShardsUnavailable,
    DirectoryRouter,
    HttpShardClient,
    LocalShardClient,
    ReplicaNode,
    ShardNode,
    ShardUnavailable,
    serve_replica,
    serve_router,
    serve_shard,
    shard_for_cluster,
    shard_for_url,
    split_snapshot,
)
from repro.service.directory import FormDirectory
from repro.service.snapshot import build_snapshot

QUERIES = [
    "cheap flight airline ticket",
    "used car dealer price",
    "book author title publisher",
    "hotel room reservation city",
    "job search salary resume",
    "movie actor genre dvd",
    "music album artist band",
    "apartment rent bedroom lease",
    "travel vacation deal",
    "form search database",
]

DIRECTORY_KWARGS = dict(
    journal=None, auto_recluster=False, batch_window_ms=None, cache_size=0
)


def build_scheme_snapshot(raw_pages, scheme):
    config = CAFCConfig(k=8, min_hub_cardinality=3, scheme=scheme)
    pipeline = CAFCPipeline(config)
    result = pipeline.organize(raw_pages)
    return build_snapshot(result, pipeline.vectorizer, config)


@pytest.fixture(scope="module")
def benchmark_snapshots(benchmark_raw_pages):
    """Full-corpus (454-page) snapshots, one per weighting scheme."""
    return {
        scheme: build_scheme_snapshot(benchmark_raw_pages, scheme)
        for scheme in ("eq1", "bm25")
    }


@pytest.fixture(scope="module")
def small_snapshot(small_raw_pages):
    return build_scheme_snapshot(small_raw_pages[:-6], "eq1")


def make_router(snapshot, n_shards, placement="cluster"):
    shards = [
        LocalShardClient(ShardNode(part, **DIRECTORY_KWARGS))
        for part in split_snapshot(snapshot, n_shards, placement=placement)
    ]
    return DirectoryRouter(shards, placement=placement)


def strip_shard(hits):
    return [{k: v for k, v in hit.items() if k != "shard"} for hit in hits]


# ---------------------------------------------------------------------
# The headline parity: N shards == 1 process, bit for bit.
# ---------------------------------------------------------------------


class TestFullCorpusParity:
    @pytest.mark.parametrize("scheme", ["eq1", "bm25"])
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_merged_topk_bit_identical(
        self, benchmark_snapshots, scheme, n_shards
    ):
        snapshot = benchmark_snapshots[scheme]
        single = FormDirectory.from_snapshot(snapshot, **DIRECTORY_KWARGS)
        router = make_router(snapshot, n_shards)
        try:
            for query in QUERIES:
                for n in (1, 3, 10):
                    expected = single.search(query, n=n)
                    reply = router.search(query, n=n, scope="clusters")
                    assert not reply["partial"]
                    assert strip_shard(reply["hits"]) == expected, (
                        f"clusters: scheme={scheme} shards={n_shards} "
                        f"q={query!r} n={n}"
                    )
                    expected = single.search_pages(query, n=n)
                    reply = router.search(query, n=n, scope="pages")
                    assert strip_shard(reply["hits"]) == expected, (
                        f"pages: scheme={scheme} shards={n_shards} "
                        f"q={query!r} n={n}"
                    )
        finally:
            router.close()
            single.close()

    @pytest.mark.parametrize("scheme", ["eq1", "bm25"])
    def test_classify_argmax_identical(
        self, benchmark_snapshots, benchmark_raw_pages, scheme
    ):
        snapshot = benchmark_snapshots[scheme]
        single = FormDirectory.from_snapshot(snapshot, **DIRECTORY_KWARGS)
        router = make_router(snapshot, 4)
        try:
            for raw in benchmark_raw_pages[::37]:  # a spread of probes
                expected = single.classify(raw)
                got = router.classify(raw)
                assert got["cluster"] == expected.cluster
                assert got["similarity"] == expected.similarity
                assert got["top_terms"] == expected.top_terms
        finally:
            router.close()
            single.close()

    def test_hash_placement_page_scope_parity(self, benchmark_snapshots):
        """Hash placement scatters cluster members, so cluster-scope
        scores change — but page scores are per-page, so page-scope
        search stays bit-identical."""
        snapshot = benchmark_snapshots["eq1"]
        single = FormDirectory.from_snapshot(snapshot, **DIRECTORY_KWARGS)
        router = make_router(snapshot, 3, placement="hash")
        try:
            for query in QUERIES[:5]:
                expected = single.search_pages(query, n=10)
                reply = router.search(query, n=10, scope="pages")
                assert strip_shard(reply["hits"]) == expected
        finally:
            router.close()
            single.close()


# ---------------------------------------------------------------------
# Placement.
# ---------------------------------------------------------------------


class TestPlacement:
    def test_cluster_split_partitions_globals(self, small_snapshot):
        parts = split_snapshot(small_snapshot, 3)
        seen = []
        for index, part in enumerate(parts):
            meta = part.meta
            assert meta["shard"] == index
            assert meta["n_shards"] == 3
            assert meta["placement"] == "cluster"
            globals_ = meta["global_clusters"]
            assert globals_ == sorted(globals_)  # ascending per shard
            assert all(
                shard_for_cluster(g, 3) == index for g in globals_
            )
            seen.extend(globals_)
        assert sorted(seen) == list(range(len(small_snapshot.clusters)))
        # Every page lands on exactly one shard.
        total = sum(part.n_pages for part in parts)
        assert total == small_snapshot.n_pages

    def test_hash_split_keeps_all_cluster_slots(self, small_snapshot):
        parts = split_snapshot(small_snapshot, 2, placement="hash")
        k = len(small_snapshot.clusters)
        for part in parts:
            assert part.meta["global_clusters"] == list(range(k))
        urls = [
            page.url
            for part in parts
            for members in part.clusters
            for page in members
        ]
        assert len(urls) == len(set(urls)) == small_snapshot.n_pages
        for part in parts:
            index = part.meta["shard"]
            for members in part.clusters:
                for page in members:
                    assert shard_for_url(page.url, 2) == index

    def test_cluster_split_needs_enough_clusters(self, small_snapshot):
        with pytest.raises(ValueError, match="shards"):
            split_snapshot(
                small_snapshot, len(small_snapshot.clusters) + 1
            )

    def test_single_shard_is_the_identity(self, small_snapshot):
        (only,) = split_snapshot(small_snapshot, 1)
        assert only.n_pages == small_snapshot.n_pages
        assert only.meta["global_clusters"] == list(
            range(len(small_snapshot.clusters))
        )


# ---------------------------------------------------------------------
# Degradation: partial results, failover, total outage.
# ---------------------------------------------------------------------


class TestDegradation:
    @pytest.fixture()
    def cluster_of_three(self, small_snapshot):
        clients = [
            LocalShardClient(ShardNode(part, **DIRECTORY_KWARGS))
            for part in split_snapshot(small_snapshot, 3)
        ]
        router = DirectoryRouter(clients, placement="cluster")
        yield router, clients
        router.close()

    def test_dead_shard_degrades_to_partial(self, cluster_of_three):
        router, clients = cluster_of_three
        clients[1].kill()
        reply = router.search(QUERIES[0], n=10)
        assert reply["partial"] is True
        assert reply["shards"]["answered"] == [0, 2]
        assert list(reply["shards"]["failed"]) == ["1"]
        # The surviving shards' hits still merge deterministically.
        hits = reply["hits"]
        assert all(hit["shard"] in (0, 2) for hit in hits)

    def test_all_dead_raises_503_shape(self, cluster_of_three):
        router, clients = cluster_of_three
        for client in clients:
            client.kill()
        with pytest.raises(AllShardsUnavailable) as info:
            router.search(QUERIES[0])
        assert sorted(info.value.failures) == [0, 1, 2]

    def test_failover_list_masks_a_dead_leader(self, small_snapshot):
        parts = split_snapshot(small_snapshot, 2)
        leader = LocalShardClient(
            ShardNode(parts[0], **DIRECTORY_KWARGS), name="leader"
        )
        standby = LocalShardClient(
            ShardNode(parts[0], **DIRECTORY_KWARGS), name="standby"
        )
        other = LocalShardClient(ShardNode(parts[1], **DIRECTORY_KWARGS))
        router = DirectoryRouter([[leader, standby], [other]])
        try:
            leader.kill()
            reply = router.search(QUERIES[0], n=5)
            assert reply["partial"] is False  # standby answered for 0
            assert reply["shards"]["answered"] == [0, 1]
        finally:
            router.close()

    def test_healthz_grades_worst_of(self, cluster_of_three):
        router, clients = cluster_of_three
        assert router.healthz()["status"] == "ok"
        clients[2].kill()
        record = router.healthz()
        assert record["status"] == "degraded"
        assert record["shards"]["2"]["status"] == "unreachable"


# ---------------------------------------------------------------------
# Write routing.
# ---------------------------------------------------------------------


class TestWriteRouting:
    def test_cluster_add_matches_single_node_assignment(
        self, small_snapshot, small_raw_pages
    ):
        single = FormDirectory.from_snapshot(
            small_snapshot, **DIRECTORY_KWARGS
        )
        router = make_router(small_snapshot, 2)
        try:
            for raw in small_raw_pages[-6:]:
                expected_cluster, _ = single.add(raw)
                reply = router.add(raw)
                assert reply["cluster"] == expected_cluster
                assert reply["shard"] == shard_for_cluster(
                    expected_cluster, 2
                )
        finally:
            router.close()
            single.close()

    def test_cluster_add_refuses_partial_routing(
        self, small_snapshot, small_raw_pages
    ):
        parts = split_snapshot(small_snapshot, 2)
        clients = [
            LocalShardClient(ShardNode(part, **DIRECTORY_KWARGS))
            for part in parts
        ]
        router = DirectoryRouter(clients)
        try:
            clients[1].kill()
            with pytest.raises(AllShardsUnavailable, match="deterministic"):
                router.add(small_raw_pages[-1])
        finally:
            router.close()

    def test_remove_broadcast_and_hash_owner(
        self, small_snapshot, small_raw_pages
    ):
        router = make_router(small_snapshot, 2)
        try:
            added = router.add(small_raw_pages[-1])
            reply = router.remove(added["url"])
            assert reply["removed"] is True
            assert router.remove(added["url"])["removed"] is False
        finally:
            router.close()
        hash_router = make_router(small_snapshot, 2, placement="hash")
        try:
            url = small_raw_pages[-2].url
            owner = shard_for_url(url, 2)
            hash_router.add(small_raw_pages[-2])
            reply = hash_router.remove(url)
            assert reply["removed"] is True
            assert reply["shards"]["answered"] == [owner]
        finally:
            hash_router.close()


# ---------------------------------------------------------------------
# The HTTP faces, end to end over real sockets.
# ---------------------------------------------------------------------


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


class TestHttpFaces:
    @pytest.fixture()
    def stack(self, small_snapshot, tmp_path):
        """2 HTTP shards (+1 replica of shard 0) behind an HTTP router."""
        servers = []
        parts = split_snapshot(small_snapshot, 2)
        clients = []
        for part in parts:
            index = part.meta["shard"]
            node = ShardNode(
                part, journal=tmp_path / f"s{index}.wal",
                segment_records=4, batch_window_ms=None,
            )
            server = serve_shard(node)
            server.serve_in_thread()
            servers.append(server)
            clients.append(HttpShardClient(server.base_url))
        replica = ReplicaNode(clients[0], batch_window_ms=None)
        replica.bootstrap()
        replica_server = serve_replica(replica)
        replica_server.serve_in_thread()
        servers.append(replica_server)
        router = DirectoryRouter(
            [[clients[0], HttpShardClient(replica_server.base_url)],
             [clients[1]]]
        )
        router_server = serve_router(router)
        router_server.serve_in_thread()
        servers.append(router_server)
        yield router_server.base_url, replica, servers
        for server in servers:
            server.shut_down()

    def test_search_healthz_metrics_round_trip(
        self, stack, small_snapshot
    ):
        base, _, _ = stack
        single = FormDirectory.from_snapshot(
            small_snapshot, **DIRECTORY_KWARGS
        )
        try:
            reply = _get(f"{base}/search?q=cheap+flight+ticket&n=5")
            assert reply["ok"] and not reply["partial"]
            assert strip_shard(reply["hits"]) == single.search(
                "cheap flight ticket", n=5
            )
        finally:
            single.close()
        health = _get(f"{base}/healthz")
        assert health["status"] == "ok" and health["role"] == "router"
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
            text = r.read().decode("utf-8")
        assert "router_fanout_shards" in text
        assert "router_shards 2" in text

    def test_replica_refuses_writes_until_promoted(self, stack):
        _, replica, servers = stack
        replica_base = servers[2].base_url
        body = json.dumps({"url": "http://x.example/", "html": "<html/>"})
        request = urllib.request.Request(
            f"{replica_base}/add", data=body.encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 403
        assert json.loads(info.value.read())["error"]["code"] == (
            "read_only_replica"
        )

    def test_shard_replication_feed_over_http(self, stack):
        _, _, servers = stack
        shard_base = servers[0].base_url
        body = json.dumps({
            "url": "http://feed.example/form",
            "html": "<html><form><input name='q'></form>flight</html>",
        }).encode()
        for index in range(5):
            request = urllib.request.Request(
                f"{shard_base}/add",
                data=body.replace(b"feed.example",
                                  b"feed%d.example" % index),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as r:
                assert json.loads(r.read())["ok"]
        manifest = _get(f"{shard_base}/replication/manifest")
        assert manifest["next_record"] == 5
        assert manifest["sealed"]  # 4/segment → at least one sealed
        seq = manifest["sealed"][0]["seq"]
        with urllib.request.urlopen(
            f"{shard_base}/replication/segment?seq={seq}", timeout=10
        ) as r:
            assert r.headers["Content-Type"] == "application/octet-stream"
            assert len(r.read()) == manifest["sealed"][0]["bytes"]
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(
                f"{shard_base}/replication/segment?seq=999", timeout=10
            )
        assert info.value.code == 404
        assert json.loads(info.value.read())["error"]["code"] == (
            "segment_gone"
        )

    def test_router_503_when_everything_dies(self, stack):
        base, _, servers = stack
        # Kill both shards and the replica, leave the router up.
        for server in servers[:3]:
            server.shut_down()
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(
                f"{base}/search?q=flight", timeout=30
            )
        assert info.value.code == 503
        assert info.value.headers["Retry-After"] == "1"
        assert json.loads(info.value.read())["error"]["code"] == (
            "all_shards_unavailable"
        )


class TestPooledHttpClient:
    """The pooled persistent-connection shard client."""

    def _shard_server(self, small_snapshot, port=0, transport="asyncio"):
        part = split_snapshot(small_snapshot, 1)[0]
        node = ShardNode(part, **DIRECTORY_KWARGS)
        server = serve_shard(
            node, port=port, transport=transport
        )
        server.serve_in_thread()
        return server

    def test_pooled_client_reuses_one_connection(self, small_snapshot):
        server = self._shard_server(small_snapshot)
        client = HttpShardClient(server.base_url)
        try:
            baseline = server.admission.connections_total
            for query in QUERIES[:5]:
                assert client.search(query, n=3) is not None
            assert server.admission.connections_total == baseline + 1
        finally:
            client.close()
            server.shut_down()

    def test_unpooled_client_opens_per_call(self, small_snapshot):
        server = self._shard_server(small_snapshot)
        client = HttpShardClient(server.base_url, pooled=False)
        try:
            baseline = server.admission.connections_total
            for query in QUERIES[:3]:
                client.search(query, n=3)
            assert server.admission.connections_total == baseline + 3
        finally:
            client.close()
            server.shut_down()

    def test_reconnect_on_stale_after_server_restart(self, small_snapshot):
        first = self._shard_server(small_snapshot)
        port = first.port
        client = HttpShardClient(first.base_url)
        try:
            hits = client.search(QUERIES[0], n=3)
            # The connection that served this is now parked in the pool;
            # restarting the server on the same port makes it stale.
            first.shut_down()
            second = self._shard_server(small_snapshot, port=port)
            try:
                assert client.search(QUERIES[0], n=3) == hits
            finally:
                second.shut_down()
        finally:
            client.close()

    def test_fresh_connection_failure_does_not_retry(self, small_snapshot):
        server = self._shard_server(small_snapshot)
        base = server.base_url
        server.shut_down()
        client = HttpShardClient(base)
        try:
            with pytest.raises(ShardUnavailable):
                client.search(QUERIES[0], n=3)
        finally:
            client.close()

    def test_pooled_client_against_threaded_transport(self, small_snapshot):
        server = self._shard_server(small_snapshot, transport="threaded")
        client = HttpShardClient(server.base_url)
        try:
            first = client.search(QUERIES[0], n=3)
            assert client.search(QUERIES[0], n=3) == first
        finally:
            client.close()
            server.shut_down()
