"""Tests for located-text extraction (repro.html.text_extract)."""

from repro.html.text_extract import (
    TextLocation,
    extract_located_text,
    form_text,
    page_text,
)

PAGE = """
<html>
<head><title>Acme Job Search</title><script>junk()</script></head>
<body>
<h1>Find jobs</h1>
<a href="/x">job listings</a>
<b>Search Jobs</b>
<form action="/s">
  <select name="cat"><option>Engineering</option></select>
  <input type="submit" value="Go">
</form>
<p>Browse employers.</p>
</body>
</html>
"""


def fragments_by_location(html):
    grouped = {}
    for fragment in extract_located_text(html):
        grouped.setdefault(fragment.location, []).append(fragment)
    return grouped


class TestLocations:
    def test_title_detected(self):
        grouped = fragments_by_location(PAGE)
        assert [f.text for f in grouped[TextLocation.TITLE]] == ["Acme Job Search"]

    def test_option_detected(self):
        grouped = fragments_by_location(PAGE)
        assert [f.text for f in grouped[TextLocation.OPTION]] == ["Engineering"]

    def test_anchor_detected(self):
        grouped = fragments_by_location(PAGE)
        assert [f.text for f in grouped[TextLocation.ANCHOR]] == ["job listings"]

    def test_body_fragments(self):
        grouped = fragments_by_location(PAGE)
        body_texts = [f.text for f in grouped[TextLocation.BODY]]
        assert "Find jobs" in body_texts
        assert "Browse employers." in body_texts

    def test_script_excluded(self):
        assert "junk" not in page_text(PAGE)

    def test_title_outside_head_still_title(self):
        html = "<title>Raw Title</title><p>body</p>"
        grouped = fragments_by_location(html)
        assert [f.text for f in grouped[TextLocation.TITLE]] == ["Raw Title"]


class TestFormMembership:
    def test_option_inside_form(self):
        fragments = extract_located_text(PAGE)
        option = next(f for f in fragments if f.location is TextLocation.OPTION)
        assert option.inside_form

    def test_hint_outside_form(self):
        # The "Search Jobs" string sits outside the FORM tags (the paper's
        # Figure 1(c) pattern).
        fragments = extract_located_text(PAGE)
        hint = next(f for f in fragments if f.text == "Search Jobs")
        assert not hint.inside_form

    def test_submit_caption_inside_form(self):
        fragments = extract_located_text(PAGE)
        caption = next(f for f in fragments if f.text == "Go")
        assert caption.inside_form

    def test_form_text_subset_of_page_text(self):
        inside = form_text(PAGE)
        everything = page_text(PAGE)
        for word in inside.split():
            assert word in everything

    def test_nested_forms_content(self):
        html = "<form><div><span>deep text</span></div></form>"
        assert "deep text" in form_text(html)


class TestInputHandling:
    def test_hidden_input_invisible(self):
        html = '<form><input type="hidden" value="secret123"></form>'
        assert "secret123" not in page_text(html)

    def test_placeholder_visible(self):
        html = '<form><input type="text" placeholder="enter city"></form>'
        assert "enter city" in form_text(html)

    def test_image_submit_alt(self):
        html = '<form><input type="image" alt="search button"></form>'
        assert "search button" in form_text(html)

    def test_img_alt_text(self):
        html = '<p><img alt="company logo"></p>'
        assert "company logo" in page_text(html)


class TestEmptyAndDegenerate:
    def test_empty_page(self):
        assert extract_located_text("") == []

    def test_no_visible_text(self):
        assert page_text("<div><input type=hidden></div>") == ""

    def test_form_text_empty_without_form(self):
        assert form_text("<p>text</p>") == ""
