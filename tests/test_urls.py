"""Tests for URL helpers."""

from repro.webgraph.urls import host_of, root_url_of, same_site, site_of


class TestHostOf:
    def test_basic(self):
        assert host_of("http://www.example.com/a/b?x=1") == "www.example.com"

    def test_case_folded(self):
        assert host_of("http://WWW.Example.COM/") == "www.example.com"

    def test_unparseable(self):
        assert host_of("not a url") == ""


class TestSiteOf:
    def test_strips_www(self):
        assert site_of("http://www.example.com/") == "example.com"

    def test_bare_host(self):
        assert site_of("http://example.com/x") == "example.com"

    def test_subdomain_kept(self):
        assert site_of("http://jobs.example.com/") == "jobs.example.com"


class TestSameSite:
    def test_www_variant_matches(self):
        assert same_site("http://www.x.com/a", "http://x.com/b")

    def test_different_sites(self):
        assert not same_site("http://a.com/", "http://b.com/")

    def test_empty_host_never_matches(self):
        assert not same_site("garbage", "garbage")


class TestRootUrl:
    def test_basic(self):
        assert root_url_of("http://www.x.com/deep/page.html?q=1") == "http://www.x.com/"

    def test_https_preserved(self):
        assert root_url_of("https://x.com/a") == "https://x.com/"

    def test_schemeless_defaults_http(self):
        assert root_url_of("//x.com/a") == "http://x.com/"
