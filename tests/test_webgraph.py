"""Tests for the web graph, the simulated search engine, the crawler and
the searchable-form classifier."""

import pytest

from repro.html.forms import extract_forms
from repro.webgraph.crawler import Crawler
from repro.webgraph.form_classifier import classify_form, is_searchable
from repro.webgraph.graph import WebGraph, WebPage
from repro.webgraph.search_api import SimulatedSearchEngine


def make_graph():
    graph = WebGraph()
    graph.add_page(WebPage("http://a.com/", "<a href=x>A</a>", ["http://b.com/"], kind="root"))
    graph.add_page(WebPage("http://b.com/", "<p>B</p>", ["http://a.com/", "http://c.com/"]))
    graph.add_page(WebPage("http://c.com/", "<p>C</p>", []))
    return graph


class TestWebGraph:
    def test_membership(self):
        graph = make_graph()
        assert "http://a.com/" in graph
        assert "http://missing.com/" not in graph
        assert len(graph) == 3

    def test_outlinks(self):
        graph = make_graph()
        assert graph.outlinks("http://b.com/") == ["http://a.com/", "http://c.com/"]
        assert graph.outlinks("http://missing.com/") == []

    def test_backlinks_indexed(self):
        graph = make_graph()
        assert graph.backlinks("http://a.com/") == ["http://b.com/"]
        assert graph.backlinks("http://c.com/") == ["http://b.com/"]

    def test_backlinks_of_unknown_url(self):
        assert make_graph().backlinks("http://nowhere.com/") == []

    def test_replace_page_retracts_old_links(self):
        graph = make_graph()
        graph.add_page(WebPage("http://b.com/", "<p>B2</p>", []))
        assert graph.backlinks("http://c.com/") == []

    def test_pages_sorted(self):
        urls = [page.url for page in make_graph().pages()]
        assert urls == sorted(urls)

    def test_pages_of_kind(self):
        graph = make_graph()
        assert [p.url for p in graph.pages_of_kind("root")] == ["http://a.com/"]

    def test_hosts(self):
        assert make_graph().hosts() == {"a.com", "b.com", "c.com"}


class TestSearchEngine:
    def test_full_coverage_returns_all(self):
        graph = make_graph()
        engine = SimulatedSearchEngine(graph, coverage=1.0)
        assert engine.link_query("http://a.com/") == ["http://b.com/"]

    def test_zero_coverage_returns_nothing(self):
        graph = make_graph()
        engine = SimulatedSearchEngine(graph, coverage=0.0)
        assert engine.link_query("http://a.com/") == []

    def test_max_results_cap(self):
        graph = WebGraph()
        target = "http://target.com/"
        graph.add_page(WebPage(target, "", []))
        for index in range(50):
            graph.add_page(WebPage(f"http://h{index}.com/", "", [target]))
        engine = SimulatedSearchEngine(graph, coverage=1.0, max_results=10)
        assert len(engine.link_query(target)) == 10

    def test_deterministic_across_instances(self):
        graph = make_graph()
        first = SimulatedSearchEngine(graph, coverage=0.5, seed=3)
        second = SimulatedSearchEngine(graph, coverage=0.5, seed=3)
        assert first.link_query("http://a.com/") == second.link_query("http://a.com/")

    def test_seed_changes_index(self):
        graph = WebGraph()
        target = "http://t.com/"
        graph.add_page(WebPage(target, "", []))
        for index in range(100):
            graph.add_page(WebPage(f"http://h{index}.com/", "", [target]))
        results = {
            seed: len(SimulatedSearchEngine(graph, coverage=0.5, seed=seed).link_query(target))
            for seed in range(3)
        }
        # Roughly half indexed; exact membership varies by seed.
        assert all(20 <= count <= 80 for count in results.values())

    def test_harvest_fallback_to_root(self):
        graph = WebGraph()
        form_url = "http://site.com/search.html"
        root_url = "http://site.com/"
        graph.add_page(WebPage(form_url, "", []))
        graph.add_page(WebPage(root_url, "", []))
        graph.add_page(WebPage("http://hub.org/", "", [root_url]))
        engine = SimulatedSearchEngine(graph, coverage=1.0)
        assert engine.harvest_backlinks(form_url, root_url) == ["http://hub.org/"]

    def test_harvest_no_fallback_when_direct_hits(self):
        graph = WebGraph()
        form_url = "http://site.com/search.html"
        root_url = "http://site.com/"
        graph.add_page(WebPage(form_url, "", []))
        graph.add_page(WebPage("http://hub1.org/", "", [form_url]))
        graph.add_page(WebPage("http://hub2.org/", "", [root_url]))
        engine = SimulatedSearchEngine(graph, coverage=1.0)
        assert engine.harvest_backlinks(form_url, root_url) == ["http://hub1.org/"]

    def test_validation(self):
        graph = make_graph()
        with pytest.raises(ValueError):
            SimulatedSearchEngine(graph, coverage=1.5)
        with pytest.raises(ValueError):
            SimulatedSearchEngine(graph, max_results=0)

    def test_query_counter(self):
        engine = SimulatedSearchEngine(make_graph())
        engine.link_query("http://a.com/")
        engine.link_query("http://b.com/")
        assert engine.query_count == 2


SEARCHABLE = """
<form action="/search" method="get">
Flight Search
<select name="from"><option>Boston</option><option>Denver</option></select>
<select name="to"><option>Boston</option><option>Denver</option></select>
<input type="submit" value="Search">
</form>
"""

LOGIN = """
<form action="/login" method="post">
<input type="text" name="user">
<input type="password" name="pass">
<input type="submit" value="Login">
</form>
"""

NEWSLETTER = """
<form action="/subscribe" method="post">
Subscribe to our newsletter
<input type="text" name="email">
<input type="submit" value="Subscribe">
</form>
"""

KEYWORD = """
<form action="/find" method="get">
<input type="text" name="q">
<input type="submit" value="Search">
</form>
"""


class TestFormClassifier:
    def test_searchable_multi_attribute(self):
        assert classify_form(extract_forms(SEARCHABLE)[0])

    def test_login_rejected(self):
        assert not classify_form(extract_forms(LOGIN)[0])

    def test_newsletter_rejected(self):
        assert not classify_form(extract_forms(NEWSLETTER)[0])

    def test_keyword_form_accepted(self):
        assert classify_form(extract_forms(KEYWORD)[0])

    def test_page_level_helper(self):
        assert is_searchable(f"<html><body>{SEARCHABLE}</body></html>")
        assert not is_searchable(f"<html><body>{LOGIN}</body></html>")
        assert not is_searchable("<html><body>no form</body></html>")

    def test_page_with_both_forms_is_searchable(self):
        assert is_searchable(f"<html><body>{LOGIN}{SEARCHABLE}</body></html>")


class TestCrawler:
    def _form_graph(self):
        graph = WebGraph()
        graph.add_page(
            WebPage("http://s.com/", "<a href='/f'>x</a>",
                    ["http://s.com/f", "http://s.com/login"], kind="root")
        )
        graph.add_page(WebPage("http://s.com/f", f"<html><body>{SEARCHABLE}</body></html>",
                               [], kind="form"))
        graph.add_page(WebPage("http://s.com/login", f"<html><body>{LOGIN}</body></html>",
                               [], kind="login"))
        return graph

    def test_finds_searchable_form_pages(self):
        crawler = Crawler(self._form_graph())
        result = crawler.crawl(["http://s.com/"])
        assert [p.url for p in result.form_pages] == ["http://s.com/f"]

    def test_rejects_login_pages(self):
        crawler = Crawler(self._form_graph())
        result = crawler.crawl(["http://s.com/"])
        assert [p.url for p in result.rejected_form_pages] == ["http://s.com/login"]

    def test_unfiltered_mode(self):
        crawler = Crawler(self._form_graph(), filter_searchable=False)
        result = crawler.crawl(["http://s.com/"])
        assert len(result.form_pages) == 2

    def test_max_pages_cap(self):
        crawler = Crawler(self._form_graph(), max_pages=1)
        result = crawler.crawl(["http://s.com/"])
        assert result.n_visited == 1

    def test_dangling_links_skipped(self):
        graph = WebGraph()
        graph.add_page(WebPage("http://a.com/", "", ["http://404.com/"]))
        result = Crawler(graph).crawl(["http://a.com/"])
        assert result.visited == ["http://a.com/"]

    def test_no_revisits(self):
        graph = WebGraph()
        graph.add_page(WebPage("http://a.com/", "", ["http://b.com/"]))
        graph.add_page(WebPage("http://b.com/", "", ["http://a.com/"]))
        result = Crawler(graph).crawl(["http://a.com/"])
        assert sorted(result.visited) == ["http://a.com/", "http://b.com/"]

    def test_crawl_full_benchmark(self, small_web):
        # Crawling from every site root must find every searchable form.
        roots = [site.root_url for site in small_web.sites]
        crawler = Crawler(small_web.graph)
        result = crawler.crawl(roots)
        found = {p.url for p in result.form_pages}
        expected = set(small_web.form_page_urls())
        # The classifier is heuristic; near-total recall is the bar.
        recall = len(expected & found) / len(expected)
        assert recall >= 0.95
