"""Tests for the cluster explorer."""

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.explore import ClusterExplorer


@pytest.fixture(scope="module")
def organized(small_raw_pages):
    pipeline = CAFCPipeline(CAFCConfig(k=8, min_hub_cardinality=3))
    return pipeline.organize(small_raw_pages)


@pytest.fixture(scope="module")
def explorer(organized):
    return ClusterExplorer(organized)


def majority_label(cluster):
    labels = [page.label for page in cluster.pages]
    return max(set(labels), key=labels.count)


class TestSearch:
    def test_domain_query_finds_domain_cluster(self, explorer):
        hits = explorer.search("cheap flights airline tickets")
        assert hits
        assert majority_label(hits[0].cluster) == "airfare"

    def test_job_query(self, explorer):
        hits = explorer.search("software engineering careers and salaries")
        assert majority_label(hits[0].cluster) == "job"

    def test_hotel_query(self, explorer):
        hits = explorer.search("hotel rooms for two nights")
        assert majority_label(hits[0].cluster) == "hotel"

    def test_matched_terms_reported(self, explorer):
        hits = explorer.search("hotel reservation")
        assert "hotel" in hits[0].matched_terms

    def test_scores_descending(self, explorer):
        hits = explorer.search("music movie book", n=8)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_n_limits_results(self, explorer):
        assert len(explorer.search("search find database", n=2)) <= 2

    def test_stopword_only_query(self, explorer):
        assert explorer.search("the of and") == []

    def test_gibberish_query(self, explorer):
        assert explorer.search("zzyzx qwfp") == []


class TestSummaries:
    def test_summary_lists_all_clusters(self, explorer, organized):
        summary = explorer.summary()
        for index in range(organized.n_clusters):
            assert f"[{index}]" in summary

    def test_describe_contains_urls(self, explorer, organized):
        description = explorer.describe(0)
        assert organized.clusters[0].urls[0] in description

    def test_describe_bounds_checked(self, explorer, organized):
        with pytest.raises(IndexError):
            explorer.describe(organized.n_clusters)
        with pytest.raises(IndexError):
            explorer.describe(-1)

    def test_describe_truncates_long_clusters(self, explorer, organized):
        big = max(range(organized.n_clusters),
                  key=lambda i: organized.clusters[i].size)
        if organized.clusters[big].size > 2:
            description = explorer.describe(big, max_urls=2)
            assert "more" in description
