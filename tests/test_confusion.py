"""Tests for confusion analysis (repro.eval.confusion)."""

from repro.clustering.types import Clustering
from repro.core.form_page import FormPage
from repro.eval.confusion import (
    ConfusionAnalysis,
    confusion_matrix,
    majority_label,
)
from repro.vsm.vector import SparseVector


def page(url, label, attribute_count=3):
    return FormPage(
        url=url,
        pc=SparseVector({"x": 1.0}),
        fc=SparseVector({"y": 1.0}),
        label=label,
        attribute_count=attribute_count,
    )


class TestMajorityLabel:
    def test_clear_majority(self):
        assert majority_label(["a", "a", "b"]) == "a"

    def test_tie_broken_alphabetically(self):
        assert majority_label(["b", "a"]) == "a"

    def test_empty(self):
        assert majority_label([]) == ""


class TestConfusionMatrix:
    def test_diagonal_for_perfect_clustering(self):
        clustering = Clustering([[0, 1], [2, 3]])
        labels = ["a", "a", "b", "b"]
        matrix = confusion_matrix(clustering, labels)
        assert matrix == {("a", "a"): 2, ("b", "b"): 2}

    def test_off_diagonal_errors(self):
        clustering = Clustering([[0, 1, 2]])
        labels = ["a", "a", "b"]
        matrix = confusion_matrix(clustering, labels)
        assert matrix[("b", "a")] == 1

    def test_empty_clusters_skipped(self):
        matrix = confusion_matrix(Clustering([[], [0]]), ["a"])
        assert matrix == {("a", "a"): 1}


class TestConfusionAnalysis:
    def _pages(self):
        return [
            page("http://m1.com/", "music"),
            page("http://m2.com/", "music"),
            page("http://v1.com/", "movie"),
            page("http://v2.com/", "movie"),
            page("http://kw.com/", "music", attribute_count=1),
        ]

    def test_no_errors_for_perfect(self):
        pages = self._pages()
        clustering = Clustering([[0, 1, 4], [2, 3]])
        analysis = ConfusionAnalysis.analyze(clustering, pages)
        assert analysis.n_misclustered == 0
        assert analysis.error_pairs() == {}

    def test_errors_detected(self):
        pages = self._pages()
        clustering = Clustering([[0, 1], [2, 3, 4]])  # keyword music page in movie
        analysis = ConfusionAnalysis.analyze(clustering, pages)
        assert analysis.n_misclustered == 1
        error = analysis.misclustered[0]
        assert error.gold_label == "music"
        assert error.assigned_label == "movie"
        assert error.url == "http://kw.com/"

    def test_single_attribute_errors_counted(self):
        pages = self._pages()
        clustering = Clustering([[0, 1], [2, 3, 4]])
        analysis = ConfusionAnalysis.analyze(clustering, pages)
        assert analysis.n_single_attribute_errors == 1

    def test_error_pairs_counter(self):
        pages = self._pages()
        clustering = Clustering([[0, 1], [2, 3, 4]])
        analysis = ConfusionAnalysis.analyze(clustering, pages)
        assert analysis.error_pairs()[("music", "movie")] == 1
