"""The asyncio transport: parity, keep-alive, admission, shedding.

Four suites over real sockets:

* **parity** — every endpoint (success and error paths) served by the
  threaded and asyncio transports over the *same* directory must return
  byte-identical JSON bodies;
* **connection behavior** — keep-alive reuse, raw-socket pipelining,
  ``Connection: close`` echo, shutdown-in-progress close headers;
* **admission control** — saturating the heavy in-flight budget sheds
  deterministically with structured ``429 + Retry-After`` (no raw
  connection resets) while the cheap routes keep answering;
* **slowloris** — a stalled-header client is reaped by the frame
  timeout with a 408 and the server stays responsive.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.service.aio import (
    AdmissionConfig,
    AsyncHTTPServer,
    serve_directory_async,
)
from repro.service.app import ApiError, BaseApp, Response, json_response
from repro.service.directory import FormDirectory
from repro.service.http import serve_directory
from repro.service.metrics import MetricsRegistry
from repro.service.snapshot import build_snapshot

SMALL_CONFIG = CAFCConfig(k=8, min_hub_cardinality=3)


@pytest.fixture(scope="module")
def small_snapshot(small_raw_pages):
    pipeline = CAFCPipeline(SMALL_CONFIG)
    result = pipeline.organize(small_raw_pages)
    return build_snapshot(result, pipeline.vectorizer, SMALL_CONFIG)


def _directory(small_snapshot, **kwargs):
    kwargs.setdefault("batch_window_ms", None)
    kwargs.setdefault("cache_size", 0)
    kwargs.setdefault("auto_recluster", False)
    return FormDirectory.from_snapshot(small_snapshot, **kwargs)


def get_raw(base, path, timeout=30.0):
    """(status, headers, body) — errors included, never raises."""
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def post_raw(base, path, payload, timeout=30.0, raw_bytes=None):
    data = (json.dumps(payload).encode("utf-8")
            if raw_bytes is None else raw_bytes)
    request = urllib.request.Request(
        base + path, data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def raw_page_payload(raw):
    return {
        "url": raw.url,
        "html": raw.html,
        "backlinks": list(raw.backlinks),
        "anchor_texts": list(raw.anchor_texts),
    }


# ---------------------------------------------------------------------------
# Byte parity across transports.
# ---------------------------------------------------------------------------


class TestTransportParity:
    """Both transports over ONE shared directory: identical request
    sequences must produce byte-identical JSON bodies."""

    @pytest.fixture()
    def both(self, small_snapshot, monkeypatch):
        directory = _directory(small_snapshot)
        # /healthz reports uptime_seconds from time.time(); freeze it so
        # the two servers can't disagree by microseconds.
        frozen = time.time()
        monkeypatch.setattr(time, "time", lambda: frozen)
        threaded = serve_directory(directory, transport="threaded")
        threaded.serve_in_thread()
        # The asyncio server shares the SAME directory (and metrics
        # registry): identical engine counters in /healthz stats.
        aio = AsyncHTTPServer(threaded.app, on_close=lambda: None)
        aio.serve_in_thread()
        try:
            yield threaded.base_url, aio.base_url
        finally:
            aio.shut_down()
            threaded.shut_down()

    # Sequential identical requests: read endpoints are pure, so both
    # transports see the same directory state for every pair.
    GET_TARGETS = [
        "/clusters",
        "/clusters?max_urls=2",
        "/clusters?max_urls=foo",        # 400
        "/search?q=cheap+flights&n=3",
        "/search?q=hotel+rooms&scope=pages",
        "/search?q=",                    # 400
        "/search?q=x&scope=bogus",       # 400
        "/search?q=x&n=0",               # 400
        "/nope",                         # 404
        "/healthz",
    ]

    def test_get_endpoints_byte_identical(self, both):
        threaded, aio = both
        for target in self.GET_TARGETS:
            status_t, headers_t, body_t = get_raw(threaded, target)
            status_a, headers_a, body_a = get_raw(aio, target)
            assert status_t == status_a, target
            assert body_t == body_a, target
            assert (headers_t.get("Content-Type")
                    == headers_a.get("Content-Type")), target
            assert (headers_t.get("Retry-After")
                    == headers_a.get("Retry-After")), target

    def test_post_endpoints_byte_identical(self, both, small_raw_pages):
        threaded, aio = both
        page = small_raw_pages[0]
        cases = [
            ("/classify", raw_page_payload(page), None),
            ("/classify", {"url": "http://x/", "html": ""}, None),   # 400
            ("/classify", {}, None),                                 # 400
            ("/classify", None, b"not json"),                        # 400
            ("/remove", {"url": "http://missing.example/"}, None),
            ("/nope", {}, None),                                     # 404
        ]
        for path, payload, raw_bytes in cases:
            result_t = post_raw(threaded, path, payload, raw_bytes=raw_bytes)
            result_a = post_raw(aio, path, payload, raw_bytes=raw_bytes)
            assert result_t[0] == result_a[0], path
            assert result_t[2] == result_a[2], (path, payload)

    def test_add_remove_round_trip_identical(self, both, small_raw_pages):
        # Mutations: run the same add/remove cycle against each
        # transport in turn; the directory returns to its prior state
        # between cycles, so the bodies must match byte for byte.
        threaded, aio = both
        page = raw_page_payload(small_raw_pages[1])
        page["url"] = "http://parity.example/new-source"
        results = []
        for base in (threaded, aio):
            added = post_raw(base, "/add", page)
            removed = post_raw(base, "/remove", {"url": page["url"]})
            results.append((added, removed))
        assert results[0][0][2] == results[1][0][2]
        assert results[0][1][2] == results[1][1][2]

    def test_payload_too_large_identical(self, both):
        # The rejection is decided from the announced Content-Length —
        # send only the head, so neither transport can race the client
        # mid-body with its Connection: close.
        threaded, aio = both

        def oversized(base):
            port = int(base.rsplit(":", 1)[1])
            sock = socket.create_connection(("127.0.0.1", port))
            sock.sendall(
                b"POST /classify HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 3145728\r\n\r\n"
            )
            sock.settimeout(10)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
            sock.close()
            status_line = data.split(b"\r\n", 1)[0]
            body = data.partition(b"\r\n\r\n")[2]
            return status_line, body

        status_t, body_t = oversized(threaded)
        status_a, body_a = oversized(aio)
        assert b"413" in status_t and b"413" in status_a
        assert body_t == body_a

    def test_metrics_same_families(self, both):
        # /metrics can't be byte-pinned (each scrape mutates request
        # histograms), but both transports expose the same content type
        # and metric families.
        threaded, aio = both
        # Warm the registry: the first-ever scrape renders before its
        # own observation is recorded, so the request families would
        # only exist on the second server scraped.
        get_raw(threaded, "/healthz")
        get_raw(aio, "/healthz")
        status_t, headers_t, body_t = get_raw(threaded, "/metrics")
        status_a, headers_a, body_a = get_raw(aio, "/metrics")
        assert status_t == status_a == 200
        assert headers_t["Content-Type"] == headers_a["Content-Type"]

        def families(body):
            return {line.split()[2] for line in body.decode().splitlines()
                    if line.startswith("# TYPE")}

        assert families(body_t) == families(body_a)

    def test_healthz_recovering_parity(self, small_snapshot, monkeypatch):
        directory = _directory(small_snapshot)
        frozen = time.time()
        monkeypatch.setattr(time, "time", lambda: frozen)
        monkeypatch.setattr(
            type(directory), "health_state", lambda self: "recovering"
        )
        threaded = serve_directory(directory, transport="threaded")
        threaded.serve_in_thread()
        aio = AsyncHTTPServer(threaded.app, on_close=lambda: None)
        aio.serve_in_thread()
        try:
            result_t = get_raw(threaded.base_url, "/healthz")
            result_a = get_raw(aio.base_url, "/healthz")
            assert result_t[0] == result_a[0] == 503
            assert result_t[2] == result_a[2]
            assert result_t[1]["Retry-After"] == result_a[1]["Retry-After"]
        finally:
            aio.shut_down()
            threaded.shut_down()


# ---------------------------------------------------------------------------
# Connection behavior: keep-alive, pipelining, Connection: close.
# ---------------------------------------------------------------------------


class TestConnections:
    @pytest.fixture()
    def server(self, small_snapshot):
        srv = serve_directory_async(_directory(small_snapshot))
        srv.serve_in_thread()
        try:
            yield srv
        finally:
            srv.shut_down()

    def test_keep_alive_reuse(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        for _ in range(5):
            conn.request("GET", "/clusters")
            resp = conn.getresponse()
            body = resp.read()
            assert resp.status == 200
            assert json.loads(body)["ok"] is True
            assert resp.getheader("Connection") == "keep-alive"
        # Five requests, one socket.
        assert server.admission.connections_total == 1
        conn.close()

    def test_pipelined_requests_answered_in_order(self, server):
        # Two GETs written back-to-back before reading anything: the
        # drain task must answer both, in order, on one socket.
        sock = socket.create_connection(("127.0.0.1", server.port))
        sock.sendall(
            b"GET /clusters?max_urls=0 HTTP/1.1\r\nHost: x\r\n\r\n"
            b"GET /search?q=cheap+flights HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        sock.settimeout(10)
        data = b""
        while data.count(b"HTTP/1.1 200") < 2:
            chunk = sock.recv(65536)
            assert chunk, f"connection closed early: {data[:200]!r}"
            data += chunk
            if len(data) > 10_000_000:  # pragma: no cover
                raise AssertionError("runaway response")
        first = data.index(b'"clusters"')
        second = data.index(b'"query": "cheap flights"')
        assert first < second, "pipelined responses out of order"
        sock.close()

    def test_connection_close_honored(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        conn.request("GET", "/clusters", headers={"Connection": "close"})
        resp = conn.getresponse()
        resp.read()
        assert resp.getheader("Connection") == "close"
        assert resp.will_close
        conn.close()

    def test_draining_server_sends_close(self, server):
        import http.client

        server.draining = True
        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        conn.request("GET", "/clusters")
        resp = conn.getresponse()
        resp.read()
        assert resp.getheader("Connection") == "close"
        server.draining = False
        conn.close()

    def test_malformed_request_line_structured_400(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port))
        sock.sendall(b"BOGUS\r\n\r\n")
        sock.settimeout(10)
        data = b""
        while b"\r\n\r\n" not in data or not data.endswith(b"}"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
        assert b"400" in data.split(b"\r\n", 1)[0]
        assert b'"bad_request"' in data
        sock.close()

    def test_http10_closes_by_default(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port))
        sock.sendall(b"GET /clusters HTTP/1.0\r\nHost: x\r\n\r\n")
        sock.settimeout(10)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
        assert b"Connection: close" in data
        sock.close()

    def test_threaded_connection_close_honored(self, small_snapshot):
        import http.client

        srv = serve_directory(_directory(small_snapshot),
                              transport="threaded")
        srv.serve_in_thread()
        try:
            conn = http.client.HTTPConnection("127.0.0.1", srv.port)
            conn.request("GET", "/clusters",
                         headers={"Connection": "close"})
            resp = conn.getresponse()
            resp.read()
            assert resp.getheader("Connection") == "close"
            conn.close()
            # And the shutdown-in-progress path: keep-alive requests
            # racing shut_down get 503 + Connection: close, not a hang.
            conn2 = http.client.HTTPConnection("127.0.0.1", srv.port)
            conn2.request("GET", "/clusters")
            resp = conn2.getresponse()
            resp.read()
            assert resp.getheader("Connection") != "close"
            srv.shutting_down = True
            conn2.request("GET", "/clusters")
            resp = conn2.getresponse()
            body = resp.read()
            assert resp.status == 503
            assert resp.getheader("Connection") == "close"
            assert json.loads(body)["error"]["code"] == "shutting_down"
            conn2.close()
        finally:
            srv.shut_down()


# ---------------------------------------------------------------------------
# Admission control and load shedding.
# ---------------------------------------------------------------------------


class _BlockingApp(BaseApp):
    """A stub app whose /slow handler blocks on an event — makes the
    hammer test deterministic: admitted requests park, the rest shed."""

    server_version = "blocking-app/1.0"

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)
        self.metrics = MetricsRegistry()

    @property
    def metrics_registry(self):
        return self.metrics

    def get_routes(self):
        return {
            "/slow": self._get_slow,
            "/healthz": self._get_healthz,
            "/metrics": self._get_metrics,
        }

    def _get_metrics(self, query: dict) -> Response:
        from repro.service.app import METRICS_CONTENT_TYPE

        return Response(
            200, self.metrics.render().encode("utf-8"),
            content_type=METRICS_CONTENT_TYPE,
        )

    def _get_slow(self, query: dict) -> Response:
        self.entered.release()
        if not self.release.wait(timeout=30):
            raise ApiError(500, "internal", "hammer test never released")
        return json_response(200, {"ok": True, "slow": True})

    def _get_healthz(self, query: dict) -> Response:
        return json_response(200, {"ok": True, "status": "ok"})


class TestAdmissionControl:
    @pytest.fixture()
    def stack(self):
        app = _BlockingApp()
        config = AdmissionConfig(
            max_inflight=4, cheap_inflight=4,
            heavy_workers=4, cheap_workers=2,
            header_timeout=30.0, idle_timeout=60.0,
        )
        server = AsyncHTTPServer(app, admission=config)
        server.serve_in_thread()
        try:
            yield app, server
        finally:
            app.release.set()
            server.shut_down()

    def test_shedding_is_structured_429(self, stack):
        app, server = stack
        base = server.base_url
        n_extra = 12
        statuses = []
        bodies = []
        headers = []
        lock = threading.Lock()
        errors = []

        def fire():
            try:
                status, hdrs, body = get_raw(base, "/slow", timeout=60)
                with lock:
                    statuses.append(status)
                    bodies.append(body)
                    headers.append(hdrs)
            except Exception as exc:  # a raw reset would land here
                with lock:
                    errors.append(exc)

        # Fill the budget: 4 admitted requests park inside the handler.
        fillers = [threading.Thread(target=fire) for _ in range(4)]
        for t in fillers:
            t.start()
        for _ in range(4):
            assert app.entered.acquire(timeout=10), "filler not admitted"

        # Everything beyond the budget must shed, deterministically.
        extra = [threading.Thread(target=fire) for _ in range(n_extra)]
        for t in extra:
            t.start()
        deadline = time.time() + 10
        while True:
            with lock:
                shed = sum(1 for s in statuses if s == 429)
            if shed >= n_extra:
                break
            assert time.time() < deadline, (statuses, errors)
            time.sleep(0.01)

        # Cheap routes still answer while the heavy budget is saturated.
        status, _, body = get_raw(base, "/healthz", timeout=10)
        assert status == 200 and json.loads(body)["ok"] is True

        # Release: the four admitted requests finish with 200.
        app.release.set()
        for t in fillers + extra:
            t.join(timeout=30)
        assert not errors, f"raw connection errors during shedding: {errors}"
        assert sorted(statuses).count(200) == 4
        assert sorted(statuses).count(429) == n_extra

        # Every shed response was structured with Retry-After.
        shed_bodies = [body for status, body in
                       zip(statuses, bodies) if status == 429]
        for body in shed_bodies:
            payload = json.loads(body)
            assert payload["error"]["code"] == "overloaded"
        shed_headers = [hdrs for status, hdrs in
                        zip(statuses, headers) if status == 429]
        for hdrs in shed_headers:
            assert hdrs.get("Retry-After") == "1"

        assert server.admission.shed["heavy"] == n_extra

    def test_shed_counter_on_metrics(self, stack):
        app, server = stack
        base = server.base_url
        # Saturate, then confirm the gauge is scrapeable live.
        holders = []

        def hold():
            get_raw(base, "/slow", timeout=60)

        for _ in range(4):
            t = threading.Thread(target=hold)
            t.start()
            holders.append(t)
        for _ in range(4):
            assert app.entered.acquire(timeout=10)
        status, _, _ = get_raw(base, "/slow", timeout=10)
        assert status == 429
        _, _, metrics = get_raw(base, "/metrics", timeout=10)
        text = metrics.decode()
        assert 'repro_server_requests_shed_total{route="heavy"} 1' in text
        assert 'repro_server_inflight_requests{route="heavy"} 4' in text
        app.release.set()
        for t in holders:
            t.join(timeout=30)

    def test_connection_cap_sheds_cleanly(self):
        app = _BlockingApp()
        app.release.set()
        config = AdmissionConfig(max_connections=2)
        server = AsyncHTTPServer(app, admission=config)
        server.serve_in_thread()
        try:
            import http.client

            keep = []
            for _ in range(2):
                conn = http.client.HTTPConnection("127.0.0.1", server.port)
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                resp.read()
                assert resp.status == 200
                keep.append(conn)
            # The third connection is over the cap: structured 429 and a
            # clean close — not a reset.
            conn = http.client.HTTPConnection("127.0.0.1", server.port)
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            body = resp.read()
            assert resp.status == 429
            assert json.loads(body)["error"]["code"] == "overloaded"
            assert resp.getheader("Connection") == "close"
            conn.close()
            for conn in keep:
                conn.close()
        finally:
            server.shut_down()

    def test_hammer_directory_classifies_shed_not_reset(
        self, small_snapshot, small_raw_pages
    ):
        """The real directory under a write-lock stall: admitted
        classifies block on the read lock, everything else sheds 429,
        zero raw resets, and all admitted requests finish once the
        writer releases."""
        directory = _directory(small_snapshot)
        config = AdmissionConfig(max_inflight=3, heavy_workers=3)
        server = serve_directory_async(directory, admission=config)
        server.serve_in_thread()
        base = server.base_url
        payload = raw_page_payload(small_raw_pages[0])
        results, errors = [], []
        lock = threading.Lock()

        def classify():
            try:
                result = post_raw(base, "/classify", payload, timeout=60)
                with lock:
                    results.append(result)
            except Exception as exc:
                with lock:
                    errors.append(exc)

        try:
            with directory._rw.write_locked():
                threads = [threading.Thread(target=classify)
                           for _ in range(10)]
                for t in threads:
                    t.start()
                # Wait until every request has been answered-or-parked:
                # 3 admitted (blocked on the read lock), 7 shed.
                deadline = time.time() + 15
                while True:
                    with lock:
                        if len(results) >= 7:
                            break
                    assert time.time() < deadline, results
                    time.sleep(0.02)
                # /metrics (lock-free) still answers under the stall.
                status, _, _ = get_raw(base, "/metrics", timeout=10)
                assert status == 200
            for t in threads:
                t.join(timeout=60)
            assert not errors, errors
            statuses = sorted(status for status, _, _ in results)
            assert statuses.count(429) == 7
            assert statuses.count(200) == 3
            for status, headers, body in results:
                if status == 429:
                    assert headers.get("Retry-After") == "1"
                    assert json.loads(body)["error"]["code"] == "overloaded"
        finally:
            server.shut_down()


# ---------------------------------------------------------------------------
# Slowloris / idle reaping.
# ---------------------------------------------------------------------------


class TestSlowloris:
    def test_stalled_header_client_reaped_with_408(self, small_snapshot):
        directory = _directory(small_snapshot)
        config = AdmissionConfig(header_timeout=0.4, idle_timeout=30.0)
        server = serve_directory_async(directory, admission=config)
        server.serve_in_thread()
        try:
            sock = socket.create_connection(("127.0.0.1", server.port))
            # Dribble a partial request head and stall forever.
            sock.sendall(b"GET /clusters HTT")
            sock.settimeout(10)
            data = b""
            while True:
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:  # pragma: no cover
                    raise AssertionError("slowloris client never reaped")
                if not chunk:
                    break
                data += chunk
            assert b"408" in data.split(b"\r\n", 1)[0], data[:200]
            assert b'"request_timeout"' in data
            sock.close()
            # The server is still healthy for well-behaved clients.
            status, _, body = get_raw(server.base_url, "/clusters",
                                      timeout=10)
            assert status == 200 and json.loads(body)["ok"] is True
        finally:
            server.shut_down()

    def test_slow_byte_dribble_does_not_reset_deadline(self, small_snapshot):
        # One byte per 100 ms would evade a per-byte timer; the frame
        # deadline is measured from the FIRST byte, so it still reaps.
        directory = _directory(small_snapshot)
        config = AdmissionConfig(header_timeout=0.5, idle_timeout=30.0)
        server = serve_directory_async(directory, admission=config)
        server.serve_in_thread()
        try:
            sock = socket.create_connection(("127.0.0.1", server.port))
            sock.settimeout(0.1)
            started = time.monotonic()
            reaped = False
            for ch in b"GET /clusters HTTP/1.1\r\nHost: x":
                try:
                    sock.sendall(bytes([ch]))
                except OSError:
                    reaped = True
                    break
                try:
                    if sock.recv(1024) == b"":
                        reaped = True
                        break
                    reaped = True  # got the 408 bytes
                    break
                except socket.timeout:
                    pass
                if time.monotonic() - started > 10:  # pragma: no cover
                    break
            assert reaped, "dribbling client was never reaped"
            assert time.monotonic() - started < 8
            sock.close()
        finally:
            server.shut_down()

    def test_idle_keep_alive_connection_reaped(self, small_snapshot):
        directory = _directory(small_snapshot)
        config = AdmissionConfig(header_timeout=5.0, idle_timeout=0.4)
        server = serve_directory_async(directory, admission=config)
        server.serve_in_thread()
        try:
            sock = socket.create_connection(("127.0.0.1", server.port))
            sock.sendall(b"GET /clusters HTTP/1.1\r\nHost: x\r\n\r\n")
            sock.settimeout(10)
            data = b""
            # Read the response, then the idle reaper should close us.
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
            assert b"200" in data.split(b"\r\n", 1)[0]
            assert server.admission.connections_open == 0
            sock.close()
        finally:
            server.shut_down()


# ---------------------------------------------------------------------------
# Lifecycle.
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_shut_down_idempotent_and_closes_directory(self, small_snapshot):
        directory = _directory(small_snapshot)
        server = serve_directory_async(directory)
        server.serve_in_thread()
        status, _, _ = get_raw(server.base_url, "/healthz")
        assert status == 200
        server.shut_down()
        server.shut_down()  # idempotent
        assert directory._closed

    def test_shut_down_before_serve(self, small_snapshot):
        directory = _directory(small_snapshot)
        server = serve_directory_async(directory)
        port = server.port
        assert port > 0
        server.shut_down()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1)

    def test_port_available_immediately(self, small_snapshot):
        directory = _directory(small_snapshot)
        server = serve_directory_async(directory)
        assert server.port > 0
        assert server.base_url.startswith("http://127.0.0.1:")
        server.shut_down()
