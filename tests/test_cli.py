"""Tests for the CLI (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.datasets import save_dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.seed == 42
        assert args.runs == 20
        assert args.workers == 1
        assert args.no_cache is False

    def test_parallel_flags(self):
        for command in (
            ["experiments"],
            ["organize"],
            ["snapshot", "build", "--out", "d.json"],
        ):
            args = build_parser().parse_args(
                command + ["--workers", "4", "--no-cache"]
            )
            assert args.workers == 4
            assert args.no_cache is True

    def test_corpus_args(self):
        args = build_parser().parse_args(["corpus", "--seed", "7", "--save", "x.json"])
        assert args.seed == 7
        assert args.save == "x.json"

    def test_organize_args(self):
        args = build_parser().parse_args(
            ["organize", "--dataset", "d.json", "--k", "4", "--algorithm", "cafc-c"]
        )
        assert args.dataset == "d.json"
        assert args.k == 4
        assert args.algorithm == "cafc-c"

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["organize", "--algorithm", "dbscan"])


class TestCommands:
    def test_organize_from_dataset(self, tmp_path, small_raw_pages, capsys):
        path = tmp_path / "corpus.json"
        save_dataset(small_raw_pages, path)
        exit_code = main(
            ["organize", "--dataset", str(path), "--k", "8"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cluster 0" in output
        assert "terms:" in output

    def test_organize_reports_ingest(self, tmp_path, small_raw_pages, capsys):
        path = tmp_path / "corpus.json"
        save_dataset(small_raw_pages, path)
        exit_code = main(
            ["organize", "--dataset", str(path), "--k", "8",
             "--workers", "2", "--no-cache"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ingest:" in output
        assert f"{len(small_raw_pages)} pages" in output

    def test_organize_cafc_c(self, tmp_path, small_raw_pages, capsys):
        path = tmp_path / "corpus.json"
        save_dataset(small_raw_pages, path)
        exit_code = main(
            ["organize", "--dataset", str(path), "--k", "4", "--algorithm", "cafc-c"]
        )
        assert exit_code == 0
        assert "cafc-c" in capsys.readouterr().out

    def test_organize_save_result(self, tmp_path, small_raw_pages, capsys):
        from repro.datasets import load_result

        dataset = tmp_path / "corpus.json"
        directory = tmp_path / "directory.json"
        save_dataset(small_raw_pages, dataset)
        exit_code = main(
            ["organize", "--dataset", str(dataset),
             "--save-result", str(directory)]
        )
        assert exit_code == 0
        loaded = load_result(directory)
        assert loaded.n_pages == len(small_raw_pages)

    def test_explore_query(self, tmp_path, small_raw_pages, capsys):
        dataset = tmp_path / "corpus.json"
        save_dataset(small_raw_pages, dataset)
        exit_code = main(
            ["explore", "--dataset", str(dataset), "--query", "hotel rooms"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "query:" in output
        assert "score" in output

    def test_unify_cluster(self, tmp_path, small_raw_pages, capsys):
        dataset = tmp_path / "corpus.json"
        save_dataset(small_raw_pages, dataset)
        exit_code = main(
            ["unify", "--dataset", str(dataset), "--cluster", "0"]
        )
        assert exit_code == 0
        assert "concepts discovered" in capsys.readouterr().out

    def test_unify_bad_cluster_index(self, tmp_path, small_raw_pages, capsys):
        dataset = tmp_path / "corpus.json"
        save_dataset(small_raw_pages, dataset)
        exit_code = main(
            ["unify", "--dataset", str(dataset), "--cluster", "99"]
        )
        assert exit_code == 1


class TestExperimentsCli:
    def test_list_experiments(self, capsys):
        exit_code = main(["experiments", "--list"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "fig2" in output and "robustness" in output

    def test_unknown_only_fails_cleanly(self, capsys):
        exit_code = main(["experiments", "--only", "nope"])
        assert exit_code == 1
        assert "unknown experiment" in capsys.readouterr().err
