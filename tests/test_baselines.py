"""Tests for the schema-based clustering baseline and label extraction."""

import pytest

from repro.baselines import SchemaClusterer, extract_attribute_labels
from repro.core.form_page import RawFormPage


LABELLED_FORM = """
<form action="/s">
  <label for="cat">Job Category</label>
  <select id="cat" name="cat"><option>Engineering</option></select>
  <td>Location</td><select name="loc"><option>Texas</option></select>
</form>
"""

WRAPPED_FORM = """
<form><label>Author <input type="text" name="a"></label></form>
"""

TABLE_FORM = """
<form>
<table>
<tr><td>Departure City</td><td><select name="from"><option>Boston</option></select></td></tr>
<tr><td>Arrival City</td><td><select name="to"><option>Denver</option></select></td></tr>
</table>
</form>
"""

KEYWORD_FORM = """
<form action="/find"><input type="text" name="q"><input type="submit" value="Search"></form>
"""

NAME_ONLY_FORM = """
<form><input type="text" name="bookTitle"></form>
"""


class TestLabelExtraction:
    def test_explicit_for_association(self):
        labels = extract_attribute_labels(LABELLED_FORM)[0]
        first = labels[0]
        assert first.label == "Job Category"
        assert first.source == "for"

    def test_wrapping_label(self):
        labels = extract_attribute_labels(WRAPPED_FORM)[0]
        assert labels[0].label.strip() == "Author"
        assert labels[0].source == "wrap"

    def test_preceding_text_heuristic(self):
        labels = extract_attribute_labels(TABLE_FORM)[0]
        assert labels[0].label == "Departure City"
        assert labels[1].label == "Arrival City"
        assert all(l.source == "preceding" for l in labels)

    def test_option_text_never_used_as_label(self):
        labels = extract_attribute_labels(TABLE_FORM)[0]
        assert "Boston" not in labels[1].label

    def test_keyword_form_has_no_label(self):
        labels = extract_attribute_labels(KEYWORD_FORM)[0]
        assert len(labels) == 1
        assert not labels[0].has_label

    def test_field_name_fallback(self):
        labels = extract_attribute_labels(NAME_ONLY_FORM)[0]
        assert labels[0].label == "book title"
        assert labels[0].source == "name"

    def test_hidden_and_submit_skipped(self):
        html = (
            '<form><input type="hidden" name="h">'
            '<input type="submit" value="Go">'
            '<input type="text" name="q"></form>'
        )
        labels = extract_attribute_labels(html)[0]
        assert [l.field_name for l in labels] == ["q"]

    def test_multiple_forms(self):
        per_form = extract_attribute_labels(LABELLED_FORM + KEYWORD_FORM)
        assert len(per_form) == 2

    def test_no_forms(self):
        assert extract_attribute_labels("<p>no form</p>") == []


class TestSchemaClusterer:
    def _pages(self):
        job = RawFormPage("http://j.com/", f"<html><body>{LABELLED_FORM}</body></html>", label="job")
        air = RawFormPage("http://a.com/", f"<html><body>{TABLE_FORM}</body></html>", label="airfare")
        keyword = RawFormPage("http://k.com/", f"<html><body>{KEYWORD_FORM}</body></html>", label="job")
        return [job, air, keyword]

    def test_schema_vectors_built(self):
        schemas = SchemaClusterer(k=2).build_schemas(self._pages())
        assert len(schemas) == 3
        assert schemas[0].has_schema_evidence
        assert schemas[1].has_schema_evidence

    def test_keyword_form_has_no_evidence(self):
        schemas = SchemaClusterer(k=2).build_schemas(self._pages())
        assert not schemas[2].has_schema_evidence

    def test_field_counts_tracked(self):
        schemas = SchemaClusterer(k=2).build_schemas(self._pages())
        assert schemas[0].n_fields == 2
        assert schemas[0].n_labelled_fields == 2
        assert schemas[2].n_fields == 1

    def test_cluster_pages_runs(self):
        result = SchemaClusterer(k=2, seed=1).cluster_pages(self._pages())
        assert result.clustering.n_points == 3

    def test_k_validation(self):
        with pytest.raises(ValueError):
            SchemaClusterer(k=0)
        with pytest.raises(ValueError):
            SchemaClusterer(k=5).cluster_pages(self._pages())

    def test_baseline_fails_on_single_attribute_forms(self, small_raw_pages):
        """The paper's core claim against schema-based approaches."""
        from repro.eval.confusion import majority_label

        clusterer = SchemaClusterer(k=8, seed=0)
        schemas = clusterer.build_schemas(small_raw_pages)
        result = clusterer.cluster(schemas)
        gold = [s.label for s in schemas]

        single = {i for i, s in enumerate(schemas) if s.n_fields <= 1}
        errors = 0
        for members in result.clustering.clusters:
            if not members:
                continue
            majority = majority_label([gold[i] for i in members])
            errors += sum(
                1 for i in members if i in single and gold[i] != majority
            )
        # Most single-attribute forms land in wrong clusters — they have
        # no schema evidence to cluster on.
        assert errors >= len(single) * 0.5

    def test_cafc_beats_baseline(self, small_raw_pages, small_pages, small_gold):
        from repro.core.cafc_ch import cafc_ch
        from repro.core.config import CAFCConfig
        from repro.eval.entropy import total_entropy

        baseline = SchemaClusterer(k=8, seed=0).cluster_pages(small_raw_pages)
        cafc = cafc_ch(small_pages, CAFCConfig(k=8, min_hub_cardinality=3))
        assert total_entropy(cafc.clustering, small_gold) < total_entropy(
            baseline.clustering, small_gold
        )
