"""Resilience primitives — fault plans, retry/backoff, circuit breaking,
the backlink-seam wrappers, supervised workers, CAFC-CH degradation.

Everything here runs without real sleeping: policies take an injectable
sleep, breakers an injectable clock, and fault schedules are pure
functions of (seed, seam, crossing), so the same plan always fires the
same crossings.
"""

import logging
import threading

import pytest

from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.core.hubs import backlink_coverage, harvest_hub_evidence
from repro.core.pipeline import CAFCPipeline
from repro.resilience import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    STATS,
    CircuitBreaker,
    CircuitOpenError,
    FaultError,
    FaultPlan,
    FaultSpec,
    FlakySearchEngine,
    InjectedTimeout,
    PermanentFault,
    RateLimitFault,
    ResilienceConfig,
    ResilientSearchEngine,
    RetryError,
    RetryPolicy,
    SupervisedWorker,
    TransientFault,
    active_plan,
    get_active_plan,
    inject,
)
from repro.service.directory import FormDirectory
from repro.service.snapshot import build_snapshot


def no_sleep(_delay: float) -> None:
    """Injectable sleep that doesn't."""


def fire_pattern(plan: FaultPlan, seam: str, crossings: int) -> list:
    """Which of ``crossings`` consecutive crossings raise (True/False)."""
    pattern = []
    for _ in range(crossings):
        try:
            plan.check(seam)
            pattern.append(False)
        except FaultError:
            pattern.append(True)
    return pattern


# ---------------------------------------------------------------------
# Fault specs and plans.
# ---------------------------------------------------------------------


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("s", kind="explode")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec("s", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("s", probability=-0.1)

    def test_negative_after_and_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("s", after=-1)
        with pytest.raises(ValueError):
            FaultSpec("s", delay=-0.5)


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        spec = FaultSpec("seam", "transient", probability=0.3)
        first = fire_pattern(FaultPlan([spec], seed=7), "seam", 200)
        second = fire_pattern(FaultPlan([spec], seed=7), "seam", 200)
        assert first == second
        assert any(first) and not all(first)

    def test_different_seed_different_schedule(self):
        spec = FaultSpec("seam", "transient", probability=0.3)
        a = fire_pattern(FaultPlan([spec], seed=1), "seam", 200)
        b = fire_pattern(FaultPlan([spec], seed=2), "seam", 200)
        assert a != b

    def test_kinds_map_to_exception_types(self):
        cases = [
            ("transient", TransientFault, True),
            ("timeout", InjectedTimeout, True),
            ("rate_limit", RateLimitFault, True),
            ("permanent", PermanentFault, False),
        ]
        for kind, exc_type, retryable in cases:
            plan = FaultPlan([FaultSpec("seam", kind)], seed=0)
            with pytest.raises(exc_type) as info:
                plan.check("seam")
            assert info.value.retryable is retryable
            assert info.value.seam == "seam"

    def test_max_fires_caps_the_spec(self):
        plan = FaultPlan([FaultSpec("seam", max_fires=2)], seed=0)
        pattern = fire_pattern(plan, "seam", 10)
        assert pattern == [True, True] + [False] * 8
        assert plan.fires("seam") == 2

    def test_after_skips_early_crossings(self):
        plan = FaultPlan([FaultSpec("seam", after=3)], seed=0)
        pattern = fire_pattern(plan, "seam", 6)
        assert pattern == [False, False, False, True, True, True]

    def test_counters_and_describe(self):
        plan = FaultPlan([FaultSpec("a")], seed=5)
        fire_pattern(plan, "a", 3)
        fire_pattern(plan, "b", 2)
        assert plan.crossings("a") == 3
        assert plan.crossings("b") == 2
        assert plan.fires("a") == 3
        assert plan.fires() == 3
        described = plan.describe()
        assert described["seed"] == 5
        assert described["crossings"] == {"a": 3, "b": 2}

    def test_arm_is_chainable(self):
        plan = FaultPlan(seed=0).arm(FaultSpec("seam"))
        assert len(plan.specs) == 1
        with pytest.raises(TransientFault):
            plan.check("seam")

    def test_unarmed_seams_pass_through(self):
        plan = FaultPlan([FaultSpec("other")], seed=0)
        plan.check("seam")  # no spec here: must not raise
        assert plan.crossings("seam") == 1

    def test_default_chaos_covers_every_seam(self):
        plan = FaultPlan.default_chaos(7)
        seams = {spec.seam for spec in plan.specs}
        assert seams == {
            "search.link_query",
            "directory.vectorize",
            "snapshot.save",
            "journal.append",
            "lease.read",
            "lease.renew",
        }


class TestAmbientPlan:
    def test_inject_is_noop_when_unarmed(self):
        assert get_active_plan() is None
        inject("anything")  # must not raise

    def test_active_plan_arms_and_restores(self):
        plan = FaultPlan([FaultSpec("seam")], seed=0)
        with active_plan(plan):
            assert get_active_plan() is plan
            with pytest.raises(TransientFault):
                inject("seam")
        assert get_active_plan() is None
        inject("seam")  # disarmed again

    def test_active_plan_restores_on_error(self):
        plan = FaultPlan(seed=0)
        with pytest.raises(RuntimeError):
            with active_plan(plan):
                raise RuntimeError("boom")
        assert get_active_plan() is None


# ---------------------------------------------------------------------
# Retry policy.
# ---------------------------------------------------------------------


class Flaky:
    """A callable failing ``failures`` times before returning ``value``."""

    def __init__(self, failures, exc=TransientFault, value="ok"):
        self.failures = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"failure {self.calls}")
        return self.value


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        policy = RetryPolicy(max_attempts=4, seed=3)
        fn = Flaky(failures=2)
        slept = []
        assert policy.call(fn, sleep=slept.append) == "ok"
        assert fn.calls == 3
        assert slept == policy.delays()[:2]

    def test_exhaustion_raises_retry_error_chained(self):
        policy = RetryPolicy(max_attempts=3)
        fn = Flaky(failures=99)
        with pytest.raises(RetryError) as info:
            policy.call(fn, sleep=no_sleep)
        assert info.value.attempts == 3
        assert isinstance(info.value.last, TransientFault)
        assert info.value.__cause__ is info.value.last
        assert fn.calls == 3

    def test_permanent_fault_not_retried(self):
        policy = RetryPolicy(max_attempts=5)
        fn = Flaky(failures=99, exc=PermanentFault)
        slept = []
        with pytest.raises(PermanentFault):
            policy.call(fn, sleep=slept.append)
        assert fn.calls == 1
        assert slept == []

    def test_rate_limit_hint_floors_the_delay(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.01)

        def throttled():
            raise RateLimitFault("slow down", retry_after=9.0)

        slept = []
        with pytest.raises(RetryError):
            policy.call(throttled, sleep=slept.append)
        assert slept and slept[0] >= 9.0

    def test_deadline_caps_total_sleeping(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, jitter=0.0, deadline=2.5
        )
        fn = Flaky(failures=99)
        slept = []
        with pytest.raises(RetryError) as info:
            policy.call(fn, sleep=slept.append)
        # 1.0 + 2.0 fits the 2.5s budget... no: 1.0 fits, 1.0+2.0 > 2.5.
        assert info.value.attempts < policy.max_attempts
        assert sum(slept) <= policy.deadline

    def test_delays_deterministic_and_jitter_bounded(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.05, multiplier=2.0,
            max_delay=2.0, jitter=0.5, seed=11,
        )
        first, second = policy.delays(), policy.delays()
        assert first == second
        for n, delay in enumerate(first):
            raw = min(0.05 * 2.0**n, 2.0)
            assert raw * 0.5 <= delay <= raw * 1.5

    def test_on_retry_callback_and_stats(self):
        before = STATS.get("retry_attempts")
        policy = RetryPolicy(max_attempts=3)
        seen = []
        policy.call(
            Flaky(failures=2), sleep=no_sleep,
            on_retry=lambda attempt, exc: seen.append(attempt),
        )
        assert seen == [1, 2]
        assert STATS.get("retry_attempts") == before + 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-1.0)


class TestResilienceConfig:
    def test_round_trip_and_factories(self):
        config = ResilienceConfig()
        restored = ResilienceConfig.from_dict(config.to_dict())
        assert restored == config
        assert isinstance(config.policy(), RetryPolicy)
        assert isinstance(config.breaker(), CircuitBreaker)


# ---------------------------------------------------------------------
# Circuit breaker.
# ---------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, threshold=3, reset=30.0):
        clock = FakeClock()
        return CircuitBreaker(
            failure_threshold=threshold, reset_timeout=reset, clock=clock
        ), clock

    def test_consecutive_failures_trip_open(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state_code == CIRCUIT_CLOSED
        breaker.record_failure()
        assert breaker.state_code == CIRCUIT_OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state_code == CIRCUIT_CLOSED

    def test_half_open_admits_one_probe(self):
        breaker, clock = self.make(threshold=1, reset=30.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 31.0
        assert breaker.state_code == CIRCUIT_HALF_OPEN
        assert breaker.allow()          # the probe
        assert not breaker.allow()      # only one at a time

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1)
        breaker.record_failure()
        clock.now += 31.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state_code == CIRCUIT_CLOSED

    def test_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1)
        breaker.record_failure()
        clock.now += 31.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state_code == CIRCUIT_OPEN
        assert not breaker.allow()

    def test_call_refuses_fast_when_open(self):
        breaker, _ = self.make(threshold=1)

        def boom():
            raise TransientFault("down")

        with pytest.raises(TransientFault):
            breaker.call(boom)
        calls = []
        with pytest.raises(CircuitOpenError):
            breaker.call(calls.append, "never")
        assert calls == []

    def test_state_names(self):
        breaker, _ = self.make(threshold=1)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)


# ---------------------------------------------------------------------
# The backlink seam: flaky + resilient engine wrappers.
# ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def engine(small_web):
    return small_web.search_engine()


@pytest.fixture(scope="module")
def form_urls(small_web):
    return [page.url for page in small_web.raw_pages()][:12]


class TestFlakySearchEngine:
    def test_healthy_plan_is_transparent(self, engine, form_urls):
        flaky = FlakySearchEngine(engine, FaultPlan(seed=0))
        for url in form_urls:
            assert flaky.link_query(url) == engine.link_query(url)
        assert flaky.query_count == engine.query_count

    def test_faults_fire_per_plan(self, engine, form_urls):
        plan = FaultPlan([FaultSpec("search.link_query", "permanent")], seed=0)
        flaky = FlakySearchEngine(engine, plan)
        with pytest.raises(PermanentFault):
            flaky.link_query(form_urls[0])
        assert plan.fires("search.link_query") == 1

    def test_harvest_falls_back_to_root(self, engine, small_web):
        flaky = FlakySearchEngine(engine, FaultPlan(seed=0))
        raw = small_web.raw_pages()[0]
        direct = engine.harvest_backlinks(raw.url, "")
        assert flaky.harvest_backlinks(raw.url, "") == direct


class TestResilientSearchEngine:
    def test_transient_faults_are_retried_through(self, engine, form_urls):
        plan = FaultPlan(
            [FaultSpec("search.link_query", "transient", max_fires=2)], seed=0
        )
        resilient = ResilientSearchEngine(
            FlakySearchEngine(engine, plan), sleep=no_sleep
        )
        url = form_urls[0]
        assert resilient.link_query(url) == engine.link_query(url)
        report = resilient.report.as_dict()
        assert report["retried"] == 2
        assert report["failures"] == 0

    def test_never_raises_degrades_to_empty(self, engine, form_urls):
        plan = FaultPlan([FaultSpec("search.link_query", "permanent")], seed=0)
        resilient = ResilientSearchEngine(
            FlakySearchEngine(engine, plan), sleep=no_sleep
        )
        for url in form_urls[:4]:
            assert resilient.link_query(url) == []
        report = resilient.report.as_dict()
        assert report["failures"] == 4
        assert resilient.report.degraded_rate == 1.0

    def test_open_breaker_rejects_without_touching_inner(
        self, engine, form_urls
    ):
        plan = FaultPlan([FaultSpec("search.link_query", "permanent")], seed=0)
        flaky = FlakySearchEngine(engine, plan)
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=1000.0, clock=lambda: 0.0
        )
        resilient = ResilientSearchEngine(flaky, breaker=breaker, sleep=no_sleep)
        resilient.link_query(form_urls[0])
        resilient.link_query(form_urls[1])
        assert breaker.state_code == CIRCUIT_OPEN
        crossings_before = plan.crossings("search.link_query")
        assert resilient.link_query(form_urls[2]) == []
        assert plan.crossings("search.link_query") == crossings_before
        assert resilient.report.rejected == 1

    def test_no_fault_parity_with_plain_engine(self, engine, small_web):
        resilient = ResilientSearchEngine(engine, sleep=no_sleep)
        for raw in small_web.raw_pages()[:10]:
            assert resilient.harvest_backlinks(raw.url, "") == (
                engine.harvest_backlinks(raw.url, "")
            )
        assert resilient.report.failures == 0


class TestHarvestHubEvidence:
    def test_healthy_harvest_matches_direct(self, engine, form_urls):
        requests = [(url, "") for url in form_urls]
        harvested, wrapper = harvest_hub_evidence(engine, requests)
        for url in form_urls:
            assert harvested[url] == engine.harvest_backlinks(url, "")
        assert wrapper.report.failures == 0
        assert wrapper.report.queries >= len(form_urls)

    def test_dead_engine_degrades_everything(self, engine, form_urls):
        plan = FaultPlan([FaultSpec("search.link_query", "permanent")], seed=0)
        flaky = FlakySearchEngine(engine, plan)
        resilient = ResilientSearchEngine(flaky, sleep=no_sleep)
        requests = [(url, "") for url in form_urls]
        harvested, wrapper = harvest_hub_evidence(resilient, requests)
        assert all(backlinks == [] for backlinks in harvested.values())
        assert wrapper.report.degraded_rate == 1.0


# ---------------------------------------------------------------------
# Supervised workers.
# ---------------------------------------------------------------------


class TestSupervisedWorker:
    def test_crashes_restart_then_complete(self):
        before = STATS.get("worker_restarts")
        done = threading.Event()
        exits = []
        fn = Flaky(failures=2, exc=RuntimeError)

        def target():
            fn()
            done.set()

        worker = SupervisedWorker(
            target, name="t", backoff_base=0.001, on_exit=lambda: exits.append(1)
        ).start()
        assert done.wait(5.0)
        worker.stop()
        assert worker.restarts == 2
        assert not worker.gave_up
        assert exits == [1]
        assert STATS.get("worker_restarts") >= before + 2

    def test_gives_up_after_max_restarts(self, caplog):
        exits = []

        def always_broken():
            raise RuntimeError("broken")

        with caplog.at_level(logging.ERROR, logger="repro.resilience"):
            worker = SupervisedWorker(
                always_broken, name="doomed", backoff_base=0.001,
                max_restarts=2, on_exit=lambda: exits.append(1),
            ).start()
            deadline = threading.Event()
            for _ in range(500):
                if worker.gave_up:
                    break
                deadline.wait(0.01)
        worker.stop()
        assert worker.gave_up
        assert worker.restarts == 2
        assert isinstance(worker.last_error, RuntimeError)
        assert exits == [1]
        assert any("gave up" in rec.message for rec in caplog.records)

    def test_stop_wakes_backoff_immediately(self):
        def always_broken():
            raise RuntimeError("broken")

        worker = SupervisedWorker(
            always_broken, name="slow", backoff_base=60.0
        ).start()
        for _ in range(500):
            if worker.restarts >= 1:
                break
            threading.Event().wait(0.01)
        worker.stop(timeout=5.0)
        assert not worker.alive

    def test_on_crash_callback_sees_the_exception(self):
        seen = []
        fn = Flaky(failures=1, exc=ValueError)
        worker = SupervisedWorker(
            lambda: fn() and None, name="cb", backoff_base=0.001,
            on_crash=lambda n, exc: seen.append((n, type(exc))),
        ).start()
        for _ in range(500):
            if not worker.alive:
                break
            threading.Event().wait(0.01)
        worker.stop()
        assert seen == [(1, ValueError)]


# ---------------------------------------------------------------------
# Directory lifecycle + CAFC-CH degradation.
# ---------------------------------------------------------------------


SMALL_CONFIG = CAFCConfig(k=8, min_hub_cardinality=3)


@pytest.fixture(scope="module")
def small_snapshot(small_raw_pages):
    pipeline = CAFCPipeline(SMALL_CONFIG)
    result = pipeline.organize(small_raw_pages)
    return build_snapshot(result, pipeline.vectorizer, SMALL_CONFIG)


class TestDirectoryLifecycle:
    def test_close_is_idempotent(self, small_snapshot):
        directory = FormDirectory.from_snapshot(
            small_snapshot, auto_recluster=False, batch_window_ms=None
        )
        directory.close()
        directory.close()  # second close must be a no-op

    def test_close_safe_on_partially_constructed(self):
        # __init__ never ran: the getattr guards must still hold.
        directory = FormDirectory.__new__(FormDirectory)
        directory.close()

    def test_context_manager_closes(self, small_snapshot):
        with FormDirectory.from_snapshot(
            small_snapshot, auto_recluster=False, batch_window_ms=None
        ) as directory:
            assert directory.health_state() == "ok"
        assert directory._closed


class TestCafcChDegradation:
    def test_default_still_raises(self, small_pages):
        config = CAFCConfig(k=8, min_hub_cardinality=10_000)
        with pytest.raises(ValueError):
            cafc_ch(small_pages, config)

    def test_fallback_degrades_with_warning_and_counter(
        self, small_pages, caplog
    ):
        before = STATS.get("degraded_fallbacks")
        config = CAFCConfig(k=8, min_hub_cardinality=10_000)
        with caplog.at_level(logging.WARNING, logger="repro.resilience"):
            result = cafc_ch(small_pages, config, fallback=True)
        assert result.degraded
        assert result.selected_seeds == []
        assert result.degraded_reason
        assert len(result.kmeans.clustering.clusters) == config.k
        assert STATS.get("degraded_fallbacks") == before + 1
        assert any("degraded" in rec.message for rec in caplog.records)

    def test_fallback_untouched_when_hubs_suffice(self, small_pages):
        healthy = cafc_ch(small_pages, SMALL_CONFIG)
        guarded = cafc_ch(small_pages, SMALL_CONFIG, fallback=True)
        assert not guarded.degraded
        assert guarded.kmeans.clustering.clusters == (
            healthy.kmeans.clustering.clusters
        )

    def test_backlink_coverage(self, small_pages):
        coverage = backlink_coverage(small_pages)
        assert 0.0 < coverage <= 1.0
        assert backlink_coverage([]) == 0.0
