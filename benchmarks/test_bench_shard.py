"""Sharding benchmark: 1 process vs 2- and 4-shard scatter-gather.

Builds one snapshot over the 454-page corpus (k=32 so a 4-way split
still leaves each shard real work), serves it three ways — a single
``FormDirectory``, and cluster-placed routers over 2 and 4 in-process
shards — and times merged ``/search`` for both scopes plus ``classify``
fan-out.  Every sharded configuration is parity-checked first: its
merged answers must be **bit-identical** (ids, scores, order) to the
single process before its timing is allowed into the table.

Also measured: replica catch-up — records/second a follower applies
while tailing a journaled leader's sealed segments, and the lag left
after the stream (the number the ``replication_lag_records`` gauge
exports) — and failover time: leader dies, the coordinator notices the
lease lapse, promotes the replica, and the router acks the first write
at the bumped epoch (the ``failover`` block in BENCH_shard.json).

Records ``BENCH_shard.json`` at the repo root.  No speedup is
*required* of in-process sharding at this corpus size — scatter-gather
pays thread-pool overhead per request, and honesty beats spin — but the
parity gate and the catch-up throughput are hard assertions.
"""

import dataclasses
import json
import os
import time
from pathlib import Path

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.distrib import (
    DirectoryRouter,
    FailoverCoordinator,
    HttpShardClient,
    LeaseStore,
    LocalShardClient,
    ReplicaNode,
    ShardNode,
    serve_shard,
    split_snapshot,
)
from repro.service.directory import FormDirectory
from repro.service.snapshot import build_snapshot
from repro.webgen.corpus import generate_benchmark

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_shard.json"
SHARD_COUNTS = (2, 4)
K = 32

QUERIES = (
    "flight airfare ticket",
    "book novel author",
    "job career salary engineer",
    "movie theater actor",
    "hotel room reservation",
    "car rental pickup",
)
TOP_N = (1, 5, 25)

DIRECTORY_KWARGS = dict(
    journal=None, auto_recluster=False, batch_window_ms=None, cache_size=0
)


@pytest.fixture(scope="module")
def raw_pages():
    return generate_benchmark(seed=42).raw_pages()


@pytest.fixture(scope="module")
def snapshot(raw_pages):
    pipeline = CAFCPipeline(CAFCConfig(k=K))
    return build_snapshot(
        pipeline.organize(raw_pages), pipeline.vectorizer, pipeline.config
    )


def make_router(snapshot, n_shards):
    clients = [
        LocalShardClient(ShardNode(part, **DIRECTORY_KWARGS))
        for part in split_snapshot(snapshot, n_shards)
    ]
    return DirectoryRouter(clients)


def strip_shard(hits):
    return [{k: v for k, v in hit.items() if k != "shard"} for hit in hits]


def assert_parity(single, router):
    for query in QUERIES:
        for n in TOP_N:
            assert strip_shard(
                router.search(query, n=n, scope="clusters")["hits"]
            ) == single.search(query, n=n), (query, n, "clusters")
            assert strip_shard(
                router.search(query, n=n, scope="pages")["hits"]
            ) == single.search_pages(query, n=n), (query, n, "pages")


def timed(fn, rounds=5, inner=10):
    """(cold, warm): first-call wall clock, then best-of repeats."""
    start = time.perf_counter()
    fn()
    cold = time.perf_counter() - start
    warm = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        warm = min(warm, (time.perf_counter() - start) / inner)
    return cold, warm


def measure(label, scope, run, rows):
    cold, warm = timed(run)
    per_query = warm / len(QUERIES)
    rows.append({
        "config": label,
        "scope": scope,
        "cold_us": round(cold * 1e6, 1),
        "warm_us": round(warm * 1e6, 1),
        "per_query_us": round(per_query * 1e6, 1),
        "throughput_qps": round(1.0 / per_query, 1),
    })
    print(
        f"  {label:<18} {scope:<9} warm {warm * 1e6:8.0f}us "
        f"({1.0 / per_query:8.0f} q/s)"
    )


def test_bench_shard_scatter_gather(snapshot, raw_pages):
    rows = []
    print(f"\n[{len(raw_pages)} pages, k={K}, {os.cpu_count()} cpu(s)]")
    single = FormDirectory.from_snapshot(snapshot, **DIRECTORY_KWARGS)
    routers = {n: make_router(snapshot, n) for n in SHARD_COUNTS}
    try:
        for n_shards, router in routers.items():
            assert_parity(single, router)  # the gate before any timing

        def run_single(scope):
            search = single.search if scope == "clusters" else \
                single.search_pages
            for query in QUERIES:
                search(query, n=5)

        def run_router(router, scope):
            for query in QUERIES:
                router.search(query, n=5, scope=scope)

        for scope in ("clusters", "pages"):
            measure("single-process", scope,
                    lambda scope=scope: run_single(scope), rows)
            for n_shards, router in routers.items():
                measure(
                    f"{n_shards}-shard router", scope,
                    lambda r=router, scope=scope: run_router(r, scope),
                    rows,
                )

        probes = raw_pages[::61]

        def classify_single():
            for raw in probes:
                single.classify(raw)

        def classify_router(router):
            for raw in probes:
                router.classify(raw)

        measure("single-process", "classify", classify_single, rows)
        for n_shards, router in routers.items():
            measure(f"{n_shards}-shard router", "classify",
                    lambda r=router: classify_router(r), rows)
    finally:
        for router in routers.values():
            router.close()
        single.close()

    RESULTS_PATH.write_text(json.dumps({
        "benchmark": "shard",
        "corpus_pages": len(raw_pages),
        "k": K,
        "cpu_count": os.cpu_count(),
        "shard_counts": list(SHARD_COUNTS),
        "rows": rows,
        "note": (
            "In-process shards behind the scatter-gather router vs one "
            "FormDirectory, warm = best-of-5 x 10 repeats.  Every "
            "sharded configuration passed a bit-identical merged-top-k "
            "parity check before timing.  At 454 pages scatter-gather "
            "overhead (thread pool + merge) is expected to outweigh the "
            "smaller per-shard scans — the win sharding buys is "
            "capacity and isolation, not single-query latency at toy "
            "scale."
        ),
    }, indent=2) + "\n")


def test_bench_replica_catch_up(snapshot, raw_pages, tmp_path):
    """Throughput of the journal-shipping tail: a replica bootstraps,
    the leader absorbs the corpus again under new URLs (rolling sealed
    segments), and the replica applies the stream."""
    parts = split_snapshot(snapshot, 2)
    leader_node = ShardNode(
        parts[0], journal=tmp_path / "leader.wal", segment_records=64,
        **{k: v for k, v in DIRECTORY_KWARGS.items() if k != "journal"},
    )
    leader = LocalShardClient(leader_node, name="leader")
    replica = ReplicaNode(
        leader, name="replica-0", batch_window_ms=None, cache_size=0
    )
    try:
        replica.bootstrap()
        writes = [
            dataclasses.replace(raw, url=f"{raw.url}?copy=1")
            for raw in raw_pages[: len(raw_pages) // 2]
        ]
        start = time.perf_counter()
        for raw in writes:
            leader.add(raw)
        write_seconds = time.perf_counter() - start

        start = time.perf_counter()
        lag_after = replica.catch_up()
        catch_up_seconds = time.perf_counter() - start
        applied = replica.applied
        assert applied >= len(writes) - 64  # everything sealed is in
        assert lag_after <= 64  # at most one unsealed segment behind

        # The copy converged on everything shipped: sealed-segment
        # replay used the same live apply paths as the leader.
        leader_urls = set(leader_node.directory.organizer._by_url)
        replica_urls = set(replica.node.directory.organizer._by_url)
        missing = {
            url for url in leader_urls - replica_urls
            if "?copy=1" in url
        }
        assert len(missing) <= lag_after

        rate = applied / catch_up_seconds if catch_up_seconds else 0.0
        print(
            f"\n[catch-up] {len(writes)} writes in {write_seconds:.2f}s; "
            f"replica applied {applied} records in "
            f"{catch_up_seconds:.2f}s ({rate:,.0f} rec/s), "
            f"lag {lag_after} (unsealed tail)"
        )
        if RESULTS_PATH.exists():
            payload = json.loads(RESULTS_PATH.read_text())
            payload["replica_catch_up"] = {
                "writes": len(writes),
                "segment_records": 64,
                "applied_records": applied,
                "catch_up_seconds": round(catch_up_seconds, 3),
                "records_per_second": round(rate, 1),
                "lag_after_records": lag_after,
                "bootstraps": replica.bootstraps,
            }
            RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    finally:
        replica.close()
        leader_node.close()


def test_bench_failover(snapshot, raw_pages, tmp_path):
    """Failover time, wall clock: the leader dies mid-stream, the
    coordinator notices the lease lapse (missed renewals — no clean
    shutdown), promotes the caught-up replica, and the router acks the
    first write at the bumped epoch.  Records detect → promote →
    first-acked-write into BENCH_shard.json's ``failover`` block.

    A short real TTL keeps the bench honest *and* quick: detection
    cannot beat the lease expiring, so total failover time is dominated
    by (and bounded below by) the TTL — which is the knob an operator
    actually trades against false positives.
    """
    ttl = 0.5
    tick_interval = 0.05
    parts = split_snapshot(snapshot, 2)
    wal = tmp_path / "failover-leader.wal"
    store = LeaseStore(tmp_path / "failover.lease")
    leader_node = ShardNode(
        parts[0], journal=wal, segment_records=32,
        lease_store=store, lease_ttl=ttl,
        **{k: v for k, v in DIRECTORY_KWARGS.items() if k != "journal"},
    )
    leader = LocalShardClient(leader_node, name="leader")
    replica = ReplicaNode(
        leader, name="replica-0", batch_window_ms=None, cache_size=0
    )
    replica.bootstrap()
    replica_client = LocalShardClient(replica, name="replica-0")
    router = DirectoryRouter(
        [[leader, replica_client]], placement="hash"
    )
    writes = [
        dataclasses.replace(raw, url=f"{raw.url}?failover=1")
        for raw in raw_pages[:40]
    ]
    try:
        for raw in writes:
            router.add(raw)
        replica.catch_up()

        died_at = time.perf_counter()
        leader.kill()  # no clean shutdown: the lease file goes stale

        coordinator = FailoverCoordinator(
            leader, [replica_client], wal, lease_store=store,
            router=router, shard_index=0, miss_threshold=2,
            lease_ttl=ttl,
        )
        give_up = time.monotonic() + 30.0
        event = coordinator.tick()
        while event["action"] != "promoted" and time.monotonic() < give_up:
            time.sleep(tick_interval)
            event = coordinator.tick()
        promoted_at = time.perf_counter()
        assert event["action"] == "promoted", event

        probe = dataclasses.replace(
            raw_pages[40], url=f"{raw_pages[40].url}?failover=probe"
        )
        reply = router.add(probe)
        acked_at = time.perf_counter()
        assert reply["epoch"] == 1
        assert reply["served_by"] == "replica-0"

        detect_promote = promoted_at - died_at
        total = acked_at - died_at
        print(
            f"\n[failover] ttl {ttl}s: death -> promoted "
            f"{detect_promote:.3f}s, first acked write at epoch "
            f"{reply['epoch']} after {total:.3f}s "
            f"(drained {replica.drained_on_promotion} records)"
        )
        assert total < 10.0  # sanity: bounded, not hung

        if RESULTS_PATH.exists():
            payload = json.loads(RESULTS_PATH.read_text())
            payload["failover"] = {
                "lease_ttl_seconds": ttl,
                "miss_threshold": 2,
                "tick_interval_seconds": tick_interval,
                "acked_writes_before_death": len(writes),
                "drained_on_promotion": replica.drained_on_promotion,
                "death_to_promoted_seconds": round(detect_promote, 3),
                "death_to_first_acked_write_seconds": round(total, 3),
                "coordinator_detect_seconds": round(
                    float(event["detect_seconds"]), 3
                ),
                "coordinator_promote_seconds": round(
                    float(event["promote_seconds"]), 3
                ),
                "note": (
                    "Leader killed without cleanup; the coordinator "
                    "waits out the stale lease (missed renewals), "
                    "promotes the replica (journal drain + epoch bump "
                    "+ lease at the new epoch), repoints the router, "
                    "and the next write acks at epoch 1.  Total time "
                    "is TTL-dominated by design."
                ),
            }
            RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    finally:
        router.close()
        replica.close()
        leader_node.close()


def test_bench_http_client_pooling(snapshot, raw_pages):
    """Pooled persistent keep-alive connections vs open-per-call HTTP.

    One shard served over the asyncio transport, searched through
    :class:`HttpShardClient` both ways.  ``pooled=False`` opens a fresh
    TCP connection per request (the legacy behavior this PR replaced);
    ``pooled=True`` borrows from the client's keep-alive pool — the
    per-request handshake was exactly the scatter-gather overhead the
    shard bench's honest note called out.  Both modes must agree on the
    answers before either is timed.
    """
    part = split_snapshot(snapshot, 1)[0]
    node = ShardNode(part, **DIRECTORY_KWARGS)
    server = serve_shard(node, transport="asyncio")
    server.serve_in_thread()
    clients = {
        "per-call": HttpShardClient(server.base_url, pooled=False),
        "pooled": HttpShardClient(server.base_url, pooled=True),
    }
    rows = []
    try:
        # Parity gate: identical hits either way.
        for query in QUERIES:
            assert (clients["pooled"].search(query, n=5)
                    == clients["per-call"].search(query, n=5)), query

        for label, client in clients.items():
            def run(client=client):
                for query in QUERIES:
                    client.search(query, n=5)

            cold, warm = timed(run)
            per_query = warm / len(QUERIES)
            rows.append({
                "config": f"http {label}",
                "scope": "clusters",
                "cold_us": round(cold * 1e6, 1),
                "warm_us": round(warm * 1e6, 1),
                "per_query_us": round(per_query * 1e6, 1),
                "throughput_qps": round(1.0 / per_query, 1),
            })
            print(
                f"  http {label:<10} warm {warm * 1e6:8.0f}us "
                f"({1.0 / per_query:8.0f} q/s)"
            )
    finally:
        for client in clients.values():
            client.close()
        server.shut_down()

    pooled = next(r for r in rows if r["config"] == "http pooled")
    per_call = next(r for r in rows if r["config"] == "http per-call")
    # Keep-alive must not be slower than a handshake per request.
    assert pooled["per_query_us"] <= per_call["per_query_us"] * 1.10, rows

    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
        payload["http_client"] = {
            "transport": "asyncio shard server, HttpShardClient",
            "rows": rows,
            "note": (
                "Single shard over HTTP: per-call opens a TCP "
                "connection per request, pooled reuses persistent "
                "keep-alive connections (reconnect-on-stale).  Warm = "
                "best-of-5 x 10 repeats, answers parity-checked "
                "before timing."
            ),
        }
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
