"""Service benchmarks: classify throughput vs micro-batch window.

Not from the paper — this measures the serving layer added on top of
the reproduction: 16 concurrent clients classifying pages of the full
benchmark corpus against a 454-page directory, at batch windows
unbatched / 0 ms / 5 ms / 20 ms.  The printed table records requests
served, engine batch calls made (the coalescing ratio), and throughput;
docs/PERFORMANCE.md keeps the reference numbers.
"""

import threading

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.service.directory import FormDirectory
from repro.service.snapshot import build_snapshot

N_CLIENTS = 16
REQUESTS_PER_CLIENT = 16

WINDOWS = [
    pytest.param(None, id="unbatched"),
    pytest.param(0.0, id="window-0ms"),
    pytest.param(5.0, id="window-5ms"),
    pytest.param(20.0, id="window-20ms"),
]


@pytest.fixture(scope="module")
def service_setup(context):
    config = CAFCConfig(k=8)
    pipeline = CAFCPipeline(config)
    result = pipeline.organize(context.raw_pages)
    snapshot = build_snapshot(result, pipeline.vectorizer, config)
    return snapshot, context.raw_pages


def _hammer(directory, raw_pages):
    """16 threads, each classifying its own slice of the corpus."""
    errors = []

    def client(offset):
        try:
            for step in range(REQUESTS_PER_CLIENT):
                raw = raw_pages[(offset + step * N_CLIENTS) % len(raw_pages)]
                outcome = directory.classify(raw, timeout=60.0)
                assert outcome.cluster >= 0
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(offset,))
        for offset in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


@pytest.mark.parametrize("window", WINDOWS)
def test_bench_classify_throughput(benchmark, service_setup, window):
    snapshot, raw_pages = service_setup
    directory = FormDirectory.from_snapshot(
        snapshot, batch_window_ms=window, cache_size=0, auto_recluster=False
    )
    try:
        benchmark.pedantic(
            _hammer, args=(directory, raw_pages), rounds=1, iterations=1
        )
        requests = int(directory._m_requests.value)
        batches = int(directory._m_batches.value)
        assert requests == N_CLIENTS * REQUESTS_PER_CLIENT
        elapsed = benchmark.stats["mean"]
        label = "unbatched" if window is None else f"{window:g} ms"
        print(
            f"\n  window={label}: {requests} requests, {batches} engine "
            f"batches ({requests / max(1, batches):.1f} req/batch), "
            f"{requests / elapsed:,.0f} req/s"
        )
        if window is not None:
            # Coalescing must be visible whenever the queue is enabled.
            assert batches <= requests
    finally:
        directory.close()
