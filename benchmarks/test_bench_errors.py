"""Benchmark: Section 4.2 — mis-clustering analysis of the best run."""

from repro.experiments import errors


def test_bench_errors(benchmark, context):
    result = benchmark(errors.run_errors, context)
    print()
    print(errors.format_errors(result))
    violations = errors.check_shape(result)
    assert violations == [], violations
