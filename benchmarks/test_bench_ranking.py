"""Ranking benchmark: weighting schemes A/B over the benchmark corpus.

One run produces both sides of the scheme comparison the redesign
exists for (docs/RANKING.md):

* **cluster quality** — total entropy (Eq. 5) and overall F-measure
  (Eq. 6) of a CAFC-CH organization of the 454-page corpus under each
  scheme (``eq1``, ``bm25``, and the ``tf`` ablation baseline);
* **search latency** — warm ``/search`` timings (cluster and page
  scope) against a directory built under each scheme, indexed and
  full-scan.

Before any configuration is timed, its correctness gates are asserted:
indexed answers must be bit-identical to the full scan (exact top-k
pruning is scheme-agnostic), and BM25 vectors must be normalized to
(0, 1] per feature space.  Records ``BENCH_ranking.json`` at the repo
root — the numbers quoted in docs/RANKING.md.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.service.directory import FormDirectory
from repro.service.snapshot import build_snapshot

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_ranking.json"

SCHEMES = ("eq1", "bm25", "tf")

QUERIES = (
    "flight airfare ticket",
    "book novel author",
    "job career salary engineer",
    "movie theater actor",
    "hotel room reservation",
    "car rental pickup",
)
TOP_N = (1, 5, 25)


def assert_search_parity(indexed, scan):
    """Indexed answers must match the scan bit-for-bit before timing."""
    for query in QUERIES:
        for n in TOP_N:
            assert indexed.search(query, n=n) == scan.search(query, n=n), \
                (query, n)
            assert indexed.search_pages(query, n=n) == \
                scan.search_pages(query, n=n), (query, n)


def assert_bm25_normalized(pages):
    for page in pages:
        for vector in (page.pc, page.fc):
            for _, weight in vector.items():
                assert 0.0 < weight <= 1.0, page.url


def timed_warm(fn, rounds=3, inner=10):
    fn()  # warm caches
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def run_queries(directory, scope):
    search = directory.search if scope == "clusters" else \
        directory.search_pages
    for query in QUERIES:
        search(query, n=5)


@pytest.fixture(scope="module")
def raw_pages(context):
    return context.raw_pages


def test_bench_ranking_scheme_ab(raw_pages, context):
    gold = context.gold_labels
    rows = []
    print(f"\n[{len(raw_pages)} pages, {os.cpu_count()} cpu(s), "
          f"schemes: {', '.join(SCHEMES)}]")

    for scheme in SCHEMES:
        pipeline = CAFCPipeline(CAFCConfig(k=8, scheme=scheme))
        result = pipeline.organize(raw_pages)
        pages = [page for cluster in result.clusters for page in cluster.pages]
        assert len(pages) == len(raw_pages)
        if scheme == "bm25":
            assert_bm25_normalized(pages)

        # Quality: index pages back to corpus order for the gold labels.
        url_to_index = {page.url: i for i, page in enumerate(context.pages)}
        from repro.clustering.types import Clustering

        clustering = Clustering([
            [url_to_index[page.url] for page in cluster.pages]
            for cluster in result.clusters
        ])
        entropy = total_entropy(clustering, gold)
        f_value = overall_f_measure(clustering, gold)

        snapshot = build_snapshot(result, pipeline.vectorizer, pipeline.config)
        with FormDirectory.from_snapshot(
            snapshot, index="on", auto_recluster=False
        ) as indexed, FormDirectory.from_snapshot(
            snapshot, index="off", auto_recluster=False
        ) as scan:
            assert indexed.scheme_name == scheme
            assert_search_parity(indexed, scan)

            row = {
                "scheme": scheme,
                "entropy": round(entropy, 4),
                "f_measure": round(f_value, 4),
            }
            for scope in ("clusters", "pages"):
                warm_indexed = timed_warm(lambda: run_queries(indexed, scope))
                warm_scan = timed_warm(lambda: run_queries(scan, scope))
                row[f"search_{scope}_indexed_us"] = round(warm_indexed * 1e6, 1)
                row[f"search_{scope}_scan_us"] = round(warm_scan * 1e6, 1)
            rows.append(row)
            print(
                f"  {scheme:<6} entropy {entropy:6.3f}  F {f_value:5.3f}  "
                f"search(clusters) indexed "
                f"{row['search_clusters_indexed_us']:8.0f}us  scan "
                f"{row['search_clusters_scan_us']:8.0f}us"
            )

    by_scheme = {row["scheme"]: row for row in rows}
    # Equation 1 is the paper's tuned default; the redesign must not make
    # the A/B harness pass on a broken alternative, so sanity-gate both
    # directions: every scheme clusters far better than chance (entropy
    # of random 8-way assignment is ~3 bits) and the TF ablation never
    # beats the corpus-weighted schemes.
    for scheme in ("eq1", "bm25"):
        assert by_scheme[scheme]["f_measure"] > 0.5, by_scheme[scheme]
        assert by_scheme[scheme]["entropy"] < 1.5, by_scheme[scheme]

    RESULTS_PATH.write_text(json.dumps({
        "benchmark": "ranking",
        "corpus_pages": len(raw_pages),
        "cpu_count": os.cpu_count(),
        "k": 8,
        "queries": len(QUERIES),
        "rows": rows,
        "note": (
            "CAFC-CH at k=8 over the 454-page benchmark corpus; entropy "
            "is Equation 5 (lower is better), F-measure Equation 6 "
            "(higher is better).  Search timings are warm best-of-3 x 10 "
            "repeats over 6 queries at n=5; every timed directory first "
            "passed a bit-identical indexed-vs-scan parity check, and "
            "BM25 vectors were verified normalized to (0, 1] per feature "
            "space before the PC/FC combination."
        ),
    }, indent=2) + "\n")
