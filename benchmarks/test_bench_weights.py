"""Benchmark: Section 4.4 — differentiated vs uniform LOC weights."""

from benchmarks.conftest import BENCH_RUNS
from repro.experiments import weights


def test_bench_weights(benchmark, context):
    result = benchmark.pedantic(
        weights.run_weights, args=(context,),
        kwargs={"n_cafc_c_runs": BENCH_RUNS},
        rounds=1, iterations=1,
    )
    print()
    print(weights.format_weights(result))
    violations = weights.check_shape(result)
    assert violations == [], violations
