"""Benchmark: Figure 2 — CAFC-C vs CAFC-CH across FC / PC / FC+PC.

Regenerates the paper's central comparison and asserts its shape claims
(FC+PC best, FC worst, CAFC-CH beats CAFC-C everywhere).
"""

from benchmarks.conftest import BENCH_RUNS
from repro.experiments import fig2


def test_bench_fig2(benchmark, context):
    result = benchmark.pedantic(
        fig2.run_fig2, args=(context,), kwargs={"n_runs": BENCH_RUNS},
        rounds=1, iterations=1,
    )
    print()
    print(fig2.format_fig2(result))
    violations = fig2.check_shape(result)
    assert violations == [], violations

    # Hub seeding must cut FC+PC entropy by a wide margin (paper: ~3.7x).
    cafc_c = result.get("cafc-c", "fc+pc").entropy
    cafc_ch = result.get("cafc-ch", "fc+pc").entropy
    assert cafc_ch < 0.6 * cafc_c
