"""Search benchmark: full scan vs inverted-index retrieval.

Pairs an ``index="on"`` directory with an ``index="off"`` directory
built from the *same* snapshot and measures ``search`` (cluster scope)
and ``search_pages`` at growing cluster counts (k = 8, 32, 128 over the
454-page corpus) and growing page counts (replicated corpora), cold and
warm.  Every timed configuration is parity-checked first: the indexed
answers must be bit-identical — ids, scores, order — to the scan before
its timing is allowed into the table.

Records ``BENCH_search.json`` at the repo root (the numbers quoted in
docs/PERFORMANCE.md).  The acceptance claim is the large end: at k=128
clusters and at the replicated page scale the indexed path must be at
least 1.5x faster warm.  The small end is reported without spin — at
k=8 the posting-list bookkeeping does not pay for itself, which is
exactly why the ``auto`` mode keeps full scan below
``INDEX_AUTO_MIN_CLUSTERS`` clusters.
"""

import dataclasses
import json
import os
import time
from pathlib import Path

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.service.directory import FormDirectory
from repro.service.snapshot import build_snapshot
from repro.webgen.corpus import generate_benchmark

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_search.json"
REQUIRED_SPEEDUP = 1.5
CLUSTER_COUNTS = (8, 32, 128)
PAGE_REPLICAS = (1, 2)  # extra corpus copies appended at the page scale step

QUERIES = (
    "flight airfare ticket",
    "book novel author",
    "job career salary engineer",
    "movie theater actor",
    "hotel room reservation",
    "car rental pickup",
)
TOP_N = (1, 5, 25)


@pytest.fixture(scope="module")
def raw_pages():
    return generate_benchmark(seed=42).raw_pages()


def build_pair(raw_pages, k):
    """The same snapshot served twice: indexed and full-scan."""
    pipeline = CAFCPipeline(CAFCConfig(k=k))
    snapshot = build_snapshot(
        pipeline.organize(raw_pages), pipeline.vectorizer, pipeline.config
    )
    indexed = FormDirectory.from_snapshot(
        snapshot, index="on", auto_recluster=False
    )
    scan = FormDirectory.from_snapshot(
        snapshot, index="off", auto_recluster=False
    )
    return indexed, scan


def assert_parity(indexed, scan):
    for query in QUERIES:
        for n in TOP_N:
            assert indexed.search(query, n=n) == scan.search(query, n=n), \
                (query, n)
            assert indexed.search_pages(query, n=n) == \
                scan.search_pages(query, n=n), (query, n)


def timed(fn, rounds=5, inner=20):
    """(cold, warm): first-call wall clock, then best-of repeats."""
    start = time.perf_counter()
    fn()
    cold = time.perf_counter() - start
    warm = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        warm = min(warm, (time.perf_counter() - start) / inner)
    return cold, warm


def run_queries(directory, scope):
    search = directory.search if scope == "clusters" else \
        directory.search_pages
    for query in QUERIES:
        search(query, n=5)


def measure(label, indexed, scan, scope, rows):
    cold_scan, warm_scan = timed(lambda: run_queries(scan, scope))
    cold_indexed, warm_indexed = timed(lambda: run_queries(indexed, scope))
    speedup = warm_scan / warm_indexed
    rows.append({
        "config": label,
        "scope": scope,
        "scan_cold_us": round(cold_scan * 1e6, 1),
        "scan_warm_us": round(warm_scan * 1e6, 1),
        "indexed_cold_us": round(cold_indexed * 1e6, 1),
        "indexed_warm_us": round(warm_indexed * 1e6, 1),
        "warm_speedup": round(speedup, 2),
    })
    print(
        f"  {label:<28} {scope:<8} scan {warm_scan * 1e6:8.0f}us  "
        f"indexed {warm_indexed * 1e6:8.0f}us  {speedup:5.2f}x warm"
    )
    return speedup


def test_bench_search_scan_vs_indexed(raw_pages):
    n_corpus = len(raw_pages)
    rows = []
    print(f"\n[{n_corpus} pages, {os.cpu_count()} cpu(s), "
          f"{len(QUERIES)} queries per measurement]")

    # Growing cluster counts, fixed 454-page corpus.
    cluster_speedups = {}
    for k in CLUSTER_COUNTS:
        indexed, scan = build_pair(raw_pages, k)
        try:
            assert_parity(indexed, scan)
            cluster_speedups[k] = measure(
                f"k={k} clusters", indexed, scan, "clusters", rows
            )
            if k == CLUSTER_COUNTS[-1]:
                measure(f"k={k} clusters", indexed, scan, "pages", rows)
        finally:
            indexed.close()
            scan.close()

    # Growing page counts at a fixed k: replicate the corpus under
    # suffixed URLs through the live add path, both directories fed
    # identically, parity re-checked after the churn.
    indexed, scan = build_pair(raw_pages, 32)
    try:
        page_speedups = {}
        assert_parity(indexed, scan)
        page_speedups[n_corpus] = measure(
            f"{n_corpus} pages (k=32)", indexed, scan, "pages", rows
        )
        total = n_corpus
        for copy in PAGE_REPLICAS:
            for raw in raw_pages:
                replica = dataclasses.replace(
                    raw, url=f"{raw.url}?copy={copy}"
                )
                assert indexed.add(replica) == scan.add(replica)
            total += n_corpus
            assert_parity(indexed, scan)
            page_speedups[total] = measure(
                f"{total} pages (k=32)", indexed, scan, "pages", rows
            )
    finally:
        indexed.close()
        scan.close()

    top_k = CLUSTER_COUNTS[-1]
    top_pages = max(page_speedups)
    print(
        f"  speedup at k={top_k}: {cluster_speedups[top_k]:.2f}x, "
        f"at {top_pages} pages: {page_speedups[top_pages]:.2f}x "
        f"(required {REQUIRED_SPEEDUP}x)"
    )

    RESULTS_PATH.write_text(json.dumps({
        "benchmark": "search",
        "corpus_pages": n_corpus,
        "cpu_count": os.cpu_count(),
        "queries": len(QUERIES),
        "rows": rows,
        "speedup_at_max_clusters": round(cluster_speedups[top_k], 2),
        "speedup_at_max_pages": round(page_speedups[top_pages], 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "note": (
            "Single-threaded wall clock, warm = best-of-5 x 20 repeats; "
            "every timed configuration passed a bit-identical parity "
            "check against the full scan first.  The k=8 row is expected "
            "to show no win — posting-list overhead beats the scan only "
            "as cluster/page counts grow, which is why index=auto keeps "
            "full scan below 32 clusters / 256 pages."
        ),
    }, indent=2) + "\n")

    assert cluster_speedups[top_k] >= REQUIRED_SPEEDUP, (
        f"indexed cluster search only {cluster_speedups[top_k]:.2f}x at "
        f"k={top_k} (required {REQUIRED_SPEEDUP}x)"
    )
    assert page_speedups[top_pages] >= REQUIRED_SPEEDUP, (
        f"indexed page search only {page_speedups[top_pages]:.2f}x at "
        f"{top_pages} pages (required {REQUIRED_SPEEDUP}x)"
    )


def test_bench_search_pruning_ratio(raw_pages):
    """The index must actually skip work, not just re-order it: at
    k=128 the candidate-pruning ratio over the query mix stays > 0."""
    indexed, scan = build_pair(raw_pages, CLUSTER_COUNTS[-1])
    try:
        assert_parity(indexed, scan)
        stats = indexed._retrieval_stats()
        assert stats.rows_total > 0
        ratio = 1.0 - stats.rows_scored / stats.rows_total
        print(f"\n[k={CLUSTER_COUNTS[-1]}] pruning ratio {ratio:.1%} "
              f"({stats.rows_scored}/{stats.rows_total} rows scored)")
        assert ratio > 0.0
        if RESULTS_PATH.exists():
            payload = json.loads(RESULTS_PATH.read_text())
            payload["pruning"] = {
                "clusters": CLUSTER_COUNTS[-1],
                "rows_total": stats.rows_total,
                "rows_scored": stats.rows_scored,
                "pruning_ratio": round(ratio, 4),
            }
            RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    finally:
        indexed.close()
        scan.close()
