"""Benchmark: Section 3.1 — backlink / hub-cluster statistics."""

from repro.experiments import hubstats


def test_bench_hubstats(benchmark, context):
    result = benchmark(hubstats.run_hubstats, context)
    print()
    print(hubstats.format_hubstats(result))
    violations = hubstats.check_shape(result)
    assert violations == [], violations
