"""Benchmark: Section-6 extension ablations.

The paper's future-work list names two link-structure features: anchor
text and hub-page quality.  These ablations measure both on the
benchmark corpus:

* **anchor text** — CAFC-CH with anchor strings folded into PC vs
  without;
* **quality-aware seed selection** — Algorithm 3 with a tightness
  pre-filter vs plain, at high cardinality thresholds where
  heterogeneous directories dominate the candidate pool (the failure
  region on the right edge of Figure 3).
"""

from repro.core.cafc_c import similarity_for
from repro.core.cafc_ch import cafc_ch
from repro.core.cafc_c import cafc_c
from repro.core.config import CAFCConfig
from repro.core.hubs import build_hub_clusters
from repro.core.seeds import select_hub_clusters
from repro.core.similarity import NaiveBackend
from repro.core.vectorizer import FormPageVectorizer
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.experiments.reporting import render_table
from repro.link_analysis import select_hub_clusters_quality_aware


def test_bench_anchor_text(benchmark, context):
    """Anchor-text ablation: does the extension keep quality at least?"""
    def run():
        raw = context.web.raw_pages(include_anchor_text=True)
        pages = FormPageVectorizer().fit_transform(raw)
        return pages

    pages_anchor = benchmark.pedantic(run, rounds=1, iterations=1)
    gold = context.gold_labels

    baseline = cafc_ch(context.pages, CAFCConfig(k=8),
                       hub_clusters=context.hub_clusters(8))
    hub_clusters = build_hub_clusters(pages_anchor, min_cardinality=8)
    augmented = cafc_ch(pages_anchor, CAFCConfig(k=8), hub_clusters=hub_clusters)

    rows = [
        ["without anchors",
         f"{total_entropy(baseline.clustering, gold):.3f}",
         f"{overall_f_measure(baseline.clustering, gold):.3f}"],
        ["with anchors",
         f"{total_entropy(augmented.clustering, gold):.3f}",
         f"{overall_f_measure(augmented.clustering, gold):.3f}"],
    ]
    print()
    print(render_table(["configuration", "entropy", "F-measure"], rows,
                       title="Ablation: anchor-text features (Section 6)"))

    # Anchor text must not degrade the clustering materially.
    assert total_entropy(augmented.clustering, gold) <= (
        total_entropy(baseline.clustering, gold) + 0.05
    )


def test_bench_quality_aware_seeds(benchmark, context):
    """Tightness-filtered Algorithm 3 at directory-dominated thresholds."""
    similarity = similarity_for(context.config)
    pages, gold = context.pages, context.gold_labels

    def sweep():
        results = []
        for threshold in (9, 10, 11):
            hub_clusters = context.hub_clusters(threshold)
            if len(hub_clusters) < 8:
                continue
            plain_seeds = select_hub_clusters(
                hub_clusters, 8, backend=NaiveBackend(similarity)
            )
            quality_seeds = select_hub_clusters_quality_aware(
                hub_clusters, 8, pages, similarity, drop_fraction=0.25
            )
            plain = cafc_c(
                pages, CAFCConfig(k=8),
                seed_centroids=[c.centroid for c in plain_seeds],
            )
            quality = cafc_c(
                pages, CAFCConfig(k=8),
                seed_centroids=[c.centroid for c in quality_seeds],
            )
            results.append(
                (
                    threshold,
                    total_entropy(plain.clustering, gold),
                    total_entropy(quality.clustering, gold),
                )
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f">{threshold - 1}", f"{plain:.3f}", f"{quality:.3f}"]
        for threshold, plain, quality in results
    ]
    print()
    print(render_table(
        ["min card", "plain Algorithm 3", "quality-aware"],
        rows,
        title="Ablation: tightness-filtered seed selection (Section 6)",
    ))

    # On average over the hostile thresholds, quality filtering must not
    # hurt, and should help somewhere.
    mean_plain = sum(p for _, p, _ in results) / len(results)
    mean_quality = sum(q for _, _, q in results) / len(results)
    assert mean_quality <= mean_plain + 0.02
