"""Micro-benchmarks: per-stage costs of the CAFC pipeline.

Not from the paper — these document where the time goes (parsing,
vectorization, similarity, k-means, HAC, hub harvesting) and guard
against pathological regressions.
"""

import random

import pytest

from repro.clustering.hac import Linkage, hac
from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.core.hubs import build_hub_clusters
from repro.core.vectorizer import FormPageVectorizer
from repro.html.parser import parse_html
from repro.text.analyzer import TextAnalyzer


@pytest.fixture(scope="module")
def sample_html(context):
    return context.raw_pages[0].html


def test_bench_html_parse(benchmark, sample_html):
    root = benchmark(parse_html, sample_html)
    assert root.find("form") is not None


def test_bench_text_analysis(benchmark, context):
    analyzer = TextAnalyzer()
    text = " ".join(raw.html for raw in context.raw_pages[:5])
    terms = benchmark(analyzer.analyze, text)
    assert terms


def test_bench_vectorize_corpus(benchmark, context):
    def vectorize():
        return FormPageVectorizer().fit_transform(context.raw_pages)

    pages = benchmark.pedantic(vectorize, rounds=1, iterations=1)
    assert len(pages) == 454


def test_bench_pairwise_similarity(benchmark, context):
    pages = context.pages[:100]
    similarity = context.similarity

    def all_pairs():
        total = 0.0
        for i in range(len(pages)):
            for j in range(i + 1, len(pages)):
                total += similarity(pages[i], pages[j])
        return total

    total = benchmark.pedantic(all_pairs, rounds=1, iterations=1)
    assert total > 0.0


def test_bench_kmeans_run(benchmark, context):
    def run():
        return cafc_c(context.pages, CAFCConfig(k=8, seed=0))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.clustering.n_points == 454


def test_bench_cafc_ch_run(benchmark, context):
    hub_clusters = context.hub_clusters(8)

    def run():
        return cafc_ch(context.pages, CAFCConfig(k=8), hub_clusters=hub_clusters)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.clustering.n_points == 454


def test_bench_hub_harvest(benchmark, context):
    clusters = benchmark(build_hub_clusters, context.pages, 1)
    assert clusters


def test_bench_hac_cut(benchmark, sim_matrix):
    def run():
        return hac(sim_matrix, 8, Linkage.AVERAGE)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.clustering.n_clusters == 8


def test_bench_kmeans_scaling(benchmark, context):
    """k-means cost on a 200-page subsample (scaling reference point)."""
    pages = context.pages[:200]

    def run():
        return cafc_c(pages, CAFCConfig(k=8, seed=0))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.clustering.n_points == 200
