"""Benchmark: Section 2.1's vocabulary study (generic vs anchor terms)."""

from repro.experiments import vocabulary


def test_bench_vocabulary(benchmark, context):
    result = benchmark.pedantic(
        vocabulary.run_vocabulary, args=(context,), rounds=1, iterations=1
    )
    print()
    print(vocabulary.format_vocabulary(result))
    violations = vocabulary.check_shape(result)
    assert violations == [], violations
