"""Benchmark: pre-query (CAFC) vs post-query (probing) organization.

The paper's Section-1 taxonomy, quantified on one corpus:

* the probing baseline classifies keyword-accessible databases with
  high accuracy — post-query techniques ARE "effective for simple,
  keyword-based interfaces";
* but most hidden databases sit behind multi-attribute forms the prober
  cannot fill, so its *coverage* collapses, while CAFC (pre-query)
  organizes every source from visible context alone.
"""

from repro.baselines.probing import ProbingClassifier, train_probes
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.eval.extra import purity
from repro.experiments.reporting import render_table
from repro.hiddendb import build_hidden_databases


def test_bench_probing_vs_cafc(benchmark, context):
    registry = build_hidden_databases(context.web, records_per_database=80)

    by_domain = {}
    for entry in registry.entries():
        by_domain.setdefault(entry.site.domain_name, []).append(entry)
    training = [
        (domain, entry.database)
        for domain, entries in by_domain.items()
        for entry in entries[:3]
    ]
    training_urls = {
        entry.site.form_page_url
        for entries in by_domain.values()
        for entry in entries[:3]
    }

    def run():
        probe_set = train_probes(training, n_terms=6)
        classifier = ProbingClassifier(probe_set)
        outcomes = [
            classifier.probe(
                entry.site.form_page_url, entry.database, entry.keyword_accessible
            )
            for entry in registry.entries()
            if entry.site.form_page_url not in training_urls
        ]
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    label_of = {
        entry.site.form_page_url: entry.site.domain_name
        for entry in registry.entries()
    }
    classified = [o for o in outcomes if o.accessible and o.category]
    correct = sum(1 for o in classified if o.category == label_of[o.url])
    probe_accuracy = correct / len(classified) if classified else 0.0
    probe_coverage = len(classified) / len(outcomes)
    total_queries = sum(o.n_queries for o in outcomes)

    ch = cafc_ch(context.pages, CAFCConfig(k=8),
                 hub_clusters=context.hub_clusters(8))
    cafc_purity = purity(ch.clustering, context.gold_labels)

    print()
    print(render_table(
        ["approach", "coverage", "quality", "interface queries"],
        [
            ["post-query probing (QProber style)",
             f"{probe_coverage:.0%}",
             f"accuracy {probe_accuracy:.3f} (on covered)",
             total_queries],
            ["pre-query CAFC-CH",
             "100%",
             f"cluster purity {cafc_purity:.3f}",
             0],
        ],
        title="Pre-query vs post-query organization (Section 1 taxonomy)",
    ))

    # The paper's claims: probing accurate where applicable ...
    assert probe_accuracy >= 0.8
    # ... but structurally unable to cover most sources ...
    assert probe_coverage < 0.5
    # ... while CAFC organizes everything with high quality, silently.
    assert cafc_purity > 0.9
