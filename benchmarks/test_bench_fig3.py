"""Benchmark: Figure 3 — entropy vs minimum hub-cluster cardinality."""

from benchmarks.conftest import BENCH_RUNS
from repro.experiments import fig3


def test_bench_fig3(benchmark, context):
    result = benchmark.pedantic(
        fig3.run_fig3, args=(context,),
        kwargs={"n_cafc_c_runs": BENCH_RUNS},
        rounds=1, iterations=1,
    )
    print()
    print(fig3.format_fig3(result))
    violations = fig3.check_shape(result)
    assert violations == [], violations
