"""Benchmark: Section 4.3 — HAC seeding vs hub seeding for k-means."""

from benchmarks.conftest import BENCH_RUNS
from repro.experiments import hac_seeding


def test_bench_hac_seeding(benchmark, context, sim_matrix):
    result = benchmark.pedantic(
        hac_seeding.run_hac_seeding, args=(context,),
        kwargs={"n_random_runs": BENCH_RUNS, "matrix": sim_matrix},
        rounds=1, iterations=1,
    )
    print()
    print(hac_seeding.format_hac_seeding(result))
    violations = hac_seeding.check_shape(result)
    assert violations == [], violations

    # Paper: HAC-seeded entropy ~60% higher than hub-seeded; require hub
    # seeding to win clearly.
    assert result.get("hubs").entropy < result.get("hac").entropy
