"""Benchmark: Table 2 — HAC vs k-means as the base strategy."""

from benchmarks.conftest import BENCH_RUNS
from repro.experiments import table2


def test_bench_table2(benchmark, context, sim_matrix):
    result = benchmark.pedantic(
        table2.run_table2, args=(context,),
        kwargs={"n_kmeans_runs": BENCH_RUNS, "matrix": sim_matrix},
        rounds=1, iterations=1,
    )
    print()
    print(table2.format_table2(result))
    violations = table2.check_shape(result)
    assert violations == [], violations
