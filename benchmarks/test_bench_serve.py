"""Serving benchmark: threaded vs asyncio transport under fan-out.

Not from the paper — this measures the connection layer added on top of
the reproduction.  One 454-page directory is served two ways (the
thread-per-connection ``ThreadingHTTPServer`` and the
``asyncio.Protocol`` front end with admission control) and hammered
with keep-alive ``/search`` traffic at three concurrency levels:

* **c=1** — single-connection latency floor;
* **c=64** — the scatter-gather sweet spot (the router's fan-out);
* **c=1024** — connection-count stress: the asyncio transport must
  *sustain* this (zero errors, zero sheds, bounded p99) where a
  thread-per-connection server pays a thousand stacks and scheduler
  churn.

Before any timing, a **parity gate** drives an identical request
sequence through both transports over the *same* app object and
requires byte-identical bodies — a transport may only be benchmarked
while provably serving the same API.

A final **saturation run** points c=64 at an asyncio server with a
deliberately tiny in-flight budget and proves shedding is structured:
every response is a clean 200 or a 429 with ``Retry-After`` — zero
resets, zero silent drops (served + shed == sent).

Records ``BENCH_serve.json`` at the repo root.  Absolute numbers are
single-CPU-container noise; the hard assertions are the parity gate,
sustained c=1024 on asyncio, and lossless shedding.
"""

import asyncio
import json
import os
import statistics
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

import pytest

from repro.core.config import CAFCConfig
from repro.core.pipeline import CAFCPipeline
from repro.service.aio import AdmissionConfig, AsyncHTTPServer, \
    serve_directory_async
from repro.service.directory import FormDirectory
from repro.service.http import serve_directory
from repro.service.snapshot import build_snapshot

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_serve.json"

QUERIES = (
    "flight airfare ticket",
    "book novel author",
    "job career salary engineer",
    "movie theater actor",
    "hotel room reservation",
    "car rental pickup",
)

#: (concurrency, requests per connection, rounds) — totals chosen so
#: each level finishes in seconds on one CPU while still exercising the
#: shape; best-of-``rounds`` is kept, matching the repo's other bench
#: harnesses (``timed()`` in test_bench_shard is best-of-5).
LOAD_LEVELS = ((1, 256, 2), (64, 8, 3), (1024, 2, 2))

DIRECTORY_KWARGS = dict(
    journal=None, auto_recluster=False, batch_window_ms=None, cache_size=0
)


@pytest.fixture(scope="module")
def snapshot(context):
    config = CAFCConfig(k=32)
    pipeline = CAFCPipeline(config)
    return build_snapshot(
        pipeline.organize(context.raw_pages), pipeline.vectorizer, config
    )


def _search_targets():
    return [
        "/search?" + urllib.parse.urlencode({"q": query, "n": 5})
        for query in QUERIES
    ]


# ---------------------------------------------------------------------------
# The async load client (keep-alive, per-request latency).
# ---------------------------------------------------------------------------


async def _read_response(reader):
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed connection")
    status = int(line.split()[1])
    content_length = 0
    close = False
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        lowered = header.lower()
        if lowered.startswith(b"content-length:"):
            content_length = int(header.split(b":", 1)[1])
        elif lowered.startswith(b"connection: close"):
            close = True
    body = await reader.readexactly(content_length)
    return status, body, close


async def _run_load(host, port, targets, concurrency, per_connection):
    """Hammer the server with ``concurrency`` keep-alive connections.

    Returns ``{latencies, statuses, connect_errors}`` — a request that
    dies mid-flight records a synthetic status 0 so nothing vanishes
    from the accounting.
    """
    latencies = []
    statuses = []
    connect_errors = [0]
    # Open connections through a gate so c=1024 doesn't SYN-flood the
    # accept backlog in one instant.
    connect_gate = asyncio.Semaphore(128)

    async def worker(worker_id):
        async with connect_gate:
            for attempt in range(3):
                try:
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                    break
                except OSError:
                    if attempt == 2:
                        connect_errors[0] += 1
                        return
                    await asyncio.sleep(0.05 * (attempt + 1))
        try:
            for step in range(per_connection):
                target = targets[(worker_id + step) % len(targets)]
                request = (
                    f"GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n"
                ).encode("ascii")
                started = time.perf_counter()
                try:
                    writer.write(request)
                    await writer.drain()
                    status, _, close = await asyncio.wait_for(
                        _read_response(reader), timeout=120
                    )
                except (ConnectionError, asyncio.IncompleteReadError,
                        asyncio.TimeoutError, OSError):
                    statuses.append(0)
                    return
                latencies.append(time.perf_counter() - started)
                statuses.append(status)
                if close:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    await asyncio.gather(*(worker(i) for i in range(concurrency)))
    return {
        "latencies": latencies,
        "statuses": statuses,
        "connect_errors": connect_errors[0],
    }


def _load_row(transport, host, port, concurrency, per_connection,
              rounds=1):
    targets = _search_targets()
    best = None
    for _ in range(max(1, rounds)):
        started = time.perf_counter()
        attempt = asyncio.run(
            _run_load(host, port, targets, concurrency, per_connection)
        )
        seconds = time.perf_counter() - started
        if best is None or seconds < best[1]:
            best = (attempt, seconds)
    outcome, elapsed = best
    latencies = sorted(outcome["latencies"])
    sent = concurrency * per_connection
    ok = sum(1 for s in outcome["statuses"] if s == 200)
    shed = sum(1 for s in outcome["statuses"] if s == 429)
    broken = sum(1 for s in outcome["statuses"] if s == 0)

    def pct(q):
        if not latencies:
            return float("nan")
        return latencies[min(len(latencies) - 1,
                             int(q * (len(latencies) - 1)))]

    row = {
        "transport": transport,
        "concurrency": concurrency,
        "requests_sent": sent,
        "requests_ok": ok,
        "requests_shed": shed,
        "requests_broken": broken,
        "connect_errors": outcome["connect_errors"],
        "p50_ms": round(pct(0.50) * 1e3, 2),
        "p99_ms": round(pct(0.99) * 1e3, 2),
        "mean_ms": round(statistics.fmean(latencies) * 1e3, 2)
        if latencies else float("nan"),
        "throughput_rps": round(ok / elapsed, 1),
        "wall_seconds": round(elapsed, 2),
    }
    print(
        f"  {transport:<9} c={concurrency:<5} {ok:>5}/{sent} ok  "
        f"p50 {row['p50_ms']:7.2f}ms  p99 {row['p99_ms']:8.2f}ms  "
        f"{row['throughput_rps']:8.1f} req/s"
    )
    return row


# ---------------------------------------------------------------------------
# Parity gate.
# ---------------------------------------------------------------------------


def _fetch(base, target, payload=None):
    if payload is None:
        request = urllib.request.Request(base + target)
    else:
        request = urllib.request.Request(
            base + target, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _parity_gate(directory, raw_pages):
    """Both transports over one app must answer byte-identically."""
    threaded = serve_directory(directory, transport="threaded")
    threaded.serve_in_thread()
    aio = AsyncHTTPServer(threaded.app, on_close=lambda: None)
    aio.serve_in_thread()
    page = raw_pages[0]
    classify_body = {
        "url": page.url,
        "html": page.html,
        "backlinks": list(page.backlinks),
        "anchor_texts": list(page.anchor_texts),
    }
    cases = [(t, None) for t in _search_targets()]
    cases += [
        ("/clusters?max_urls=3", None),
        ("/search?q=", None),                      # 400
        ("/bogus", None),                          # 404
        ("/classify", classify_body),
        ("/classify", {"nope": 1}),                # 400
    ]
    try:
        for target, payload in cases:
            status_t, body_t = _fetch(threaded.base_url, target, payload)
            status_a, body_a = _fetch(aio.base_url, target, payload)
            assert status_t == status_a, (target, status_t, status_a)
            assert body_t == body_a, target
    finally:
        aio.shut_down()
        threaded.shut_down()  # closes the shared directory


# ---------------------------------------------------------------------------
# The benchmark.
# ---------------------------------------------------------------------------


def test_bench_serve_transports(snapshot, context):
    print(f"\n[{len(context.raw_pages)} pages, k=32, "
          f"{os.cpu_count()} cpu(s)]")

    # Gate first: a transport is only timed while provably serving the
    # same bytes as the reference.
    _parity_gate(
        FormDirectory.from_snapshot(snapshot, **DIRECTORY_KWARGS),
        context.raw_pages,
    )
    print("  parity gate: threaded == asyncio (byte-identical)")

    rows = []

    # Threaded transport.
    threaded = serve_directory(
        FormDirectory.from_snapshot(snapshot, **DIRECTORY_KWARGS),
        transport="threaded",
    )
    threaded.serve_in_thread()
    try:
        for concurrency, per_connection, rounds in LOAD_LEVELS:
            rows.append(_load_row(
                "threaded", "127.0.0.1", threaded.port,
                concurrency, per_connection, rounds=rounds,
            ))
    finally:
        threaded.shut_down()

    # Asyncio transport, budgets sized for the c=1024 sustain run (the
    # shedding behavior gets its own dedicated phase below).
    admission = AdmissionConfig(
        max_inflight=2048, cheap_inflight=64, max_connections=4096
    )
    aio = serve_directory_async(
        FormDirectory.from_snapshot(snapshot, **DIRECTORY_KWARGS),
        admission=admission,
    )
    aio.serve_in_thread()
    try:
        for concurrency, per_connection, rounds in LOAD_LEVELS:
            rows.append(_load_row(
                "asyncio", "127.0.0.1", aio.port,
                concurrency, per_connection, rounds=rounds,
            ))
    finally:
        aio.shut_down()

    by_key = {(row["transport"], row["concurrency"]): row for row in rows}

    # The asyncio transport must SUSTAIN c=1024: every request answered
    # 200, none shed, none broken, p99 finite.
    sustain = by_key[("asyncio", 1024)]
    assert sustain["requests_ok"] == sustain["requests_sent"], sustain
    assert sustain["requests_broken"] == 0, sustain
    assert sustain["connect_errors"] == 0, sustain
    assert sustain["p99_ms"] == sustain["p99_ms"], sustain  # not NaN

    # Saturation: a tiny in-flight budget under c=64 must shed — and
    # shed CLEANLY.  served + shed == sent, no resets, no silent drops.
    saturation = _saturation_run(snapshot)

    RESULTS_PATH.write_text(json.dumps({
        "benchmark": "serve",
        "corpus_pages": len(context.raw_pages),
        "k": 32,
        "cpu_count": os.cpu_count(),
        "endpoint": "/search?q=...&n=5 (keep-alive GET)",
        "load_levels": [
            {"concurrency": c, "requests_per_connection": r,
             "best_of_rounds": rounds}
            for c, r, rounds in LOAD_LEVELS
        ],
        "rows": rows,
        "saturation": saturation,
        "note": (
            "Threaded (thread-per-connection) vs asyncio (event-loop "
            "parse + threaded app dispatch) transports over the same "
            "DirectoryApp, single CPU container.  A byte-identical "
            "parity gate across both transports ran before any timing. "
            " The asyncio rows use max_inflight=2048 so c=1024 is a "
            "sustain test (zero sheds required); the saturation block "
            "uses max_inflight=4 to prove shedding is lossless: every "
            "request is a clean 200 or a structured 429 + Retry-After, "
            "served + shed == sent, zero connection resets.  On one "
            "CPU both transports are GIL-bound on the same engine, so "
            "throughput parity at c<=64 is the expectation; the "
            "asyncio win is c=1024 without a thousand handler stacks."
        ),
    }, indent=2) + "\n")
    print(f"  wrote {RESULTS_PATH.name}")


# ---------------------------------------------------------------------------
# Open-loop load (fixed arrival rate).
# ---------------------------------------------------------------------------


async def _run_open_loop(host, port, targets, rate_rps, duration_s):
    """Issue requests on a fixed schedule, regardless of completions.

    The closed-loop client above can only offer load as fast as
    responses return, so a slow server quietly throttles its own
    benchmark (coordinated omission).  Here every request has a planned
    arrival time fixed up front; latency is measured from that *planned*
    instant to completion, so queueing delay the server causes is
    charged to the server.  Each request uses its own connection — an
    arrival is an independent client, not a turn on a shared pipe.
    """
    loop = asyncio.get_running_loop()
    n_requests = int(rate_rps * duration_s)
    latencies = []
    statuses = []
    start = loop.time()

    async def one(i):
        planned = start + i / rate_rps
        delay = planned - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        target = targets[i % len(targets)]
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            statuses.append(0)
            return
        try:
            request = (
                f"GET {target} HTTP/1.1\r\nHost: bench\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(request)
            await writer.drain()
            status, _, _ = await asyncio.wait_for(
                _read_response(reader), timeout=120
            )
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError, OSError):
            statuses.append(0)
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        latencies.append(loop.time() - planned)
        statuses.append(status)

    await asyncio.gather(*(one(i) for i in range(n_requests)))
    elapsed = loop.time() - start
    return {
        "latencies": latencies,
        "statuses": statuses,
        "elapsed": elapsed,
        "sent": n_requests,
    }


def test_bench_serve_open_loop(snapshot, context):
    """Fixed-arrival-rate levels against the asyncio transport.

    Appends an ``open_loop`` block to ``BENCH_serve.json`` (the
    closed-loop rows stay untouched so trajectories remain comparable).
    """
    print(f"\n[open-loop /search, {os.cpu_count()} cpu(s)]")
    admission = AdmissionConfig(
        max_inflight=2048, cheap_inflight=64, max_connections=4096
    )
    server = serve_directory_async(
        FormDirectory.from_snapshot(snapshot, **DIRECTORY_KWARGS),
        admission=admission,
    )
    server.serve_in_thread()
    rows = []
    try:
        for rate in (50, 200, 400):
            outcome = asyncio.run(_run_open_loop(
                "127.0.0.1", server.port, _search_targets(),
                rate_rps=rate, duration_s=4.0,
            ))
            latencies = sorted(outcome["latencies"])
            ok = sum(1 for s in outcome["statuses"] if s == 200)
            shed = sum(1 for s in outcome["statuses"] if s == 429)
            broken = sum(1 for s in outcome["statuses"] if s == 0)

            def pct(q):
                if not latencies:
                    return float("nan")
                return latencies[min(len(latencies) - 1,
                                     int(q * (len(latencies) - 1)))]

            row = {
                "offered_rps": rate,
                "requests_sent": outcome["sent"],
                "requests_ok": ok,
                "requests_shed": shed,
                "requests_broken": broken,
                "achieved_rps": round(ok / outcome["elapsed"], 1),
                "p50_ms": round(pct(0.50) * 1e3, 2),
                "p99_ms": round(pct(0.99) * 1e3, 2),
                "wall_seconds": round(outcome["elapsed"], 2),
            }
            rows.append(row)
            print(
                f"  offered {rate:>4} req/s: {ok}/{outcome['sent']} ok  "
                f"p50 {row['p50_ms']:7.2f}ms  p99 {row['p99_ms']:8.2f}ms  "
                f"achieved {row['achieved_rps']:6.1f} req/s"
            )
            # Open-loop soundness: every arrival is accounted for, and
            # nothing died to a reset (shedding, if any, is structured).
            assert ok + shed + broken == outcome["sent"]
            assert broken == 0, f"{broken} open-loop requests broke"
    finally:
        server.shut_down()

    payload = (
        json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists()
        else {"benchmark": "serve"}
    )
    payload["open_loop"] = {
        "transport": "asyncio",
        "endpoint": "/search?q=...&n=5 (one connection per request)",
        "duration_seconds": 4.0,
        "rows": rows,
        "note": (
            "Arrivals on a fixed schedule independent of completions; "
            "latency measured from the planned arrival instant, so "
            "server-induced queueing is charged to the server "
            "(no coordinated omission)."
        ),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {RESULTS_PATH.name} (open_loop block)")


def _saturation_run(snapshot):
    admission = AdmissionConfig(max_inflight=4, heavy_workers=4)
    server = serve_directory_async(
        FormDirectory.from_snapshot(snapshot, **DIRECTORY_KWARGS),
        admission=admission,
    )
    server.serve_in_thread()
    concurrency, per_connection = 64, 5
    try:
        outcome = asyncio.run(_run_load(
            "127.0.0.1", server.port, _search_targets(),
            concurrency, per_connection,
        ))
    finally:
        server.shut_down()
    sent = concurrency * per_connection
    ok = sum(1 for s in outcome["statuses"] if s == 200)
    shed = sum(1 for s in outcome["statuses"] if s == 429)
    broken = sum(1 for s in outcome["statuses"] if s == 0)
    assert broken == 0, f"{broken} requests died to connection resets"
    assert outcome["connect_errors"] == 0
    assert shed > 0, "saturation run produced no shedding"
    assert ok + shed == sent, (ok, shed, sent)  # zero silent drops
    shed_ratio = shed / sent
    print(
        f"  saturation c={concurrency} max_inflight=4: {ok} served, "
        f"{shed} shed ({shed_ratio:.0%}), 0 broken — lossless"
    )
    return {
        "concurrency": concurrency,
        "max_inflight": 4,
        "requests_sent": sent,
        "requests_ok": ok,
        "requests_shed": shed,
        "requests_broken": broken,
        "shed_ratio": round(shed_ratio, 3),
    }
