"""Benchmark: corpus-size scaling of the full CAFC pipeline.

The paper's pitch is scalability ("the Web is estimated to contain
millions of online databases"), so this bench measures how the pipeline
cost and quality behave as the corpus grows, and compares the scalar vs
vectorized all-pairs similarity paths.
"""

import time

import numpy as np

from repro.clustering.hac import similarity_matrix
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.core.similarity import FormPageSimilarity
from repro.core.vectorizer import FormPageVectorizer
from repro.eval.fmeasure import overall_f_measure
from repro.experiments.reporting import render_table
from repro.vsm.batch import form_page_similarity_matrix
from repro.webgen.config import GeneratorConfig
from repro.webgen.corpus import generate_benchmark


def _scaled_config(per_domain: int, seed: int = 9) -> GeneratorConfig:
    return GeneratorConfig(
        pages_per_domain={
            name: per_domain
            for name in ("airfare", "auto", "book", "hotel",
                         "job", "movie", "music", "rental")
        },
        single_attribute_per_domain=max(1, per_domain // 8),
        mixed_entertainment_pages=2,
        small_hubs_per_domain=max(4, per_domain // 2),
        medium_hubs_per_domain=max(2, per_domain // 8),
        n_directories=max(8, per_domain * 2),
        n_travel_portals=2,
        seed=seed,
    )


def test_bench_pipeline_scaling(benchmark):
    sizes = (8, 16, 32)  # pages per domain -> 64 / 128 / 256 total

    def sweep():
        rows = []
        for per_domain in sizes:
            web = generate_benchmark(config=_scaled_config(per_domain))
            raw = web.raw_pages()
            started = time.perf_counter()
            pages = FormPageVectorizer().fit_transform(raw)
            result = cafc_ch(
                pages, CAFCConfig(k=8, min_hub_cardinality=3)
            )
            elapsed = time.perf_counter() - started
            gold = [page.label for page in pages]
            rows.append(
                (
                    len(pages),
                    elapsed,
                    overall_f_measure(result.clustering, gold),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["corpus size", "vectorize+cluster (s)", "F-measure"],
        [[n, f"{t:.2f}", f"{f:.3f}"] for n, t, f in rows],
        title="Pipeline scaling with corpus size",
    ))
    # Quality must not collapse with scale.
    assert all(f > 0.8 for _, _, f in rows)
    # Cost must grow sub-cubically across the 4x size range.
    small_n, small_t, _ = rows[0]
    large_n, large_t, _ = rows[-1]
    assert large_t / small_t < (large_n / small_n) ** 3


def test_bench_batch_similarity_speedup(benchmark, context):
    pages = context.pages[:200]

    started = time.perf_counter()
    scalar = similarity_matrix(pages, FormPageSimilarity())
    scalar_time = time.perf_counter() - started

    batch = benchmark(form_page_similarity_matrix, pages)
    started = time.perf_counter()
    form_page_similarity_matrix(pages)
    batch_time = time.perf_counter() - started

    print(f"\nscalar all-pairs: {scalar_time:.3f}s; "
          f"vectorized: {batch_time:.4f}s "
          f"({scalar_time / max(batch_time, 1e-9):.0f}x)")
    assert np.allclose(scalar, batch, atol=1e-10)
    assert batch_time < scalar_time
