"""Benchmark: robustness of CAFC-CH to backlink incompleteness."""

from repro.experiments import robustness


def test_bench_robustness(benchmark, context):
    result = benchmark.pedantic(
        robustness.run_robustness,
        args=(context,),
        kwargs={"coverages": (1.0, 0.8, 0.5, 0.2, 0.0)},
        rounds=1, iterations=1,
    )
    print()
    print(robustness.format_robustness(result))
    violations = robustness.check_shape(result)
    assert violations == [], violations
