"""Ingestion benchmark: serial vs pooled vs cached, on the 454-page corpus.

Measures the map phase (parse + tokenize + stem) end to end through
``FormPageVectorizer.fit_transform`` under every executor the
:class:`~repro.parallel.config.ParallelConfig` planner offers, plus the
two cache tiers, and records the table to ``BENCH_ingest.json`` at the
repo root (the numbers quoted in docs/PERFORMANCE.md).

The acceptance claim is the *cached* path: warm-cache ingestion at 4
workers must be at least 2x faster than a cold serial run.  Process-pool
rows are measured and recorded for completeness; on a single-core host
(``cpu_count`` is in the JSON) a pool cannot beat serial — fork and
pickle costs are pure overhead there — which is exactly why the ``auto``
policy degrades to serial on such machines.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.vectorizer import FormPageVectorizer
from repro.html.text_extract import page_text
from repro.parallel import ParallelConfig
from repro.text.stemmer import PorterStemmer
from repro.text.tokenize import tokenize
from repro.webgen.corpus import generate_benchmark

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_ingest.json"
REQUIRED_CACHED_SPEEDUP = 2.0
POOL_WORKER_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def raw_pages():
    return generate_benchmark(seed=42).raw_pages()


def _timed_fit(raw_pages, parallel, rounds=1, prime=None):
    """Best-of-``rounds`` wall clock for a cold fit under ``parallel``.

    ``prime`` (a shared AnalysisCache) turns the fit into a warm-cache
    replay: the same corpus was analyzed into that cache beforehand.
    """
    best = float("inf")
    vectorizer = None
    for _ in range(rounds):
        vectorizer = FormPageVectorizer(parallel=parallel)
        if prime is not None:
            vectorizer._analysis_cache = prime
        start = time.perf_counter()
        vectorizer.fit_transform(raw_pages)
        best = min(best, time.perf_counter() - start)
    return best, vectorizer


def _row(name, seconds, n_pages, stats, mode="batch"):
    # ``mode`` keeps rows comparable across trajectories now that the
    # streaming path (benchmarks/test_bench_stream.py) records ingestion
    # numbers too: "batch" rows see the whole corpus before vectorizing,
    # "stream" rows pay the drift-gated re-weight policy instead.
    return {
        "config": name,
        "mode": mode,
        "seconds": round(seconds, 4),
        "pages_per_sec": round(n_pages / seconds, 1),
        "executor": stats.executor,
        "pages_analyzed": stats.pages_analyzed,
        "cache_hits": stats.cache_hits,
    }


def test_bench_ingest_executors_and_cache(benchmark, raw_pages, tmp_path):
    n = len(raw_pages)
    rows = []

    # Baseline: cold serial, caching off — every page parsed from scratch.
    serial_cfg = ParallelConfig(workers=1, executor="serial", use_cache=False)
    benchmark.pedantic(
        lambda: FormPageVectorizer(parallel=serial_cfg).fit_transform(raw_pages),
        rounds=1, iterations=1,
    )
    serial_time, serial_vec = _timed_fit(raw_pages, serial_cfg, rounds=2)
    rows.append(_row("serial cold", serial_time, n, serial_vec.ingest_stats))

    # Process pools, cold (workers=1 resolves to serial by contract).
    cpus = os.cpu_count() or 1
    for workers in POOL_WORKER_COUNTS:
        config = ParallelConfig(
            workers=workers, executor="process", use_cache=False
        )
        seconds, vectorizer = _timed_fit(raw_pages, config)
        row = _row(
            f"process x{workers} cold", seconds, n, vectorizer.ingest_stats
        )
        if workers > cpus:
            row["note"] = (
                f"requested {workers} workers on a {cpus}-cpu host; "
                "measured under oversubscription, not a parallel speedup"
            )
        rows.append(row)

    # Warm disk cache at 4 workers: a prior run left its analyses on disk;
    # this run replays them and the planner has nothing left to pool.
    cache_dir = str(tmp_path / "ingest-cache")
    disk_cfg = ParallelConfig(workers=4, cache_dir=cache_dir)
    _timed_fit(raw_pages, disk_cfg)  # priming run, fills the disk cache
    disk_time, disk_vec = _timed_fit(raw_pages, disk_cfg)
    assert disk_vec.ingest_stats.pages_analyzed == 0
    rows.append(_row("warm disk cache x4", disk_time, n, disk_vec.ingest_stats))

    # Warm in-memory cache at 4 workers (the in-process re-fit path).
    primer = FormPageVectorizer(
        parallel=ParallelConfig(workers=4), analysis_cache_size=n
    )
    primer.fit_transform(raw_pages)
    memory_time, memory_vec = _timed_fit(
        raw_pages, ParallelConfig(workers=4), prime=primer._analysis_cache
    )
    assert memory_vec.ingest_stats.pages_analyzed == 0
    rows.append(_row(
        "warm memory cache x4", memory_time, n, memory_vec.ingest_stats
    ))

    # Streamed ingestion on the same corpus (cold, serial): what the
    # drift-gated observe → re-weight → emit path costs relative to the
    # two-pass batch fit.  Recorded for trajectory comparison only; the
    # streaming acceptance gates live in test_bench_stream.py.
    from repro.stream import StreamConfig, StreamingIngestor

    start = time.perf_counter()
    ingestor = StreamingIngestor(StreamConfig())
    for _ in ingestor.ingest(iter(raw_pages)):
        pass
    stream_time = time.perf_counter() - start
    stream_row = _row(
        "stream cold", stream_time, n,
        ingestor.vectorizer.ingest_stats, mode="stream",
    )
    stream_row["reweights"] = ingestor.stats.reweights
    rows.append(stream_row)

    cached_speedup = serial_time / disk_time
    print(f"\n[{n} pages, {os.cpu_count()} cpu(s)]")
    for row in rows:
        print(
            f"  {row['config']:<22} {row['seconds']:7.3f}s  "
            f"{row['pages_per_sec']:7.1f} pages/s  "
            f"({row['pages_analyzed']} analyzed, {row['cache_hits']} cached)"
        )
    print(f"  cached-vs-serial speedup: {cached_speedup:.2f}x "
          f"(required {REQUIRED_CACHED_SPEEDUP}x)")

    RESULTS_PATH.write_text(json.dumps({
        "benchmark": "ingest",
        "corpus_pages": n,
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "cached_speedup_vs_serial": round(cached_speedup, 2),
        "required_speedup": REQUIRED_CACHED_SPEEDUP,
        "note": (
            "Pool rows are cold-start measurements; on a host without "
            "spare cores a process pool cannot beat serial (the auto "
            "policy then stays serial).  The >=2x acceptance claim is "
            "the warm analysis cache."
        ),
    }, indent=2) + "\n")

    assert cached_speedup >= REQUIRED_CACHED_SPEEDUP, (
        f"warm-cache ingestion only {cached_speedup:.2f}x over serial cold "
        f"(required {REQUIRED_CACHED_SPEEDUP}x)"
    )


def test_bench_stemmer_memoization(raw_pages):
    """The stem memo table on the real token stream: hit rate and timing."""
    tokens = []
    for raw in raw_pages[:120]:
        tokens.extend(tokenize(page_text(raw.html)))

    cold = PorterStemmer(cache_size=0)
    start = time.perf_counter()
    for token in tokens:
        cold.stem(token)
    uncached_time = time.perf_counter() - start

    warm = PorterStemmer()
    start = time.perf_counter()
    for token in tokens:
        warm.stem(token)
    cached_time = time.perf_counter() - start

    lookups = warm.cache_hits + warm.cache_misses
    hit_rate = warm.cache_hits / lookups
    print(
        f"\n[{len(tokens)} tokens] uncached {uncached_time:.3f}s  "
        f"cached {cached_time:.3f}s  hit rate {hit_rate:.1%} "
        f"({warm.cache_hits}/{lookups})"
    )
    # Web corpora repeat terms heavily; the memo table must convert that
    # repetition into hits.
    assert hit_rate >= 0.5

    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
        payload["stemmer"] = {
            "tokens": len(tokens),
            "uncached_seconds": round(uncached_time, 4),
            "cached_seconds": round(cached_time, 4),
            "hit_rate": round(hit_rate, 4),
        }
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
