"""Benchmark: Section 4.1 — corpus generation and profile audit."""

from repro.experiments import corpus_profile
from repro.webgen import generate_benchmark


def test_bench_corpus_generation(benchmark):
    web = benchmark.pedantic(generate_benchmark, kwargs={"seed": 42},
                             rounds=1, iterations=1)
    assert web.profile()["form_pages"] == 454


def test_bench_corpus_profile(benchmark, context):
    result = benchmark(corpus_profile.run_corpus_profile, context)
    print()
    print(corpus_profile.format_corpus_profile(result))
    violations = corpus_profile.check_shape(result)
    assert violations == [], violations
