"""Benchmark: attribute matching quality, within vs across clusters.

Measures why CAFC matters as the *input stage* of interface integration
(Section 5): attribute correspondences discovered inside one CAFC
cluster are near-perfect against the generator's concept ground truth,
while matching over an unclustered mixed bag drags in cross-domain
false correspondences (city selects in airfare vs hotel forms, state
selects in jobs vs autos ...).
"""

import random

from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.experiments.reporting import render_table
from repro.integration import collect_attributes, match_attributes


def pairwise_precision(groups) -> float:
    """Fraction of matched attribute pairs sharing the generator concept.

    The synthetic generator emits field names equal to its schema
    concepts, giving exact ground truth.
    """
    correct = total = 0
    for group in groups:
        names = [member.field_name for member in group.members]
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                total += 1
                correct += names[i] == names[j]
    return correct / total if total else 1.0


def test_bench_matching_within_clusters(benchmark, context):
    raw_by_url = {page.url: page for page in context.raw_pages}
    ch = cafc_ch(context.pages, CAFCConfig(k=8),
                 hub_clusters=context.hub_clusters(8))

    def run():
        per_cluster = []
        for members in ch.clustering.compact().clusters:
            pages = [raw_by_url[context.pages[i].url] for i in members[:12]]
            groups = match_attributes(collect_attributes(pages))
            per_cluster.append(pairwise_precision(groups))
        return per_cluster

    precisions = benchmark.pedantic(run, rounds=1, iterations=1)

    # Control: the same budget of forms drawn across all domains.
    rng = random.Random(0)
    mixed = [raw_by_url[context.pages[i].url]
             for i in rng.sample(range(len(context.pages)), 12)]
    mixed_groups = match_attributes(collect_attributes(mixed))
    mixed_precision = pairwise_precision(mixed_groups)

    within = sum(precisions) / len(precisions)
    print()
    print(render_table(
        ["matching scope", "pairwise precision"],
        [
            ["within CAFC clusters (mean)", f"{within:.3f}"],
            ["across unclustered mixed forms", f"{mixed_precision:.3f}"],
        ],
        title="Attribute-correspondence quality (Section 5 motivation)",
    ))

    assert within >= 0.9
    assert within >= mixed_precision
