"""Shared benchmark fixtures.

Benchmarks operate on the full 454-page benchmark corpus (the paper's
scale).  Everything expensive and shared — generation, vectorization,
hub harvesting, the pairwise similarity matrix — is computed once per
session here so each bench times only its own experiment.

Every ``test_bench_*`` both *times* the experiment (via the
``benchmark`` fixture) and *prints* the regenerated table/figure next to
the paper's numbers, so ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's evaluation section end to end.
"""

import numpy as np
import pytest

from repro.vsm.batch import form_page_similarity_matrix
from repro.experiments.context import get_context


def pytest_addoption(parser):
    # ``make bench-smoke`` passes --timeout for environments that carry
    # pytest-timeout; this container does not, so accept the flag as a
    # no-op.  Guarded so a real pytest-timeout plugin wins if present.
    try:
        parser.addoption(
            "--timeout", action="store", default=None,
            help="accepted for compatibility; no-op without pytest-timeout",
        )
    except ValueError:
        pass


@pytest.fixture(scope="session")
def context():
    return get_context(seed=42)


@pytest.fixture(scope="session")
def sim_matrix(context):
    return form_page_similarity_matrix(context.pages)


# The paper averages CAFC-C over 20 runs; benches use a smaller trial
# count so the whole suite stays in CI-friendly time.  Override with
# REPRO_BENCH_RUNS.
import os

BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "12"))
