"""Benchmark: Table 1 — page terms outside the form per form-size bucket."""

from repro.experiments import table1


def test_bench_table1(benchmark, context):
    result = benchmark(table1.run_table1, context)
    print()
    print(table1.format_table1(result))
    violations = table1.check_shape(result)
    assert violations == [], violations

    # All five of the paper's buckets must be populated.
    assert all(row.n_pages > 0 for row in result.rows)
