"""Benchmark: C1/C2 weight-ratio ablation (Equation 3)."""

from repro.experiments import weight_ratio


def test_bench_weight_ratio(benchmark, context):
    result = benchmark.pedantic(
        weight_ratio.run_weight_ratio, args=(context,), rounds=1, iterations=1
    )
    print()
    print(weight_ratio.format_weight_ratio(result))
    violations = weight_ratio.check_shape(result)
    assert violations == [], violations
