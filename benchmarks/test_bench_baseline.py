"""Benchmark: CAFC vs the schema-label clustering baseline.

The paper's Section 1/5 argument against pre-query schema approaches
(He, Tao & Chang, CIKM'04): they depend on fragile label extraction and
"the use of attribute labels makes this approach unsuitable for
single-attribute forms which are commonplace on the Web."  This bench
quantifies both failure modes against CAFC-CH on the same corpus.
"""

import statistics

from benchmarks.conftest import BENCH_RUNS
from repro.baselines import SchemaClusterer
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.eval.confusion import majority_label
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.experiments.reporting import render_table


def _single_attribute_errors(result, schemas, gold) -> int:
    single = {i for i, s in enumerate(schemas) if s.n_fields <= 1}
    errors = 0
    for members in result.clustering.clusters:
        if not members:
            continue
        majority = majority_label([gold[i] for i in members])
        errors += sum(1 for i in members if i in single and gold[i] != majority)
    return errors


def test_bench_schema_baseline(benchmark, context):
    gold = context.gold_labels

    def run():
        clusterer = SchemaClusterer(k=8, seed=0)
        schemas = clusterer.build_schemas(context.raw_pages)
        results = [
            SchemaClusterer(k=8, seed=seed).cluster(schemas)
            for seed in range(BENCH_RUNS)
        ]
        return schemas, results

    schemas, results = benchmark.pedantic(run, rounds=1, iterations=1)

    baseline_entropy = statistics.mean(
        total_entropy(r.clustering, gold) for r in results
    )
    baseline_f = statistics.mean(
        overall_f_measure(r.clustering, gold) for r in results
    )
    baseline_single_errors = _single_attribute_errors(results[0], schemas, gold)

    ch = cafc_ch(context.pages, CAFCConfig(k=8),
                 hub_clusters=context.hub_clusters(8))
    cafc_entropy = total_entropy(ch.clustering, gold)
    cafc_f = overall_f_measure(ch.clustering, gold)

    n_single = sum(1 for s in schemas if s.n_fields <= 1)
    n_blind = sum(1 for s in schemas if not s.has_schema_evidence)

    print()
    print(render_table(
        ["approach", "entropy", "F-measure", "single-attr errors"],
        [
            ["schema labels (He et al. style)",
             f"{baseline_entropy:.3f}", f"{baseline_f:.3f}",
             f"{baseline_single_errors}/{n_single}"],
            ["CAFC-CH (this paper)",
             f"{cafc_entropy:.3f}", f"{cafc_f:.3f}", "see errors bench"],
        ],
        title="CAFC vs schema-based clustering",
    ))
    print(f"forms with no extractable schema evidence: {n_blind}/{len(schemas)}")

    # The paper's comparative claims.
    assert cafc_entropy < baseline_entropy
    assert cafc_f > baseline_f
    # Single-attribute forms are hopeless for the schema baseline.
    assert baseline_single_errors > n_single * 0.4
