"""Benchmark: incremental maintenance vs full re-clustering.

The intro's motivation quantified: when new sources trickle in,
incremental classification + centroid update is orders of magnitude
cheaper than re-running the full pipeline, at comparable quality.
"""

import time

from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.core.incremental import IncrementalOrganizer
from repro.core.vectorizer import FormPageVectorizer
from repro.experiments.reporting import render_table
from repro.webgen.config import GeneratorConfig
from repro.webgen.corpus import generate_benchmark


def _fresh_sources(n: int):
    config = GeneratorConfig(
        pages_per_domain={
            name: max(2, n // 8)
            for name in ("airfare", "auto", "book", "hotel",
                         "job", "movie", "music", "rental")
        },
        single_attribute_per_domain=1,
        mixed_entertainment_pages=0,
        small_hubs_per_domain=2,
        medium_hubs_per_domain=1,
        n_directories=4,
        n_travel_portals=1,
        seed=87,
    )
    return generate_benchmark(config=config).raw_pages()[:n]


def test_bench_incremental_vs_recluster(benchmark, context):
    vectorizer = FormPageVectorizer()
    pages = vectorizer.fit_transform(context.raw_pages)
    initial_result = cafc_ch(pages, CAFCConfig(k=8),
                             hub_clusters=context.hub_clusters(8))
    initial = [
        [pages[i] for i in members]
        for members in initial_result.clustering.compact().clusters
    ]
    arrivals = _fresh_sources(24)

    def incremental():
        organizer = IncrementalOrganizer(
            [list(cluster) for cluster in initial], vectorizer
        )
        correct = 0
        for raw in arrivals:
            index = organizer.add(raw)
            labels = [p.label for p in organizer.clusters[index].pages if p.label]
            majority = max(set(labels), key=labels.count)
            correct += majority == raw.label
        return organizer, correct

    (organizer, correct) = benchmark.pedantic(incremental, rounds=1, iterations=1)

    # The comparison point: a full pipeline re-run over old + new pages.
    started = time.perf_counter()
    merged_raw = list(context.raw_pages) + list(arrivals)
    full_vectorizer = FormPageVectorizer()
    merged_pages = full_vectorizer.fit_transform(merged_raw)
    from repro.core.hubs import build_hub_clusters

    hub_clusters = build_hub_clusters(merged_pages, min_cardinality=8)
    cafc_ch(merged_pages, CAFCConfig(k=8), hub_clusters=hub_clusters)
    full_time = time.perf_counter() - started

    print()
    print(render_table(
        ["strategy", "wall time", "arrival accuracy"],
        [
            ["incremental add (24 sources)", "(benchmarked above)",
             f"{correct}/{len(arrivals)}"],
            ["full pipeline re-run", f"{full_time:.2f}s", "—"],
        ],
        title="Incremental maintenance vs full re-clustering",
    ))

    assert correct / len(arrivals) > 0.6
    assert not organizer.needs_reclustering
