"""A/B benchmark: the batched similarity engine vs the naive backend.

Three claims, all on the paper-scale corpus (and a 4x-scaled one):

* the pure-Python engine is at least 3x faster than the naive per-pair
  path on all-pairs similarity — no NumPy required;
* the two backends agree to 1e-9 on every pair;
* CAFC-C and CAFC-CH produce *identical* cluster assignments (and hence
  identical entropy / F-measure) under both backends.

Timings use best-of-N on both sides: single-shot wall clocks on a busy
machine swing by tens of percent, and the minimum over a few runs is the
standard way to estimate the code's actual cost.
"""

import random
import time

import pytest

from repro.core.cafc_c import cafc_c
from repro.core.cafc_ch import cafc_ch
from repro.core.config import CAFCConfig
from repro.core.similarity import EngineBackend, NaiveBackend
from repro.core.simengine import HAVE_NUMPY
from repro.core.vectorizer import FormPageVectorizer
from repro.eval.entropy import total_entropy
from repro.eval.fmeasure import overall_f_measure
from repro.webgen.config import GeneratorConfig
from repro.webgen.corpus import generate_benchmark

TOLERANCE = 1e-9
REQUIRED_SPEEDUP = 3.0
TIMING_ROUNDS = 3


def best_of(fn, rounds: int = TIMING_ROUNDS) -> float:
    """Minimum wall-clock over ``rounds`` runs."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def max_abs_diff(a, b) -> float:
    return max(
        abs(x - y) for row_a, row_b in zip(a, b) for x, y in zip(row_a, row_b)
    )


def test_bench_engine_vs_naive_pairwise(benchmark, context):
    """Pure-Python engine >= 3x naive on the 454-page corpus, 1e-9 parity."""
    pages = context.pages
    config = CAFCConfig(k=8)

    naive = NaiveBackend.from_config(config)
    reference = naive.pairwise(pages)

    # A fresh backend per round so compile time is charged to the engine
    # (no cached-engine advantage).
    def engine_run():
        return EngineBackend.from_config(config, use_numpy=False).pairwise(pages)

    compiled = benchmark.pedantic(engine_run, rounds=1, iterations=1)
    parity = max_abs_diff(reference, compiled)
    assert parity <= TOLERANCE, f"engine/naive mismatch: {parity:.3e}"

    naive_time = best_of(lambda: NaiveBackend.from_config(config).pairwise(pages))
    engine_time = best_of(engine_run)
    speedup = naive_time / engine_time
    print(
        f"\n[454 pages] naive {naive_time:.3f}s  engine-py {engine_time:.3f}s  "
        f"speedup {speedup:.2f}x  parity {parity:.2e}"
    )
    if HAVE_NUMPY:
        numpy_time = best_of(
            lambda: EngineBackend.from_config(config, use_numpy=True).pairwise(pages)
        )
        print(f"[454 pages] engine-np {numpy_time:.3f}s  "
              f"speedup {naive_time / numpy_time:.2f}x")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"pure-Python engine only {speedup:.2f}x over naive "
        f"(required {REQUIRED_SPEEDUP}x)"
    )


@pytest.fixture(scope="module")
def scaled_pages():
    """A 4x-scaled corpus (~1800 pages) for the scaling data point."""
    base = GeneratorConfig()
    config = GeneratorConfig(
        pages_per_domain={
            name: count * 4 for name, count in base.pages_per_domain.items()
        },
        seed=42,
    )
    web = generate_benchmark(config=config)
    return FormPageVectorizer().fit_transform(web.raw_pages())


def test_bench_engine_scaling_4x(benchmark, scaled_pages):
    """On the 4x corpus the naive side is extrapolated from a pair
    sample (the full quadratic run is what the engine exists to avoid)."""
    pages = scaled_pages
    n = len(pages)
    assert n >= 4 * 400, f"scaled corpus unexpectedly small: {n}"
    config = CAFCConfig(k=8)

    def engine_run():
        return EngineBackend.from_config(config, use_numpy=False).pairwise(pages)

    benchmark.pedantic(engine_run, rounds=1, iterations=1)
    engine_time = best_of(engine_run, rounds=2)

    rng = random.Random(0)
    sample = [
        (rng.randrange(n), rng.randrange(n)) for _ in range(40_000)
    ]
    naive = NaiveBackend.from_config(config)

    def naive_sample():
        for i, j in sample:
            naive.pair(pages[i], pages[j])

    sample_time = best_of(naive_sample, rounds=2)
    naive_estimate = sample_time / len(sample) * (n * n)
    speedup = naive_estimate / engine_time
    print(
        f"\n[{n} pages] engine-py {engine_time:.3f}s  "
        f"naive-extrapolated {naive_estimate:.1f}s  speedup {speedup:.1f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP

    # Spot parity on the scaled corpus: the sampled pairs, exactly.
    engine = EngineBackend.from_config(config, use_numpy=False)
    worst = max(
        abs(engine.pair(pages[i], pages[j]) - naive.pair(pages[i], pages[j]))
        for i, j in sample[:500]
    )
    assert worst <= TOLERANCE, f"engine/naive mismatch at scale: {worst:.3e}"


def test_bench_clustering_parity_across_backends(benchmark, context):
    """cafc_c and cafc_ch give identical assignments — and therefore
    identical entropy / F-measure — under both backends."""
    pages = context.pages
    gold = [page.label for page in pages]
    hub_clusters = context.hub_clusters(8)

    def engine_side():
        return (
            cafc_c(pages, CAFCConfig(k=8, seed=0), backend="engine"),
            cafc_ch(
                pages, CAFCConfig(k=8), hub_clusters=hub_clusters,
                backend="engine",
            ),
        )

    engine_c, engine_ch = benchmark.pedantic(engine_side, rounds=1, iterations=1)
    naive_c = cafc_c(pages, CAFCConfig(k=8, seed=0), backend="naive")
    naive_ch = cafc_ch(
        pages, CAFCConfig(k=8), hub_clusters=hub_clusters, backend="naive"
    )

    for engine_result, naive_result in (
        (engine_c, naive_c), (engine_ch, naive_ch),
    ):
        assert (
            engine_result.clustering.clusters == naive_result.clustering.clusters
        ), "backends disagree on cluster assignments"
        assert total_entropy(engine_result.clustering, gold) == total_entropy(
            naive_result.clustering, gold
        )
        assert overall_f_measure(engine_result.clustering, gold) == (
            overall_f_measure(naive_result.clustering, gold)
        )
    print(
        f"\nCAFC-C  entropy {total_entropy(engine_c.clustering, gold):.3f}  "
        f"F {overall_f_measure(engine_c.clustering, gold):.3f} (both backends)"
        f"\nCAFC-CH entropy {total_entropy(engine_ch.clustering, gold):.3f}  "
        f"F {overall_f_measure(engine_ch.clustering, gold):.3f} (both backends)"
    )
