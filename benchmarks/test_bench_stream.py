"""Streaming-ingestion benchmark: 100k pages under a flat memory ceiling.

Two acceptance claims, gated in order:

1. **Parity first.**  On the 454-page reference corpus, the streamed
   organizer (drift-gated re-weights, reservoir mini-batch k-means,
   terminal re-weight + assign) must land within pinned tolerance of
   the batch CAFC-C result on entropy and overall F-measure.  This gate
   runs *before* any timing — a fast stream that clusters garbage is
   not a result.

2. **Flat memory at scale.**  A 100k-page synthetic stream (pages
   produced by the seeded ``repro.webgen.stream`` emitter, never
   materialized as a list) must finish under a pinned peak-RSS cap, and
   the RSS high-water mark must stay near-flat across the run: the growth
   from the quarter mark to the end stays under a pinned factor.  The
   run happens in a **subprocess** so ``ru_maxrss`` measures the stream
   and nothing else (the parent's parity corpus would otherwise pollute
   the high-water mark).

Records ``BENCH_stream.json`` at the repo root: throughput, re-weight
count, vocabulary sizes after pruning, RSS checkpoints, spill-segment
counts, and the parity numbers the gate enforced.

Scale knob: ``REPRO_STREAM_PAGES`` (default 100000) — CI containers
that cannot afford ~6 minutes can lower it; the recorded JSON carries
whatever was run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_stream.json"

N_PAGES = int(os.environ.get("REPRO_STREAM_PAGES", "100000"))
STREAM_SEED = 42

# Parity tolerances vs batch CAFC-C on the 454-page reference corpus
# (seed 42 measures delta_entropy ~0.05 and delta_f ~0.01; the pins
# leave room for the mini-batch path's seed sensitivity, which reaches
# ~0.25 / ~0.10 across other corpus seeds).
MAX_DELTA_ENTROPY = 0.25
MAX_DELTA_F = 0.10

# Memory pins for the 100k-page run (measured peak ~132 MB on the
# reference container: interned vocabulary after min_df pruning plus
# the bounded reservoir and resident spill tier).  The cap is the hard
# ceiling; the growth factor is the flatness claim — RSS at the end of
# the stream may exceed the quarter-mark high-water by at most this
# factor even though 4x more pages flowed through (measured x1.14).
RSS_CAP_MB = 300
MAX_RSS_GROWTH_FACTOR = 1.6

# The child process: streams N pages with bounded vocabulary and spill
# enabled, printing one JSON report line.  Run separately so ru_maxrss
# reflects the stream alone.
_CHILD = r"""
import json, resource, sys, tempfile, time

n_pages, seed = int(sys.argv[1]), int(sys.argv[2])

from repro.index.spill import SpillingSpaceIndex
from repro.stream import StreamConfig, StreamingIngestor, StreamOrganizer
from repro.webgen.stream import stream_pages


def rss_mb():
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


with tempfile.TemporaryDirectory(prefix="repro-stream-bench-") as spill_dir:
    config = StreamConfig(
        batch_size=256, vocab_budget=50_000, min_df=2,
        spill_dir=spill_dir, spill_segment_rows=4096,
    )
    ingestor = StreamingIngestor(config)
    organizer = StreamOrganizer(
        8, reservoir_size=config.reservoir_size
    ).attach(ingestor)
    spill = SpillingSpaceIndex(spill_dir, config.spill_segment_rows)

    marks = sorted({n_pages // 4, n_pages // 2, n_pages})
    checkpoints = {}
    started = time.monotonic()
    for batch in ingestor.ingest(stream_pages(n_pages, seed=seed)):
        organizer.observe_batch(batch)
        for entry in batch:
            spill.add_row(entry.index, entry.page.pc, meta=entry.url)
        while marks and ingestor.stats.pages >= marks[0]:
            checkpoints[str(marks.pop(0))] = round(rss_mb(), 1)
    organizer.ensure_ready()
    ingestor.reweight()
    spill.flush()
    elapsed = time.monotonic() - started

    stats = ingestor.stats
    print(json.dumps({
        "pages": stats.pages,
        "batches": stats.batches,
        "reweights": stats.reweights,
        "pc_vocab": stats.pc_vocab,
        "fc_vocab": stats.fc_vocab,
        "terms_pruned": stats.pc_pruned + stats.fc_pruned,
        "reservoir_rebuilds": organizer.n_reweight_rebuilds,
        "elapsed_s": round(elapsed, 1),
        "pages_per_s": round(stats.pages / elapsed, 1),
        "rss_checkpoints_mb": checkpoints,
        "peak_rss_mb": round(rss_mb(), 1),
        "spilled_rows": spill.n_spilled,
        "segments": len(spill.segments),
    }))
"""


def test_bench_stream_100k(benchmark):
    from repro.stream import reference_parity

    # ------------------------------------------------------------
    # Gate: batch parity on the reference corpus, before any timing.
    # ------------------------------------------------------------
    parity = reference_parity(seed=42)
    print(
        f"\n  parity gate: stream entropy "
        f"{parity['stream']['entropy']:.3f} vs batch "
        f"{parity['batch']['entropy']:.3f} "
        f"(delta {parity['delta_entropy']:+.3f}); "
        f"F {parity['stream']['f_measure']:.3f} vs "
        f"{parity['batch']['f_measure']:.3f} "
        f"(delta {parity['delta_f']:+.3f})"
    )
    assert parity["delta_entropy"] <= MAX_DELTA_ENTROPY, parity
    assert parity["delta_f"] <= MAX_DELTA_F, parity

    # ------------------------------------------------------------
    # The timed run: N pages in a subprocess, RSS checkpointed.
    # ------------------------------------------------------------
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")

    def run_child():
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, str(N_PAGES), str(STREAM_SEED)],
            capture_output=True, text=True, env=env, timeout=3600,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        return json.loads(proc.stdout.strip().splitlines()[-1])

    report = benchmark.pedantic(run_child, rounds=1, iterations=1)

    checkpoints = report["rss_checkpoints_mb"]
    quarter = checkpoints[str(N_PAGES // 4)]
    final = report["peak_rss_mb"]
    growth = final / quarter
    print(
        f"  {report['pages']} pages in {report['elapsed_s']}s "
        f"({report['pages_per_s']} pages/s), "
        f"{report['reweights']} reweights, "
        f"vocab pc={report['pc_vocab']} fc={report['fc_vocab']} "
        f"({report['terms_pruned']} pruned)"
    )
    print(
        f"  RSS: {checkpoints} MB, peak {final} MB "
        f"(cap {RSS_CAP_MB} MB, growth x{growth:.2f} "
        f"from the quarter mark, max x{MAX_RSS_GROWTH_FACTOR})"
    )
    print(
        f"  spill: {report['spilled_rows']} rows in "
        f"{report['segments']} sealed segments"
    )

    assert final <= RSS_CAP_MB, (
        f"peak RSS {final} MB exceeds the {RSS_CAP_MB} MB cap"
    )
    assert growth <= MAX_RSS_GROWTH_FACTOR, (
        f"RSS grew x{growth:.2f} from the quarter mark — "
        "memory is not flat"
    )
    assert report["pages"] == N_PAGES
    assert report["spilled_rows"] == N_PAGES

    RESULTS_PATH.write_text(json.dumps({
        "benchmark": "stream",
        "n_pages": N_PAGES,
        "seed": STREAM_SEED,
        "cpu_count": os.cpu_count(),
        "parity_gate": {
            "corpus_pages": parity["n_pages"],
            "batch": parity["batch"],
            "stream": parity["stream"],
            "delta_entropy": round(parity["delta_entropy"], 4),
            "delta_f": round(parity["delta_f"], 4),
            "max_delta_entropy": MAX_DELTA_ENTROPY,
            "max_delta_f": MAX_DELTA_F,
        },
        "run": report,
        "rss_cap_mb": RSS_CAP_MB,
        "max_rss_growth_factor": MAX_RSS_GROWTH_FACTOR,
        "note": (
            "Streamed ingest of synthetic pages from the seeded "
            "generator (never materialized as a list): drift-gated "
            "Equation-1 re-weights (threshold 0.1), min_df=2 "
            "vocabulary pruning under a 50k budget, reservoir "
            "mini-batch k-means (512 entries), and PC vectors spilled "
            "to crc-framed 4096-row segments.  The parity gate vs "
            "batch CAFC-C on the 454-page reference corpus ran before "
            "any timing.  RSS is measured in a dedicated subprocess; "
            "the growth factor bounds the high-water mark's rise "
            "across the final three quarters of the stream."
        ),
    }, indent=2) + "\n")
    print(f"  wrote {RESULTS_PATH.name}")
