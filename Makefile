# Convenience targets; everything works without make too.

.PHONY: install test bench bench-smoke bench-ingest bench-search bench-ranking bench-shard bench-serve bench-stream serve-smoke shard-smoke stream-smoke chaos failover-chaos experiments examples lint clean

install:
	pip install -e . || python setup.py develop

test: bench-smoke
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-smoke:           ## engine-vs-naive A/B + micro benches; fails on mismatch
	pytest benchmarks/test_bench_simengine.py benchmarks/test_bench_micro.py \
		-q --timeout=300

bench-ingest:          ## ingestion executor/cache A/B; records BENCH_ingest.json
	pytest benchmarks/test_bench_ingest.py -q -s --timeout=600

bench-search:          ## scan-vs-indexed search A/B; records BENCH_search.json
	pytest benchmarks/test_bench_search.py -q -s --timeout=600

bench-ranking:         ## weighting-scheme A/B (eq1/bm25/tf); records BENCH_ranking.json
	pytest benchmarks/test_bench_ranking.py -q -s --timeout=600

bench-shard:           ## single vs 2-/4-shard A/B + replica catch-up; records BENCH_shard.json
	pytest benchmarks/test_bench_shard.py -q -s --timeout=600

bench-serve:           ## threaded vs asyncio transport A/B (byte parity gated) + 429 saturation; records BENCH_serve.json
	pytest benchmarks/test_bench_serve.py -q -s --timeout=600

bench-stream:          ## 100k-page streamed ingest (RSS ceiling + batch-parity gate); records BENCH_stream.json
	pytest benchmarks/test_bench_stream.py -q -s --timeout=1200

stream-smoke:          ## 20k-page streamed ingest under an RSS cap + batch-parity gate on the reference corpus
	PYTHONPATH=src python -m repro ingest --stream --smoke

serve-smoke:           ## boot the directory server on an ephemeral port, probe it, shut down (both transports)
	PYTHONPATH=src python -m repro serve --smoke --transport asyncio
	PYTHONPATH=src python -m repro serve --smoke --transport threaded

shard-smoke:           ## boot router + 2 shards + 1 replica in-process, round-trip, shut down
	PYTHONPATH=src python -m repro router --smoke

chaos:                 ## resilience suite: fault injection, retry/breaker, journal crash-recovery
	PYTHONPATH=src python -m pytest tests/test_resilience.py tests/test_journal.py tests/test_chaos.py -q
	PYTHONPATH=src python -m repro serve --smoke --chaos 7

failover-chaos:        ## epoch-fencing soak: 25+ seeded kill/pause schedules (zombie-leader invariant) + failover suite
	PYTHONPATH=src REPRO_FENCING_SEEDS=25 python -m pytest tests/test_fencing.py tests/test_distrib_failover.py -q

bench-paper:           ## full paper protocol (20 CAFC-C trials per bench)
	REPRO_BENCH_RUNS=20 pytest benchmarks/ --benchmark-only

experiments:
	python -m repro experiments --runs 20

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
